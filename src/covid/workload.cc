#include "src/covid/workload.h"

#include "src/common/macros.h"

namespace pgt::covid {

Status AdmitIcuPatients(Database& db, const std::string& hospital, int n,
                        int64_t id_base) {
  Params params;
  params["hospital"] = Value::String(hospital);
  params["n"] = Value::Int(n);
  params["base"] = Value::Int(id_base);
  return db
      .Execute(
          "MATCH (h:Hospital {name: $hospital}) "
          "UNWIND RANGE(1, $n) AS i "
          "CREATE (p:Patient:HospitalizedPatient:IcuPatient "
          "{ssn: 'WSSN' + toString($base + i), "
          " name: 'WavePatient' + toString($base + i), sex: 'F', "
          " vaccinated: 2, id: $base + i, prognosis: 'severe', "
          " admission: DATE()}) "
          "CREATE (p)-[:TreatedAt]->(h)",
          params)
      .status();
}

Status RegisterMutation(Database& db, const std::string& name,
                        const std::string& protein, bool critical) {
  Params params;
  params["name"] = Value::String(name);
  params["protein"] = Value::String(protein);
  if (critical) {
    return db
        .Execute(
            "MATCH (c:CriticalEffect) WITH c LIMIT 1 "
            "CREATE (m:Mutation {name: $name, protein: $protein}) "
            "CREATE (m)-[:Risk]->(c)",
            params)
        .status();
  }
  return db
      .Execute("CREATE (:Mutation {name: $name, protein: $protein})", params)
      .status();
}

Status RegisterSequence(Database& db, const std::string& accession,
                        const std::string& lineage_name,
                        const std::string& mutation_name) {
  Params params;
  params["accession"] = Value::String(accession);
  params["lineage"] = Value::String(lineage_name);
  params["mutation"] = Value::String(mutation_name);
  return db
      .Execute(
          "MATCH (l:Lineage {name: $lineage}) "
          "MATCH (m:Mutation {name: $mutation}) "
          "MATCH (p:Patient) WITH l, m, p LIMIT 1 "
          "CREATE (s:Sequence {accession: $accession, collection: DATE()}) "
          "CREATE (p)-[:HasSample]->(s) "
          "CREATE (m)-[:FoundIn]->(s) "
          "CREATE (s)-[:BelongsTo]->(l)",
          params)
      .status();
}

Status ChangeWhoDesignation(Database& db, const std::string& lineage_name,
                            const std::string& designation) {
  Params params;
  params["lineage"] = Value::String(lineage_name);
  params["who"] = Value::String(designation);
  return db
      .Execute(
          "MATCH (l:Lineage {name: $lineage}) SET l.whoDesignation = $who",
          params)
      .status();
}

Result<int64_t> CountAlerts(Database& db) {
  PGT_ASSIGN_OR_RETURN(auto result,
                       db.Execute("MATCH (a:Alert) RETURN COUNT(*) AS n"));
  return result.rows[0][0].int_value();
}

Result<int64_t> CountIcuAt(Database& db, const std::string& hospital) {
  Params params;
  params["hospital"] = Value::String(hospital);
  PGT_ASSIGN_OR_RETURN(
      auto result,
      db.Execute("MATCH (p:IcuPatient)-[:TreatedAt]-"
                 "(h:Hospital {name: $hospital}) RETURN COUNT(p) AS n",
                 params));
  return result.rows[0][0].int_value();
}

Result<ScenarioOutcome> RunCovidScenario(Database& db,
                                         const CovidDataset& data,
                                         int admission_waves,
                                         int patients_per_wave) {
  (void)data;
  // Molecular-surveillance stream: new mutations, some critical.
  PGT_RETURN_IF_ERROR(
      RegisterMutation(db, "Spike:N501Y", "Spike", /*critical=*/true));
  PGT_RETURN_IF_ERROR(
      RegisterMutation(db, "ORF1a:T265I", "ORF1a", /*critical=*/false));
  PGT_RETURN_IF_ERROR(
      RegisterMutation(db, "Spike:E484K", "Spike", /*critical=*/true));

  // Sequencing stream: the critical mutation shows up in a new lineage.
  PGT_RETURN_IF_ERROR(
      RegisterSequence(db, "EPI_ISL_900001", "B.1.1", "Spike:N501Y"));
  PGT_RETURN_IF_ERROR(
      RegisterSequence(db, "EPI_ISL_900002", "B.1.2", "ORF1a:T265I"));

  // WHO designation updates (set, then an actual change).
  PGT_RETURN_IF_ERROR(ChangeWhoDesignation(db, "B.1.1", "Indian"));
  PGT_RETURN_IF_ERROR(ChangeWhoDesignation(db, "B.1.1", "Delta"));

  // Admission waves at Sacco (the hospitalization surge).
  for (int w = 0; w < admission_waves; ++w) {
    PGT_RETURN_IF_ERROR(AdmitIcuPatients(db, "Sacco", patients_per_wave,
                                         1000 + w * patients_per_wave));
  }

  ScenarioOutcome outcome;
  PGT_ASSIGN_OR_RETURN(outcome.alerts, CountAlerts(db));
  PGT_ASSIGN_OR_RETURN(outcome.icu_at_sacco, CountIcuAt(db, "Sacco"));
  PGT_ASSIGN_OR_RETURN(outcome.icu_at_meyer, CountIcuAt(db, "Meyer"));
  outcome.statements = db.stats().statements;
  return outcome;
}

}  // namespace pgt::covid
