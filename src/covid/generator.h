#ifndef PGTRIGGERS_COVID_GENERATOR_H_
#define PGTRIGGERS_COVID_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/storage/graph_store.h"

namespace pgt::covid {

/// Size and randomness knobs of the synthetic CoV2K dataset (DESIGN.md D8:
/// the real CoV2K knowledge base is replaced by a deterministic generator
/// with the Figure 4 schema).
struct GeneratorOptions {
  uint64_t seed = 42;
  int regions = 3;            // Lombardy, Tuscany, ... (first two fixed)
  int hospitals_per_region = 2;
  int icu_beds_min = 8;
  int icu_beds_max = 20;
  int labs_per_region = 2;
  int lineages = 8;           // a fraction get WHO designations
  int mutations = 30;         // a fraction get critical effects
  int critical_effects = 4;
  int patients = 100;
  int sequences = 150;        // sampled from patients, linked to lineages
  double critical_mutation_fraction = 0.2;
  double hospitalized_fraction = 0.3;  // of patients
};

/// Handles to generated anchor entities (used by workloads and tests).
struct CovidDataset {
  std::vector<NodeId> regions;
  std::vector<NodeId> hospitals;
  std::vector<NodeId> laboratories;
  std::vector<NodeId> lineages;
  std::vector<NodeId> mutations;
  std::vector<NodeId> critical_effects;
  std::vector<NodeId> patients;
  std::vector<NodeId> sequences;
  NodeId sacco;  // Hospital "Sacco" (Lombardy)
  NodeId meyer;  // Hospital "Meyer" (Tuscany)
};

/// Populates `store` with the Figure 4 graph: regions, hospitals (always
/// including Sacco in Lombardy and Meyer in Tuscany, pairwise ConnectedTo
/// with distances), laboratories, lineages, mutations (some linked to
/// critical effects via :Risk), patients (a fraction hospitalized), and
/// sequences (:HasSample / :FoundIn / :BelongsTo / :SequencedAt).
///
/// Writes directly to the store (no transaction, no trigger dispatch):
/// base data is in place *before* triggers are installed, exactly like the
/// paper's pre-populated Neo4j prototype.
CovidDataset GenerateCovidData(GraphStore& store,
                               const GeneratorOptions& options = {});

}  // namespace pgt::covid

#endif  // PGTRIGGERS_COVID_GENERATOR_H_
