#ifndef PGTRIGGERS_COVID_SCHEMA_H_
#define PGTRIGGERS_COVID_SCHEMA_H_

#include <string>

#include "src/schema/pg_schema.h"

namespace pgt::covid {

/// The PG-Schema of the paper's running example (Figures 4 and 5): the
/// CoV2K excerpt with Mutation, CriticalEffect, Sequence, Lineage,
/// Laboratory, Region, Patient (with the HospitalizedPatient and
/// IcuPatient hierarchy), Hospital, the Alert OPEN type the triggers
/// create, and the Risk / FoundIn / BelongsTo / SequencedAt / LocatedIn /
/// HasSample / TreatedAt / ConnectedTo relationships.
schema::SchemaDef BuildCovidSchema();

/// The same schema as Figure 5-style DDL text (parses back through
/// ParseSchemaDdl to an equivalent schema).
std::string CovidSchemaDdl();

}  // namespace pgt::covid

#endif  // PGTRIGGERS_COVID_SCHEMA_H_
