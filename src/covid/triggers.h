#ifndef PGTRIGGERS_COVID_TRIGGERS_H_
#define PGTRIGGERS_COVID_TRIGGERS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/trigger/database.h"

namespace pgt::covid {

/// The six PG-Triggers of Section 6.2, in the paper's order, as executable
/// DDL in our concrete syntax. Adaptations from the paper's informal
/// listings are mechanical and documented inline in triggers.cc:
/// integer-division guards (toFloat), explicit WITH carries, and the
/// FOREACH-based rendering of the relocation actions (the paper's
/// `THEN BEGIN ... END` pseudo-syntax).
///
///   [0] NewCriticalMutation        AFTER CREATE ON Mutation   FOR EACH
///   [1] NewCriticalLineage         AFTER CREATE ON BelongsTo  FOR EACH REL
///   [2] WhoDesignationChange       AFTER SET ON Lineage.whoDesignation
///   [3] IcuPatientsOverThreshold   AFTER CREATE ON IcuPatient FOR ALL
///   [4] IcuPatientIncrease         AFTER CREATE ON IcuPatient FOR ALL
///   [5] IcuPatientMove             AFTER CREATE ON IcuPatient FOR ALL
///   [6] MoveToNearHospital         AFTER CREATE ON IcuPatient FOR EACH
std::vector<std::string> PaperTriggerDdl();

/// Names of the paper triggers, aligned with PaperTriggerDdl().
std::vector<std::string> PaperTriggerNames();

/// MoveToNearHospital without the destination-capacity guard: the
/// Section 6.2.3 variant whose cascade "may not converge if ICU beds in
/// close hospitals are also exceeded".
std::string UnguardedMoveTriggerDdl();

/// Installs a subset of the paper triggers (all by default).
Status InstallPaperTriggers(Database& db,
                            const std::vector<std::string>& only = {});

}  // namespace pgt::covid

#endif  // PGTRIGGERS_COVID_TRIGGERS_H_
