#include "src/covid/triggers.h"

#include "src/common/macros.h"

namespace pgt::covid {

// The listings below are the Section 6.2 triggers in our concrete syntax.
// Differences from the paper's informal listings (all mechanical):
//  * the hierarchy is label-encoded, so (p:HospitalizedPatient:IcuPatient)
//    matches nodes carrying both labels (the paper notes Neo4j needs Isa
//    relationships instead — Section 6.3);
//  * `NewIcuPat / TotalIcuPat > 0.1` uses toFloat to avoid Cypher integer
//    division (which would always yield 0);
//  * the relocation actions render the paper's `THEN BEGIN ... END`
//    pseudo-syntax as plain Cypher with FOREACH over collected movers;
//  * bindings established in WHEN flow into the action (DESIGN.md D2), so
//    `l`, `h`, etc. are usable after BEGIN exactly as the paper intends.
std::vector<std::string> PaperTriggerDdl() {
  return {
      // 6.2.1 — reaction to node creation.
      R"ddl(CREATE TRIGGER NewCriticalMutation
AFTER CREATE
ON 'Mutation'
FOR EACH NODE
WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
BEGIN
  CREATE (:Alert {time: DATETIME(),
                  desc: 'New critical mutation',
                  mutation: NEW.name})
END)ddl",

      // 6.2.1 — reaction to relationship creation; condition merged with
      // a pattern query binding l (used in the action).
      R"ddl(CREATE TRIGGER NewCriticalLineage
AFTER CREATE
ON 'BelongsTo'
FOR EACH RELATIONSHIP
WHEN
  MATCH (s:Sequence)-[NEW]-(l:Lineage)
  WHERE EXISTS { MATCH (:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(s) }
BEGIN
  CREATE (:Alert {time: DATETIME(),
                  desc: 'New critical lineage',
                  lineage: l.name})
END)ddl",

      // 6.2.1 — property-change monitor with OLD/NEW comparison.
      R"ddl(CREATE TRIGGER WhoDesignationChange
AFTER SET
ON 'Lineage'.'whoDesignation'
FOR EACH NODE
WHEN OLD.whoDesignation <> NEW.whoDesignation
BEGIN
  CREATE (:Alert {time: DATETIME(),
                  desc: 'New Designation for an existing Lineage'})
END)ddl",

      // 6.2.2 — set granularity, fixed threshold.
      R"ddl(CREATE TRIGGER IcuPatientsOverThreshold
AFTER CREATE
ON 'IcuPatient'
FOR ALL NODES
WHEN
  MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Sacco'})
  WITH COUNT(p) AS icuPat
  WHERE icuPat > 50
BEGIN
  CREATE (:Alert {time: DATETIME(),
                  desc: 'ICU patients at Sacco Hospital are more than 50'})
END)ddl",

      // 6.2.2 — set granularity, state comparison via NEWNODES.
      R"ddl(CREATE TRIGGER IcuPatientIncrease
AFTER CREATE
ON 'IcuPatient'
FOR ALL NODES
WHEN
  MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Sacco'})
  WITH COUNT(p) AS TotalIcuPat
  MATCH (pn:NEWNODES)-[:TreatedAt]-(:Hospital {name: 'Sacco'})
  WITH TotalIcuPat, COUNT(pn) AS NewIcuPat
  WHERE TotalIcuPat > 0 AND toFloat(NewIcuPat) / TotalIcuPat > 0.1
BEGIN
  CREATE (:Alert {time: DATETIME(),
                  desc: 'ICU patients at Sacco Hospital have increased by more than 10%'})
END)ddl",

      // 6.2.3 — side effects in the action: relocate the newly admitted
      // Sacco patients to Meyer when Sacco exceeds capacity and Meyer can
      // absorb them.
      R"ddl(CREATE TRIGGER IcuPatientMove
AFTER CREATE
ON 'IcuPatient'
FOR ALL NODES
WHEN
  MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(h:Hospital {name: 'Sacco'})
  WITH h, COUNT(p) AS TotalIcuPat
  WHERE TotalIcuPat > h.icuBeds
BEGIN
  MATCH (ht:Hospital {name: 'Meyer'})
  OPTIONAL MATCH (pt:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(ht)
  WITH ht, COUNT(pt) AS MeyerICU
  MATCH (pn:NEWNODES)-[c:TreatedAt]-(:Hospital {name: 'Sacco'})
  WITH ht, MeyerICU, COLLECT(pn) AS movers, COLLECT(c) AS oldRels
  WHERE MeyerICU + SIZE(movers) <= ht.icuBeds
  FOREACH (r IN oldRels | DELETE r)
  FOREACH (p IN movers | CREATE (p)-[:TreatedAt]->(ht))
END)ddl",

      // 6.2.3 — item granularity: move each newly admitted patient of an
      // overflowing Lombardy hospital to the closest connected hospital.
      R"ddl(CREATE TRIGGER MoveToNearHospital
AFTER CREATE
ON 'IcuPatient'
FOR EACH NODE
WHEN
  MATCH (NEW)-[:TreatedAt]-(h:Hospital)-[:LocatedIn]-(:Region {name: 'Lombardy'})
  MATCH (p:IcuPatient)-[:TreatedAt]-(h)
  WITH h, COUNT(p) AS TotalIcuPat
  WHERE TotalIcuPat > h.icuBeds
BEGIN
  MATCH (NEW)-[c:TreatedAt]-(h)
  MATCH (h)-[ct:ConnectedTo]-(hc:Hospital)
  WITH NEW AS pn, c, hc, ct ORDER BY ct.distance LIMIT 1
  DELETE c
  CREATE (pn)-[:TreatedAt]->(hc)
END)ddl",
  };
}

std::vector<std::string> PaperTriggerNames() {
  return {"NewCriticalMutation",      "NewCriticalLineage",
          "WhoDesignationChange",     "IcuPatientsOverThreshold",
          "IcuPatientIncrease",       "IcuPatientMove",
          "MoveToNearHospital"};
}

std::string UnguardedMoveTriggerDdl() {
  // The Section 6.2.3 closing discussion: relocation reacting to the
  // relocation relationships themselves, *without* testing the
  // destination's bed availability — "failure to do the test may lead to
  // potential non-termination". Patients bounce between saturated
  // hospitals until the engine's cascade depth limit aborts the
  // transaction.
  return R"ddl(CREATE TRIGGER CascadingRelocation
AFTER CREATE
ON 'TreatedAt'
FOR EACH RELATIONSHIP
WHEN
  MATCH (p:IcuPatient)-[NEW]-(h:Hospital)
  MATCH (q:IcuPatient)-[:TreatedAt]-(h)
  WITH p, h, COUNT(q) AS icu
  WHERE icu > h.icuBeds
BEGIN
  MATCH (p)-[c:TreatedAt]-(h)
  MATCH (h)-[ct:ConnectedTo]-(hc:Hospital)
  WITH p, c, hc, ct ORDER BY ct.distance LIMIT 1
  DELETE c
  CREATE (p)-[:TreatedAt]->(hc)
END)ddl";
}

Status InstallPaperTriggers(Database& db,
                            const std::vector<std::string>& only) {
  const std::vector<std::string> ddl = PaperTriggerDdl();
  const std::vector<std::string> names = PaperTriggerNames();
  for (size_t i = 0; i < ddl.size(); ++i) {
    if (!only.empty()) {
      bool wanted = false;
      for (const std::string& n : only) {
        if (n == names[i]) wanted = true;
      }
      if (!wanted) continue;
    }
    PGT_RETURN_IF_ERROR(db.Execute(ddl[i]).status());
  }
  return Status::OK();
}

}  // namespace pgt::covid
