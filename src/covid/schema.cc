#include "src/covid/schema.h"

namespace pgt::covid {

using schema::EdgeTypeSpec;
using schema::NodeTypeSpec;
using schema::PropertySpec;
using schema::PropType;
using schema::SchemaDef;

SchemaDef BuildCovidSchema() {
  SchemaDef s;
  s.name = "CovidGraphType";
  s.strict = true;

  auto node = [&](const std::string& type_name, const std::string& label,
                  const std::string& parent, bool open,
                  std::vector<PropertySpec> props) {
    NodeTypeSpec t;
    t.type_name = type_name;
    t.label = label;
    t.parent = parent;
    t.open = open;
    t.props = std::move(props);
    s.node_types.push_back(std::move(t));
  };
  auto edge = [&](const std::string& type_name, const std::string& rel,
                  const std::string& src, const std::string& dst,
                  std::vector<PropertySpec> props = {}) {
    EdgeTypeSpec e;
    e.type_name = type_name;
    e.rel_type = rel;
    e.src_type = src;
    e.dst_type = dst;
    e.props = std::move(props);
    s.edge_types.push_back(std::move(e));
  };
  auto p = [](const std::string& name, PropType type, bool optional = false,
              bool key = false) {
    PropertySpec spec;
    spec.name = name;
    spec.type = type;
    spec.optional = optional;
    spec.is_key = key;
    return spec;
  };

  // Node types (Figure 4).
  node("MutationType", "Mutation", "", false,
       {p("name", PropType::kString), p("protein", PropType::kString)});
  node("CriticalEffectType", "CriticalEffect", "", false,
       {p("description", PropType::kString)});
  node("SequenceType", "Sequence", "", false,
       {p("accession", PropType::kString, false, true),
        p("collection", PropType::kDate)});
  node("LineageType", "Lineage", "", false,
       {p("name", PropType::kString),
        p("whoDesignation", PropType::kString, true)});
  node("LaboratoryType", "Laboratory", "", false,
       {p("name", PropType::kString)});
  node("RegionType", "Region", "", false, {p("name", PropType::kString)});
  node("PatientType", "Patient", "", false,
       {p("ssn", PropType::kString, false, true),
        p("name", PropType::kString), p("sex", PropType::kChar),
        p("comorbidity", PropType::kStringArray, true),
        p("vaccinated", PropType::kInt)});
  node("HospitalizedPatientType", "HospitalizedPatient", "PatientType",
       false,
       {p("id", PropType::kInt), p("prognosis", PropType::kString)});
  node("IcuPatientType", "IcuPatient", "HospitalizedPatientType", false,
       {p("admission", PropType::kDate),
        p("admittedToICU", PropType::kBool, true)});
  node("HospitalType", "Hospital", "", false,
       {p("name", PropType::kString), p("icuBeds", PropType::kInt)});
  // Alert is OPEN: triggers attach arbitrary extra properties (Section
  // 6.2: "of a new, OPEN type (allowing for the inclusion of arbitrary
  // properties)").
  node("AlertType", "Alert", "", true,
       {p("time", PropType::kDateTime), p("desc", PropType::kString)});

  // Edge types (Figure 4).
  edge("RiskType", "Risk", "MutationType", "CriticalEffectType");
  edge("FoundInType", "FoundIn", "MutationType", "SequenceType");
  edge("BelongsToType", "BelongsTo", "SequenceType", "LineageType");
  edge("SequencedAtType", "SequencedAt", "SequenceType", "LaboratoryType");
  edge("LabLocatedInType", "LabLocatedIn", "LaboratoryType", "RegionType");
  edge("HasSampleType", "HasSample", "PatientType", "SequenceType");
  edge("TreatedAtType", "TreatedAt", "HospitalizedPatientType",
       "HospitalType");
  edge("LocatedInType", "LocatedIn", "HospitalType", "RegionType");
  edge("ConnectedToType", "ConnectedTo", "HospitalType", "HospitalType",
       {p("distance", PropType::kInt)});
  return s;
}

std::string CovidSchemaDdl() { return BuildCovidSchema().ToDdl(); }

}  // namespace pgt::covid
