#include "src/emul/apoc_emulator.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/cypher/parser.h"

namespace pgt::emul {

namespace {

/// Converts a parameter-map Value (from apoc.do.when's fourth argument)
/// into both query parameters and row bindings for the nested statement.
void SeedFromMap(const Value& map, Params* params, cypher::Row* row) {
  if (!map.is_map()) return;
  for (const auto& [k, v] : map.map_value()) {
    (*params)[k] = v;
    row->Set(k, v);
  }
}

}  // namespace

ApocEmulator::ApocEmulator(Database* db) : db_(db) {
  // apoc.do.when(condition, thenQuery, elseQuery, params) YIELD value.
  db_->procedures().Register(
      "apoc.do.when", {"value"},
      [db](cypher::EvalContext& ctx, const std::vector<Value>& args,
           const cypher::Row& row) -> Result<std::vector<cypher::Row>> {
        (void)row;
        if (args.size() < 3) {
          return Status::InvalidArgument(
              "apoc.do.when expects (condition, ifQuery, elseQuery[, "
              "params])");
        }
        const bool cond = args[0].is_bool() && args[0].bool_value();
        const Value& query_text =
            cond ? args[1] : args[2];
        cypher::Row out_row;
        out_row.Set("value", Value::Bool(cond));
        std::vector<cypher::Row> out = {out_row};
        if (!query_text.is_string() || query_text.string_value().empty()) {
          return out;
        }
        Params params;
        cypher::Row seed;
        if (args.size() >= 4) SeedFromMap(args[3], &params, &seed);
        PGT_ASSIGN_OR_RETURN(
            cypher::Query q,
            cypher::Parser::ParseQuery(query_text.string_value()));
        cypher::EvalContext sub = ctx;
        sub.params = &params;
        cypher::Executor exec(sub);
        PGT_ASSIGN_OR_RETURN(auto rows, exec.RunClauses(q.clauses, {seed}));
        (void)rows;
        return out;
      });
}

Status ApocEmulator::Install(const std::string& name,
                             const std::string& statement,
                             const std::string& phase) {
  if (phase != "before" && phase != "rollback" && phase != "after" &&
      phase != "afterAsync") {
    return Status::InvalidArgument("unknown APOC phase '" + phase + "'");
  }
  for (const InstalledTrigger& t : triggers_) {
    if (t.name == name) {
      return Status::AlreadyExists("APOC trigger '" + name +
                                   "' already installed");
    }
  }
  InstalledTrigger trigger;
  trigger.name = name;
  trigger.phase = phase;
  trigger.source = statement;
  PGT_ASSIGN_OR_RETURN(trigger.query, cypher::Parser::ParseQuery(statement));
  triggers_.push_back(std::move(trigger));
  return Status::OK();
}

Status ApocEmulator::Install(const translate::ApocTrigger& trigger) {
  return Install(trigger.name, trigger.statement, trigger.phase);
}

Status ApocEmulator::Drop(const std::string& name) {
  for (auto it = triggers_.begin(); it != triggers_.end(); ++it) {
    if (it->name == name) {
      triggers_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("APOC trigger '" + name + "' not installed");
}

void ApocEmulator::DropAll() { triggers_.clear(); }

Status ApocEmulator::Stop(const std::string& name) {
  for (InstalledTrigger& t : triggers_) {
    if (t.name == name) {
      t.paused = true;
      return Status::OK();
    }
  }
  return Status::NotFound("APOC trigger '" + name + "' not installed");
}

Status ApocEmulator::Start(const std::string& name) {
  for (InstalledTrigger& t : triggers_) {
    if (t.name == name) {
      t.paused = false;
      return Status::OK();
    }
  }
  return Status::NotFound("APOC trigger '" + name + "' not installed");
}

uint64_t ApocEmulator::fired(const std::string& name) const {
  for (const InstalledTrigger& t : triggers_) {
    if (t.name == name) return t.fired;
  }
  return 0;
}

void ApocEmulator::QueueInterleaved(const std::string& statement) {
  interleaved_.push_back(statement);
}

Params ApocEmulator::BuildUtilityParams(const GraphDelta& delta,
                                        const StoreView& store) {
  Params params;
  {
    Value::List nodes;
    for (NodeId id : delta.created_nodes) nodes.push_back(Value::Node(id));
    params["createdNodes"] = Value::MakeList(std::move(nodes));
  }
  {
    Value::List rels;
    for (RelId id : delta.created_rels) rels.push_back(Value::Rel(id));
    params["createdRelationships"] = Value::MakeList(std::move(rels));
  }
  {
    Value::List nodes;
    for (const DeletedNodeImage& img : delta.deleted_nodes) {
      nodes.push_back(Value::Node(img.id));
    }
    params["deletedNodes"] = Value::MakeList(std::move(nodes));
  }
  {
    Value::List rels;
    for (const DeletedRelImage& img : delta.deleted_rels) {
      rels.push_back(Value::Rel(img.id));
    }
    params["deletedRelationships"] = Value::MakeList(std::move(rels));
  }
  // assignedLabels / removedLabels: map label name -> list of nodes.
  auto label_map = [&](const std::vector<LabelChange>& changes) {
    std::map<std::string, Value::List> by_label;
    for (const LabelChange& lc : changes) {
      by_label[store.LabelName(lc.label)].push_back(Value::Node(lc.node));
    }
    Value::Map out;
    for (auto& [label, nodes] : by_label) {
      out[label] = Value::MakeList(std::move(nodes));
    }
    return Value::MakeMap(std::move(out));
  };
  params["assignedLabels"] = label_map(delta.assigned_labels);
  params["removedLabels"] = label_map(delta.removed_labels);
  // assigned/removed node properties: map key -> list of quadruples/triples
  // {node, key, old, new} (Table 2).
  auto node_prop_map = [&](const std::vector<NodePropChange>& changes,
                           bool with_new) {
    std::map<std::string, Value::List> by_key;
    for (const NodePropChange& pc : changes) {
      Value::Map entry;
      entry["node"] = Value::Node(pc.node);
      entry["key"] = Value::String(store.PropKeyName(pc.key));
      entry["old"] = pc.old_value;
      if (with_new) entry["new"] = pc.new_value;
      by_key[store.PropKeyName(pc.key)].push_back(
          Value::MakeMap(std::move(entry)));
    }
    Value::Map out;
    for (auto& [key, list] : by_key) {
      out[key] = Value::MakeList(std::move(list));
    }
    return Value::MakeMap(std::move(out));
  };
  params["assignedNodeProperties"] =
      node_prop_map(delta.assigned_node_props, /*with_new=*/true);
  params["removedNodeProperties"] =
      node_prop_map(delta.removed_node_props, /*with_new=*/false);
  auto rel_prop_map = [&](const std::vector<RelPropChange>& changes,
                          bool with_new) {
    std::map<std::string, Value::List> by_key;
    for (const RelPropChange& pc : changes) {
      Value::Map entry;
      entry["rel"] = Value::Rel(pc.rel);
      entry["key"] = Value::String(store.PropKeyName(pc.key));
      entry["old"] = pc.old_value;
      if (with_new) entry["new"] = pc.new_value;
      by_key[store.PropKeyName(pc.key)].push_back(
          Value::MakeMap(std::move(entry)));
    }
    Value::Map out;
    for (auto& [key, list] : by_key) {
      out[key] = Value::MakeList(std::move(list));
    }
    return Value::MakeMap(std::move(out));
  };
  params["assignedRelProperties"] =
      rel_prop_map(delta.assigned_rel_props, /*with_new=*/true);
  params["removedRelProperties"] =
      rel_prop_map(delta.removed_rel_props, /*with_new=*/false);
  return params;
}

std::vector<ApocEmulator::InstalledTrigger*> ApocEmulator::ByPhaseAlphabetical(
    const std::vector<std::string>& phases) {
  std::vector<InstalledTrigger*> out;
  for (InstalledTrigger& t : triggers_) {
    if (t.paused) continue;
    for (const std::string& p : phases) {
      if (t.phase == p) {
        out.push_back(&t);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const InstalledTrigger* a, const InstalledTrigger* b) {
              return a->name < b->name;
            });
  return out;
}

Status ApocEmulator::RunTriggerQuery(Transaction& tx,
                                     InstalledTrigger& trigger,
                                     const Params& params) {
  ++trigger.fired;
  cypher::EvalContext ctx = db_->MakeEvalContext(&tx, &params, nullptr);
  cypher::Executor exec(ctx);
  PGT_ASSIGN_OR_RETURN(auto rows,
                       exec.RunClauses(trigger.query.clauses,
                                       {cypher::Row{}}));
  (void)rows;
  return Status::OK();
}

Status ApocEmulator::OnStatement(Transaction& tx, const GraphDelta& delta) {
  // APOC triggers are transaction-scoped; nothing happens per statement.
  (void)tx;
  (void)delta;
  return Status::OK();
}

Status ApocEmulator::OnCommitPoint(Transaction& tx) {
  if (in_trigger_context_) return Status::OK();  // no cascading (§5.1)
  // The 'before' phase: every installed before-trigger runs exactly once,
  // in alphabetical order, on the whole transaction delta — regardless of
  // what the transaction actually touched.
  const GraphDelta delta = tx.AccumulatedDelta();
  if (delta.Empty()) return Status::OK();
  Params params = BuildUtilityParams(delta, StoreView::Live(db_->store()));
  for (InstalledTrigger* t : ByPhaseAlphabetical({"before"})) {
    tx.PushDeltaScope();
    Status st = RunTriggerQuery(tx, *t, params);
    tx.PopDeltaScope();  // effects merge; they never re-activate triggers
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status ApocEmulator::AfterCommit(const GraphDelta& tx_delta) {
  if (in_trigger_context_) return Status::OK();  // cascade blocked (§5.1)
  if (tx_delta.Empty()) return Status::OK();
  std::vector<InstalledTrigger*> to_run =
      ByPhaseAlphabetical({"after", "afterAsync"});
  if (to_run.empty()) return Status::OK();

  // afterAsync race: other transactions may commit between the activating
  // commit and the trigger execution (deterministically injected here).
  std::vector<std::string> interleaved = std::move(interleaved_);
  interleaved_.clear();
  for (const std::string& stmt : interleaved) {
    // Nested entry: this runs inside CommitWithTriggers, on the writer
    // thread, under the caller's writer-interlock hold.
    auto r = db_->ExecuteNested(stmt);
    PGT_RETURN_IF_ERROR(r.status());
  }

  in_trigger_context_ = true;
  Params params = BuildUtilityParams(tx_delta, StoreView::Live(db_->store()));
  auto tx_or = db_->BeginTx();
  if (!tx_or.ok()) {
    in_trigger_context_ = false;
    return tx_or.status();
  }
  std::unique_ptr<Transaction> tx = std::move(tx_or).value();
  // Keep deleted items readable inside the trigger transaction.
  for (const DeletedNodeImage& img : tx_delta.deleted_nodes) {
    tx->InjectGhostNode(img);
  }
  for (const DeletedRelImage& img : tx_delta.deleted_rels) {
    tx->InjectGhostRel(img);
  }
  Status st = Status::OK();
  for (InstalledTrigger* t : to_run) {
    st = RunTriggerQuery(*tx, *t, params);
    if (!st.ok()) break;
  }
  if (st.ok()) {
    st = db_->CommitWithTriggers(std::move(tx));
  } else {
    db_->RollbackAndRelease(std::move(tx));
  }
  in_trigger_context_ = false;
  return st;
}

}  // namespace pgt::emul
