#include "src/emul/memgraph_emulator.h"

#include "src/common/macros.h"
#include "src/cypher/parser.h"

namespace pgt::emul {

using translate::MgEventClass;

Status MemgraphEmulator::Install(const std::string& name,
                                 MgEventClass event_class, bool before_commit,
                                 const std::string& statement) {
  for (const InstalledTrigger& t : triggers_) {
    if (t.name == name) {
      return Status::AlreadyExists("Memgraph trigger '" + name +
                                   "' already exists");
    }
  }
  InstalledTrigger trigger;
  trigger.name = name;
  trigger.event_class = event_class;
  trigger.before_commit = before_commit;
  trigger.source = statement;
  PGT_ASSIGN_OR_RETURN(trigger.query, cypher::Parser::ParseQuery(statement));
  triggers_.push_back(std::move(trigger));
  return Status::OK();
}

Status MemgraphEmulator::Install(const translate::MemgraphTrigger& trigger) {
  return Install(trigger.name, trigger.event_class, trigger.before_commit,
                 trigger.statement);
}

Status MemgraphEmulator::Drop(const std::string& name) {
  for (auto it = triggers_.begin(); it != triggers_.end(); ++it) {
    if (it->name == name) {
      triggers_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("Memgraph trigger '" + name + "' not installed");
}

void MemgraphEmulator::DropAll() { triggers_.clear(); }

uint64_t MemgraphEmulator::fired(const std::string& name) const {
  for (const InstalledTrigger& t : triggers_) {
    if (t.name == name) return t.fired;
  }
  return 0;
}

bool MemgraphEmulator::EventClassMatches(MgEventClass e,
                                         const GraphDelta& delta) {
  switch (e) {
    case MgEventClass::kAny:
      return !delta.Empty();
    case MgEventClass::kVertexCreate:
      return !delta.created_nodes.empty();
    case MgEventClass::kEdgeCreate:
      return !delta.created_rels.empty();
    case MgEventClass::kVertexDelete:
      return !delta.deleted_nodes.empty();
    case MgEventClass::kEdgeDelete:
      return !delta.deleted_rels.empty();
    case MgEventClass::kVertexUpdate:
      return !delta.assigned_labels.empty() ||
             !delta.removed_labels.empty() ||
             !delta.assigned_node_props.empty() ||
             !delta.removed_node_props.empty();
    case MgEventClass::kEdgeUpdate:
      return !delta.assigned_rel_props.empty() ||
             !delta.removed_rel_props.empty();
  }
  return false;
}

cypher::Row MemgraphEmulator::BuildPredefinedVars(const GraphDelta& delta,
                                                  const StoreView& store) {
  cypher::Row row;
  Value::List created_vertices, created_edges, created_objects;
  for (NodeId id : delta.created_nodes) {
    created_vertices.push_back(Value::Node(id));
    created_objects.push_back(Value::Node(id));
  }
  for (RelId id : delta.created_rels) {
    created_edges.push_back(Value::Rel(id));
    created_objects.push_back(Value::Rel(id));
  }
  Value::List deleted_vertices, deleted_edges, deleted_objects;
  for (const DeletedNodeImage& img : delta.deleted_nodes) {
    deleted_vertices.push_back(Value::Node(img.id));
    deleted_objects.push_back(Value::Node(img.id));
  }
  for (const DeletedRelImage& img : delta.deleted_rels) {
    deleted_edges.push_back(Value::Rel(img.id));
    deleted_objects.push_back(Value::Rel(img.id));
  }

  auto prop_entry = [&](const Value& item, PropKeyId key, const Value& oldv,
                        const Value& newv, bool with_new,
                        const char* item_field) {
    Value::Map m;
    m[item_field] = item;
    m["key"] = Value::String(store.PropKeyName(key));
    m["old"] = oldv;
    if (with_new) m["new"] = newv;
    return Value::MakeMap(std::move(m));
  };

  Value::List set_vprops, removed_vprops, set_eprops, removed_eprops;
  Value::List updated_vertices, updated_edges, updated_objects;
  for (const NodePropChange& pc : delta.assigned_node_props) {
    Value entry = prop_entry(Value::Node(pc.node), pc.key, pc.old_value,
                             pc.new_value, true, "vertex");
    set_vprops.push_back(entry);
    updated_vertices.push_back(entry);
    updated_objects.push_back(entry);
  }
  for (const NodePropChange& pc : delta.removed_node_props) {
    Value entry = prop_entry(Value::Node(pc.node), pc.key, pc.old_value,
                             Value(), false, "vertex");
    removed_vprops.push_back(entry);
    updated_vertices.push_back(entry);
    updated_objects.push_back(entry);
  }
  for (const RelPropChange& pc : delta.assigned_rel_props) {
    Value entry = prop_entry(Value::Rel(pc.rel), pc.key, pc.old_value,
                             pc.new_value, true, "edge");
    set_eprops.push_back(entry);
    updated_edges.push_back(entry);
    updated_objects.push_back(entry);
  }
  for (const RelPropChange& pc : delta.removed_rel_props) {
    Value entry = prop_entry(Value::Rel(pc.rel), pc.key, pc.old_value,
                             Value(), false, "edge");
    removed_eprops.push_back(entry);
    updated_edges.push_back(entry);
    updated_objects.push_back(entry);
  }

  Value::List set_vlabels, removed_vlabels;
  for (const LabelChange& lc : delta.assigned_labels) {
    Value::Map m;
    m["vertex"] = Value::Node(lc.node);
    m["label"] = Value::String(store.LabelName(lc.label));
    Value entry = Value::MakeMap(std::move(m));
    set_vlabels.push_back(entry);
    updated_vertices.push_back(entry);
    updated_objects.push_back(entry);
  }
  for (const LabelChange& lc : delta.removed_labels) {
    Value::Map m;
    m["vertex"] = Value::Node(lc.node);
    m["label"] = Value::String(store.LabelName(lc.label));
    Value entry = Value::MakeMap(std::move(m));
    removed_vlabels.push_back(entry);
    updated_vertices.push_back(entry);
    updated_objects.push_back(entry);
  }

  row.Set("createdVertices", Value::MakeList(std::move(created_vertices)));
  row.Set("createdEdges", Value::MakeList(std::move(created_edges)));
  row.Set("createdObjects", Value::MakeList(std::move(created_objects)));
  row.Set("deletedVertices", Value::MakeList(std::move(deleted_vertices)));
  row.Set("deletedEdges", Value::MakeList(std::move(deleted_edges)));
  row.Set("deletedObjects", Value::MakeList(std::move(deleted_objects)));
  row.Set("updatedVertices", Value::MakeList(std::move(updated_vertices)));
  row.Set("updatedEdges", Value::MakeList(std::move(updated_edges)));
  row.Set("updatedObjects", Value::MakeList(std::move(updated_objects)));
  row.Set("setVertexLabels", Value::MakeList(std::move(set_vlabels)));
  row.Set("removedVertexLabels", Value::MakeList(std::move(removed_vlabels)));
  row.Set("setVertexProperties", Value::MakeList(std::move(set_vprops)));
  row.Set("setEdgeProperties", Value::MakeList(std::move(set_eprops)));
  row.Set("removedVertexProperties",
          Value::MakeList(std::move(removed_vprops)));
  row.Set("removedEdgeProperties",
          Value::MakeList(std::move(removed_eprops)));
  return row;
}

Status MemgraphEmulator::RunTrigger(Transaction& tx,
                                    InstalledTrigger& trigger,
                                    const cypher::Row& vars) {
  ++trigger.fired;
  cypher::EvalContext ctx = db_->MakeEvalContext(&tx, nullptr, nullptr);
  cypher::Executor exec(ctx);
  PGT_ASSIGN_OR_RETURN(auto rows, exec.RunClauses(trigger.query.clauses,
                                                  {vars}));
  (void)rows;
  return Status::OK();
}

Status MemgraphEmulator::OnStatement(Transaction& tx,
                                     const GraphDelta& delta) {
  (void)tx;
  (void)delta;
  return Status::OK();  // Memgraph triggers are transaction-scoped.
}

Status MemgraphEmulator::OnCommitPoint(Transaction& tx) {
  if (in_trigger_context_) return Status::OK();  // no cascading (§5.2)
  const GraphDelta delta = tx.AccumulatedDelta();
  if (delta.Empty()) return Status::OK();
  cypher::Row vars = BuildPredefinedVars(delta, StoreView::Live(db_->store()));
  for (InstalledTrigger& t : triggers_) {  // creation order
    if (!t.before_commit) continue;
    if (!EventClassMatches(t.event_class, delta)) continue;
    tx.PushDeltaScope();
    Status st = RunTrigger(tx, t, vars);
    tx.PopDeltaScope();  // effects merge but never re-activate triggers
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status MemgraphEmulator::AfterCommit(const GraphDelta& tx_delta) {
  if (in_trigger_context_) return Status::OK();  // cascade blocked (§5.2)
  if (tx_delta.Empty()) return Status::OK();
  bool any = false;
  for (InstalledTrigger& t : triggers_) {
    if (!t.before_commit && EventClassMatches(t.event_class, tx_delta)) {
      any = true;
    }
  }
  if (!any) return Status::OK();

  in_trigger_context_ = true;
  cypher::Row vars = BuildPredefinedVars(tx_delta, StoreView::Live(db_->store()));
  auto tx_or = db_->BeginTx();
  if (!tx_or.ok()) {
    in_trigger_context_ = false;
    return tx_or.status();
  }
  std::unique_ptr<Transaction> tx = std::move(tx_or).value();
  for (const DeletedNodeImage& img : tx_delta.deleted_nodes) {
    tx->InjectGhostNode(img);
  }
  for (const DeletedRelImage& img : tx_delta.deleted_rels) {
    tx->InjectGhostRel(img);
  }
  Status st = Status::OK();
  for (InstalledTrigger& t : triggers_) {
    if (t.before_commit) continue;
    if (!EventClassMatches(t.event_class, tx_delta)) continue;
    st = RunTrigger(*tx, t, vars);
    if (!st.ok()) break;
  }
  if (st.ok()) {
    st = db_->CommitWithTriggers(std::move(tx));
  } else {
    db_->RollbackAndRelease(std::move(tx));
  }
  in_trigger_context_ = false;
  return st;
}

}  // namespace pgt::emul
