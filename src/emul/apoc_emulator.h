#ifndef PGTRIGGERS_EMUL_APOC_EMULATOR_H_
#define PGTRIGGERS_EMUL_APOC_EMULATOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/trigger/database.h"
#include "src/translate/apoc_translator.h"

namespace pgt::emul {

/// Emulation of the Neo4j APOC trigger runtime (paper Section 5.1) on top
/// of our store — so the paper's reported APOC behaviors are executable and
/// comparable against the native PG-Trigger engine:
///
///  * `before` phase: runs right before the commit of the activating
///    transaction — ALL installed before-triggers, exactly once, in
///    ALPHABETICAL order, regardless of what the transaction touched
///    ("all the installed triggers are activated, only once, in alphabetic
///    order, regardless of the specific node or relationship type").
///  * `after` / `afterAsync` phases: run after the commit, all within a
///    single new transaction; cascading is explicitly blocked — changes
///    produced by a trigger transaction never activate triggers
///    (APOC tags such data via metadata; we flag the trigger transaction).
///  * `afterAsync` visibility race: other committed transactions can
///    interleave between the activating commit and the trigger run; the
///    emulator models this deterministically via QueueInterleaved(), so
///    the paper's "triggers may not see the final state produced by the
///    transaction that activates them" warning becomes a testable fact.
///
/// Trigger statements are Cypher (our subset) over the Table 2 utility
/// parameters ($createdNodes, $assignedNodeProperties, ...); the
/// apoc.do.when procedure is registered into the Database's procedure
/// registry on construction.
class ApocEmulator : public TriggerRuntime {
 public:
  struct InstalledTrigger {
    std::string name;
    std::string phase;  // before | rollback | after | afterAsync
    cypher::Query query;
    bool paused = false;
    std::string source;
    uint64_t fired = 0;
  };

  explicit ApocEmulator(Database* db);

  /// apoc.trigger.install(databaseName is implicit, name, statement,
  /// {phase}).
  Status Install(const std::string& name, const std::string& statement,
                 const std::string& phase);
  /// Installs a translator output directly.
  Status Install(const translate::ApocTrigger& trigger);
  /// apoc.trigger.drop / dropAll / stop / start.
  Status Drop(const std::string& name);
  void DropAll();
  Status Stop(const std::string& name);
  Status Start(const std::string& name);

  const std::vector<InstalledTrigger>& triggers() const { return triggers_; }
  uint64_t fired(const std::string& name) const;

  /// Queues a statement to commit between the activating transaction's
  /// commit and the afterAsync trigger execution (the race of Section 5.1).
  void QueueInterleaved(const std::string& statement);

  // --- TriggerRuntime -------------------------------------------------------
  Status OnStatement(Transaction& tx, const GraphDelta& delta) override;
  Status OnCommitPoint(Transaction& tx) override;
  Status AfterCommit(const GraphDelta& tx_delta) override;
  const char* name() const override { return "apoc-emulation"; }

  /// Builds the Table 2 utility parameter map from a delta (exposed for
  /// the Table 2 / Table 3 benches).
  static Params BuildUtilityParams(const GraphDelta& delta,
                                   const StoreView& store);

 private:
  std::vector<InstalledTrigger*> ByPhaseAlphabetical(
      const std::vector<std::string>& phases);
  Status RunTriggerQuery(Transaction& tx, InstalledTrigger& trigger,
                         const Params& params);

  Database* db_;
  std::vector<InstalledTrigger> triggers_;
  std::vector<std::string> interleaved_;
  bool in_trigger_context_ = false;
};

}  // namespace pgt::emul

#endif  // PGTRIGGERS_EMUL_APOC_EMULATOR_H_
