#ifndef PGTRIGGERS_EMUL_MEMGRAPH_EMULATOR_H_
#define PGTRIGGERS_EMUL_MEMGRAPH_EMULATOR_H_

#include <string>
#include <vector>

#include "src/trigger/database.h"
#include "src/translate/memgraph_translator.h"

namespace pgt::emul {

/// Emulation of the Memgraph trigger runtime (paper Section 5.2):
///
///  * `CREATE TRIGGER name [ON () CREATE | ON --> CREATE | ...]
///    BEFORE|AFTER COMMIT EXECUTE <openCypher>`;
///  * the statement sees the Table 4 predefined variables
///    (createdVertices, deletedEdges, setVertexProperties, ...) as plain
///    bindings — no $parameters, unlike APOC;
///  * BEFORE COMMIT runs right before the commit of the activating
///    transaction, inside it; AFTER COMMIT runs asynchronously after it, in
///    a new transaction;
///  * like APOC, triggers do not cascade: changes made by trigger
///    executions never activate triggers ("the trigger management
///    implementations ... are identical to those of Neo4j APOC procedures,
///    therefore also in Memgraph triggers do not correctly cascade");
///  * triggers run in creation order (no alphabetic reordering).
class MemgraphEmulator : public TriggerRuntime {
 public:
  struct InstalledTrigger {
    std::string name;
    translate::MgEventClass event_class = translate::MgEventClass::kAny;
    bool before_commit = false;
    cypher::Query query;
    std::string source;
    uint64_t fired = 0;
  };

  explicit MemgraphEmulator(Database* db) : db_(db) {}

  Status Install(const std::string& name,
                 translate::MgEventClass event_class, bool before_commit,
                 const std::string& statement);
  Status Install(const translate::MemgraphTrigger& trigger);
  Status Drop(const std::string& name);
  void DropAll();

  const std::vector<InstalledTrigger>& triggers() const { return triggers_; }
  uint64_t fired(const std::string& name) const;

  // --- TriggerRuntime -------------------------------------------------------
  Status OnStatement(Transaction& tx, const GraphDelta& delta) override;
  Status OnCommitPoint(Transaction& tx) override;
  Status AfterCommit(const GraphDelta& tx_delta) override;
  const char* name() const override { return "memgraph-emulation"; }

  /// Builds the Table 4 predefined-variable bindings from a delta
  /// (exposed for the Table 4 bench).
  static cypher::Row BuildPredefinedVars(const GraphDelta& delta,
                                         const StoreView& store);

  /// Does the event class fire for this delta?
  static bool EventClassMatches(translate::MgEventClass e,
                                const GraphDelta& delta);

 private:
  Status RunTrigger(Transaction& tx, InstalledTrigger& trigger,
                    const cypher::Row& vars);

  Database* db_;
  std::vector<InstalledTrigger> triggers_;
  bool in_trigger_context_ = false;
};

}  // namespace pgt::emul

#endif  // PGTRIGGERS_EMUL_MEMGRAPH_EMULATOR_H_
