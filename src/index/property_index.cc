#include "src/index/property_index.h"

#include <algorithm>

namespace pgt::index {

namespace {

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

int CmpDouble(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

/// NaN is unindexable: it would compare "equivalent" to every numeric
/// under CmpDouble, destroying the strict weak ordering the ordered map
/// needs. NaN never Equals anything (including itself) in Cypher, so
/// skipping it loses no equality matches.
bool IsNan(const Value& v) {
  return v.is_double() && v.double_value() != v.double_value();
}

bool SameBand(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return CmpDouble(a.as_double(), b.as_double()) == 0;
  }
  return a.TotalCompare(b) == 0;
}

/// The smallest key of `v`'s band under IndexKeyLess (doubles sort before
/// ints within a band).
Value BandStart(const Value& v) {
  return v.is_numeric() ? Value::Double(v.as_double()) : v;
}

}  // namespace

bool IndexKeyEq::operator()(const Value& a, const Value& b) const {
  return SameBand(a, b);
}

bool IndexKeyLess::operator()(const Value& a, const Value& b) const {
  if (a.is_numeric() && b.is_numeric()) {
    const int band = CmpDouble(a.as_double(), b.as_double());
    if (band != 0) return band < 0;
    const bool a_int = a.is_int(), b_int = b.is_int();
    if (a_int != b_int) return !a_int;  // double kind first within a band
    if (a_int) return a.int_value() < b.int_value();
    return false;  // double-equal doubles are the same key
  }
  return a.TotalCompare(b) < 0;
}

size_t ValueHash::operator()(const Value& v) const {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return std::hash<bool>{}(v.bool_value());
    case ValueType::kInt:
    case ValueType::kDouble:
      // Numerics coerce under TotalCompare (1 == 1.0), so both hash via
      // double. Ints beyond 2^53 may collide with nearby doubles; hash
      // collisions are benign, the equality predicate disambiguates.
      return std::hash<double>{}(v.as_double());
    case ValueType::kString:
      return std::hash<std::string_view>{}(v.string_value());
    case ValueType::kDate:
      return HashCombine(1, std::hash<int64_t>{}(v.date_value().days));
    case ValueType::kDateTime:
      return HashCombine(2, std::hash<int64_t>{}(v.datetime_value().micros));
    case ValueType::kNode:
      return HashCombine(3, std::hash<uint64_t>{}(v.node_id().value));
    case ValueType::kRel:
      return HashCombine(4, std::hash<uint64_t>{}(v.rel_id().value));
    case ValueType::kList: {
      size_t seed = 5;
      for (const Value& e : v.list_value()) {
        seed = HashCombine(seed, ValueHash{}(e));
      }
      return seed;
    }
    case ValueType::kMap: {
      size_t seed = 6;
      for (const auto& [k, e] : v.map_value()) {
        seed = HashCombine(seed, std::hash<std::string>{}(k));
        seed = HashCombine(seed, ValueHash{}(e));
      }
      return seed;
    }
  }
  return 0;
}

CompareClass CompareClassOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
    case ValueType::kDouble:
      // NaN is not range-plannable (see IsNan): the planner must fall
      // back to a scan rather than use it as an index bound.
      if (IsNan(v)) return CompareClass::kOther;
      return CompareClass::kNumeric;
    case ValueType::kString:
      return CompareClass::kString;
    case ValueType::kBool:
      return CompareClass::kBool;
    case ValueType::kDate:
      return CompareClass::kDate;
    case ValueType::kDateTime:
      return CompareClass::kDateTime;
    default:
      return CompareClass::kOther;
  }
}

const char* IndexKindName(IndexKind k) {
  return k == IndexKind::kHash ? "hash" : "ordered";
}

PropertyIndex::PropertyIndex(IndexSpec spec) : spec_(std::move(spec)) {}

size_t PropertyIndex::DistinctValues() const {
  return spec_.kind == IndexKind::kHash ? hash_.size() : ordered_.size();
}

void PropertyIndex::Insert(const Value& value, NodeId id) {
  if (value.is_null() || IsNan(value)) return;
  Postings& p = spec_.kind == IndexKind::kHash ? hash_[value]
                                               : ordered_[value];
  if (p.insert(id.value).second) ++entries_;
}

void PropertyIndex::Erase(const Value& value, NodeId id) {
  if (value.is_null() || IsNan(value)) return;
  if (spec_.kind == IndexKind::kHash) {
    auto it = hash_.find(value);
    if (it == hash_.end()) return;
    if (it->second.erase(id.value) > 0) --entries_;
    if (it->second.empty()) hash_.erase(it);
  } else {
    auto it = ordered_.find(value);
    if (it == ordered_.end()) return;
    if (it->second.erase(id.value) > 0) --entries_;
    if (it->second.empty()) ordered_.erase(it);
  }
}

void PropertyIndex::Lookup(const Value& value,
                           std::vector<uint64_t>* out) const {
  // NaN probes match nothing: NaN = NaN is false in Cypher.
  if (value.is_null() || IsNan(value)) return;
  const size_t start = out->size();
  if (spec_.kind == IndexKind::kHash) {
    // Hash buckets are band-granular already.
    auto it = hash_.find(value);
    if (it != hash_.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
    return;
  }
  // Ordered layout: a numeric band may span several exact keys (e.g. an
  // Int and a Double); collect the whole contiguous band.
  size_t keys = 0;
  for (auto it = ordered_.lower_bound(BandStart(value));
       it != ordered_.end() && SameBand(it->first, value); ++it) {
    out->insert(out->end(), it->second.begin(), it->second.end());
    ++keys;
  }
  if (keys > 1) std::sort(out->begin() + start, out->end());
}

std::optional<NodeId> PropertyIndex::FindConflict(
    const Value& value, std::optional<NodeId> self) const {
  std::vector<uint64_t> ids;
  Lookup(value, &ids);
  for (uint64_t id : ids) {
    if (!self.has_value() || id != self->value) return NodeId{id};
  }
  return std::nullopt;
}

void PropertyIndex::Range(const std::optional<Value>& lo, bool lo_inclusive,
                          const std::optional<Value>& hi, bool hi_inclusive,
                          std::vector<uint64_t>* out) const {
  if (spec_.kind != IndexKind::kOrdered) return;
  // The comparison class of the scan: ordering across classes yields NULL
  // in the evaluator, so only same-class keys can satisfy the predicate.
  const Value& ref = lo.has_value() ? *lo : *hi;
  const CompareClass cls = CompareClassOf(ref);
  if (cls == CompareClass::kOther) return;

  // Bound checks use TotalCompare (the evaluator's exact semantics); keys
  // whose *band* equals a bound still need the exact check because band
  // members can differ exactly (huge int vs double).
  auto passes_lo = [&](const Value& key) {
    if (!lo.has_value()) return true;
    const int c = key.TotalCompare(*lo);
    return lo_inclusive ? c >= 0 : c > 0;
  };
  auto passes_hi = [&](const Value& key) {
    if (!hi.has_value()) return true;
    const int c = key.TotalCompare(*hi);
    return hi_inclusive ? c <= 0 : c < 0;
  };
  auto beyond_hi = [&](const Value& key) {
    if (!hi.has_value()) return false;
    // Stop only past the bound's whole band: within it, later members may
    // still pass the exact check (kind ordering puts doubles first).
    if (key.is_numeric() && hi->is_numeric()) {
      return CmpDouble(key.as_double(), hi->as_double()) > 0;
    }
    return key.TotalCompare(*hi) > 0;
  };

  // Start at the lower bound's band so no double-equal member is skipped.
  auto it = lo.has_value() ? ordered_.lower_bound(BandStart(*lo))
                           : ordered_.begin();
  for (; it != ordered_.end(); ++it) {
    const Value& key = it->first;
    if (CompareClassOf(key) != cls) {
      // IndexKeyLess orders by type rank first, so once the class changes
      // past a present lower bound the scan is done; with no lower bound,
      // keys of lower-ranked classes may precede — skip until the class
      // matches.
      if (lo.has_value()) break;
      if (key.TotalCompare(ref) > 0) break;
      continue;
    }
    if (beyond_hi(key)) break;
    if (!passes_lo(key) || !passes_hi(key)) continue;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
}

void PropertyIndex::ForEachBandPosting(
    const std::function<void(const Value&, const std::vector<uint64_t>&)>& fn)
    const {
  std::vector<uint64_t> buf;
  if (spec_.kind == IndexKind::kHash) {
    // Hash buckets are band-granular already.
    for (const auto& [v, p] : hash_) {
      buf.assign(p.begin(), p.end());
      fn(v, buf);
    }
    return;
  }
  // Ordered layout: merge the contiguous keys of each band.
  for (auto it = ordered_.begin(); it != ordered_.end();) {
    const Value& band = it->first;
    buf.assign(it->second.begin(), it->second.end());
    auto next = std::next(it);
    size_t keys = 1;
    while (next != ordered_.end() && SameBand(next->first, band)) {
      buf.insert(buf.end(), next->second.begin(), next->second.end());
      ++next;
      ++keys;
    }
    if (keys > 1) std::sort(buf.begin(), buf.end());
    fn(band, buf);
    it = next;
  }
}

void PropertyIndex::ForEachDuplicate(
    const std::function<void(const Value&, const std::set<uint64_t>&)>& fn)
    const {
  if (spec_.kind == IndexKind::kHash) {
    for (const auto& [v, p] : hash_) {
      if (p.size() >= 2) fn(v, p);
    }
  } else {
    for (const auto& [v, p] : ordered_) {
      if (p.size() >= 2) fn(v, p);
    }
  }
}

void PropertyIndex::Clear() {
  hash_.clear();
  ordered_.clear();
  entries_ = 0;
}

}  // namespace pgt::index
