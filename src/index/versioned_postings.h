#ifndef PGTRIGGERS_INDEX_VERSIONED_POSTINGS_H_
#define PGTRIGGERS_INDEX_VERSIONED_POSTINGS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/value.h"
#include "src/index/index_def.h"
#include "src/index/property_index.h"

namespace pgt::index {

/// Epoch-versioned sidecar of one live PropertyIndex, maintained by the
/// SnapshotManager so index probes work against any pinned epoch — the
/// posting-list analogue of the record version chains in
/// src/storage/snapshot.h (docs/snapshots.md, docs/async.md).
///
/// Granularity is the *band* (see property_index.h: numerics grouped by
/// double value, everything else by exact equality — the same superset
/// contract as live `Lookup`, so per-candidate rechecks carry over
/// unchanged). Each band holds an immutable version chain; a version is the
/// band's complete posting list (sorted ascending ids) as of its commit
/// epoch. Resolving a probe at epoch E walks the chain to the newest
/// version with `epoch <= E`.
///
/// Thread contract (mirrors the record sidecar):
///  * all mutation — `Baseline`, `PublishBand`, `Truncate` — runs on the
///    writer thread under the SnapshotManager mutex;
///  * `LookupAt` / `Find` are lock-free and safe from any thread
///    concurrently with the writer. The band hash table grows by
///    publishing a rebuilt bucket directory; superseded directories are
///    retired, not freed, so an in-flight reader's traversal stays valid
///    (retired memory is bounded: geometric growth sums to less than one
///    extra copy of the final table).
///
/// Bands are never removed once created (an emptied band keeps a version
/// with an empty posting list); only `Truncate` reclaims versions older
/// than what the oldest pinned snapshot can still observe.
class VersionedPostings {
 public:
  explicit VersionedPostings(IndexSpec spec);
  ~VersionedPostings();
  VersionedPostings(const VersionedPostings&) = delete;
  VersionedPostings& operator=(const VersionedPostings&) = delete;

  const IndexSpec& spec() const { return spec_; }
  bool unique() const { return spec_.unique; }

  // --- Writer side (under the SnapshotManager mutex) ------------------------

  /// Materializes one version per band of `live` at `epoch`. Called when
  /// the sidecar is created: at Arm() for pre-existing indexes, at CREATE
  /// INDEX for indexes added while armed.
  void Baseline(const PropertyIndex& live, uint64_t epoch);

  /// Re-publishes the band containing `key` from the live index's current
  /// (committed) content at `epoch`. Candidates are allowed to
  /// over-approximate: when the band's content is unchanged the call is a
  /// dedupe no-op, so callers may nominate any value a commit might have
  /// touched. At most one publish per band per epoch (callers dedupe their
  /// candidate list by band).
  void PublishBand(const Value& key, const PropertyIndex& live,
                   uint64_t epoch);

  /// Frees versions no snapshot pinned at `min_keep` or newer can observe
  /// (same cut-and-free discipline as SnapshotManager::TruncateChains).
  void Truncate(uint64_t min_keep);

  /// Number of superseded (non-head) versions currently banked.
  size_t SupersededVersions() const { return superseded_; }
  size_t BandCount() const { return bands_.size(); }

  // --- Reader side (lock-free) ----------------------------------------------

  /// Equality probe at a pinned epoch: appends the ids of the band
  /// containing `value` as of `epoch`, ascending. NULL / NaN probes match
  /// nothing (live parity).
  void LookupAt(const Value& value, uint64_t epoch,
                std::vector<uint64_t>* out) const;

 private:
  struct PostingVersion {
    uint64_t epoch = 0;
    std::vector<uint64_t> ids;  // sorted ascending
    std::atomic<PostingVersion*> prev{nullptr};  // next-older version
  };

  struct Band {
    Value key;  // immutable; any band member hashes/compares identically
    std::atomic<PostingVersion*> head{nullptr};
  };

  // Per-table bucket-chain node. Immutable after insertion; rebuilt (not
  // relinked) on growth so readers of a retired table never see a torn
  // chain.
  struct Slot {
    Band* band = nullptr;
    Slot* next = nullptr;
  };

  struct Table {
    size_t mask = 0;  // bucket_count - 1 (power of two)
    std::unique_ptr<std::atomic<Slot*>[]> buckets;
  };

  Band* FindBand(const Value& key) const;  // lock-free
  Band* EnsureBand(const Value& key);      // writer side
  void InsertSlot(Table& t, Band* band);   // writer side
  void GrowLocked();                       // writer side

  IndexSpec spec_;
  std::atomic<Table*> table_{nullptr};

  // Writer-side ownership; readers only ever reach this memory through the
  // published table / chains.
  std::vector<std::unique_ptr<Table>> tables_;  // [0..n-2] retired, back live
  std::vector<std::unique_ptr<Band>> bands_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Band*> multi_;  // bands with chains > 1: GC revisit list
  size_t superseded_ = 0;
  std::vector<uint64_t> scratch_;  // PublishBand working buffer
};

}  // namespace pgt::index

#endif  // PGTRIGGERS_INDEX_VERSIONED_POSTINGS_H_
