#include "src/index/index_ddl.h"

#include "src/common/macros.h"
#include "src/common/str_util.h"
#include "src/cypher/lexer.h"
#include "src/cypher/statement_classifier.h"
#include "src/cypher/parser.h"

namespace pgt::index {

namespace {

using cypher::Parser;
using cypher::Token;
using cypher::TokenType;

bool IsWord(const Token& t, std::string_view w) {
  return t.type == TokenType::kIdent && EqualsIgnoreCase(t.text, w);
}

}  // namespace

bool IndexDdlParser::IsIndexDdl(std::string_view text) {
  // Single source of truth for the DDL-routing token grammar.
  return ClassifyStatement(text) == StatementKind::kIndexDdl;
}

Result<IndexDdl> IndexDdlParser::Parse(std::string_view text) {
  PGT_ASSIGN_OR_RETURN(std::vector<Token> toks, cypher::Lexer::Tokenize(text));
  Parser p(std::move(toks));
  IndexDdl ddl;

  if (p.AcceptKeyword("SHOW")) {
    if (!p.AcceptKeyword("INDEXES")) {
      PGT_RETURN_IF_ERROR(p.ExpectKeyword("INDEX"));
    }
    ddl.kind = IndexDdl::Kind::kShow;
    p.Accept(TokenType::kSemicolon);
    if (!p.AtEnd()) return p.MakeError("unexpected input after SHOW INDEXES");
    return ddl;
  }

  if (p.AcceptKeyword("DROP")) {
    ddl.kind = IndexDdl::Kind::kDrop;
  } else {
    PGT_RETURN_IF_ERROR(p.ExpectKeyword("CREATE"));
    ddl.kind = IndexDdl::Kind::kCreate;
    if (p.AcceptKeyword("UNIQUE")) ddl.unique = true;
    if (p.AcceptKeyword("RANGE")) {
      ddl.layout = IndexKind::kOrdered;
    } else if (p.AcceptKeyword("HASH")) {
      ddl.layout = IndexKind::kHash;
    }
  }
  PGT_RETURN_IF_ERROR(p.ExpectKeyword("INDEX"));
  PGT_RETURN_IF_ERROR(p.ExpectKeyword("ON"));
  p.Accept(TokenType::kColon);  // ON :Label(...) or ON Label(...)
  PGT_ASSIGN_OR_RETURN(ddl.label, p.ParseNameOrString("label"));
  PGT_RETURN_IF_ERROR(p.Expect(TokenType::kLParen, "'('").status());
  PGT_ASSIGN_OR_RETURN(ddl.prop, p.ParseNameOrString("property"));
  PGT_RETURN_IF_ERROR(p.Expect(TokenType::kRParen, "')'").status());
  p.Accept(TokenType::kSemicolon);
  if (!p.AtEnd()) return p.MakeError("unexpected input after index DDL");
  return ddl;
}

}  // namespace pgt::index
