#ifndef PGTRIGGERS_INDEX_INDEX_CATALOG_H_
#define PGTRIGGERS_INDEX_INDEX_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/prop_map.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/index/index_def.h"
#include "src/index/property_index.h"

namespace pgt::index {

/// The set of property indexes over one GraphStore, plus the maintenance
/// hooks the store invokes on every node mutation.
///
/// Transactional consistency comes for free from the tx layer's design:
/// Transaction applies mutations eagerly through the store and keeps an
/// undo log of *inverse store mutations*; each hook site therefore fires
/// symmetrically on do and undo. A rolled-back CREATE removes its entries
/// via the store's DeleteNode, a rolled-back DELETE re-inserts them via
/// ReviveNode, a rolled-back SET restores the old value's entry — so
/// aborted transactions and tombstoned nodes never leave stale postings.
///
/// At most one index exists per (label, property) pair. The catalog indexes
/// nodes only (relationship property indexes are a future direction; the
/// trigger hot path — condition matching — is node-predicate dominated).
class IndexCatalog {
 public:
  IndexCatalog() = default;
  IndexCatalog(const IndexCatalog&) = delete;
  IndexCatalog& operator=(const IndexCatalog&) = delete;

  /// Registers an (empty) index. Fails with AlreadyExists if one covers
  /// (spec.label, spec.prop). The caller (GraphStore::CreateIndex) backfills.
  Result<PropertyIndex*> Register(IndexSpec spec);

  /// Drops the index on (label, prop); NotFound if none exists.
  Status Unregister(LabelId label, PropKeyId prop);

  /// The index on (label, prop), or nullptr.
  const PropertyIndex* Find(LabelId label, PropKeyId prop) const;
  PropertyIndex* FindMutable(LabelId label, PropKeyId prop);

  bool empty() const { return by_key_.empty(); }
  size_t size() const { return by_key_.size(); }

  /// Monotone structural version: bumped whenever an index is registered or
  /// unregistered. Compiled query plans (src/cypher/plan) resolve their
  /// access paths against a catalog snapshot and key the result on this
  /// epoch; any index DDL invalidates them wholesale.
  uint64_t epoch() const { return epoch_; }

  /// Iterates all indexes in (label, prop) order (deterministic).
  void ForEach(const std::function<void(const PropertyIndex&)>& fn) const;

  // --- Maintenance hooks (invoked by GraphStore) ---------------------------

  /// Node became visible with these labels/props (create or revive).
  void OnNodeAdded(NodeId id, const std::vector<LabelId>& labels,
                   const PropMap& props);

  /// Node is about to be tombstoned; labels/props are its final image.
  void OnNodeRemoved(NodeId id, const std::vector<LabelId>& labels,
                     const PropMap& props);

  /// Label added to / removed from an alive node with these props.
  void OnLabelAdded(NodeId id, LabelId label,
                    const PropMap& props);
  void OnLabelRemoved(NodeId id, LabelId label,
                      const PropMap& props);

  /// Property of an alive node changed old -> new (either side may be NULL
  /// for absent); `labels` is the node's current label set.
  void OnPropChanged(NodeId id, const std::vector<LabelId>& labels,
                     PropKeyId key, const Value& old_value,
                     const Value& new_value);

  // --- Write-time unique probes (invoked by the Transaction layer) ---------

  /// A conflicting entry found by a unique probe.
  struct UniqueConflict {
    const PropertyIndex* index = nullptr;
    NodeId holder;  ///< the node already owning the value
    Value value;
  };

  /// Would creating a node with these labels/props duplicate a key in some
  /// unique enforce-on-write index?
  std::optional<UniqueConflict> CheckNodeAdd(
      const std::vector<LabelId>& labels,
      const PropMap& props) const;

  /// Would adding `label` to node `id` (current props given) conflict?
  std::optional<UniqueConflict> CheckLabelAdd(
      NodeId id, LabelId label,
      const PropMap& props) const;

  /// Would setting `key` = `value` on node `id` (current labels given)
  /// conflict?
  std::optional<UniqueConflict> CheckPropSet(
      NodeId id, const std::vector<LabelId>& labels, PropKeyId key,
      const Value& value) const;

 private:
  using Key = std::pair<uint32_t, uint32_t>;  // (label, prop)

  const std::vector<PropertyIndex*>* IndexesOnLabel(LabelId label) const;

  // (label, prop) -> index; std::map keeps ForEach deterministic.
  std::map<Key, std::unique_ptr<PropertyIndex>> by_key_;
  uint64_t epoch_ = 0;
  // label -> indexes over that label (hook fan-out without a full scan).
  std::unordered_map<LabelId, std::vector<PropertyIndex*>> by_label_;
};

}  // namespace pgt::index

#endif  // PGTRIGGERS_INDEX_INDEX_CATALOG_H_
