#ifndef PGTRIGGERS_INDEX_INDEX_DDL_H_
#define PGTRIGGERS_INDEX_INDEX_DDL_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/index/index_def.h"

namespace pgt::index {

/// A parsed index-DDL command.
struct IndexDdl {
  enum class Kind { kCreate, kDrop, kShow };
  Kind kind = Kind::kCreate;
  bool unique = false;                       // kCreate
  IndexKind layout = IndexKind::kHash;       // kCreate
  std::string label;                         // kCreate / kDrop
  std::string prop;                          // kCreate / kDrop
};

/// Parser for the index DDL accepted by Database::Execute:
///
///   CREATE [UNIQUE] [RANGE] INDEX ON :Label(prop)
///   DROP INDEX ON :Label(prop)
///   SHOW INDEXES
///
/// `RANGE` selects the ordered layout (equality + range scans); the default
/// is the hash layout (equality only). Label and property may be bare
/// identifiers, backtick-quoted, or string-quoted ('Mutation'), matching
/// the trigger DDL's conventions; the leading colon is optional.
class IndexDdlParser {
 public:
  /// Quick check used by Database::Execute for routing.
  static bool IsIndexDdl(std::string_view text);

  /// Parses one DDL command (must consume the whole input).
  static Result<IndexDdl> Parse(std::string_view text);
};

}  // namespace pgt::index

#endif  // PGTRIGGERS_INDEX_INDEX_DDL_H_
