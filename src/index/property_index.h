#ifndef PGTRIGGERS_INDEX_PROPERTY_INDEX_H_
#define PGTRIGGERS_INDEX_PROPERTY_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/index/index_def.h"

namespace pgt::index {

/// Index keys group values by *band*: numerics by their double value,
/// everything else by exact (TotalCompare) equality. Banding makes the key
/// relation a genuine equivalence even at magnitudes >= 2^53, where
/// Cypher's int/double coercion (`Equals`/`TotalCompare`) stops being
/// transitive: Int(2^53) and Int(2^53 + 1) both `=` Double(2^53.0) yet
/// differ from each other. Bands are complete — Equals(a, b) implies the
/// same band — so an index probe never misses a match; band members that
/// are not exactly equal are discarded by the caller's per-candidate
/// recheck (NodeMatches / WHERE evaluation).
struct ValueHash {
  size_t operator()(const Value& v) const;
};

/// Band equality (hash layout): numeric-numeric by double value, other
/// types by TotalCompare == 0.
struct IndexKeyEq {
  bool operator()(const Value& a, const Value& b) const;
};

/// Strict total order for the ordered layout: non-numerics by
/// TotalCompare; numerics lexicographically by (double value, kind,
/// exact int value), which keeps each band contiguous and the comparator
/// transitive (a plain TotalCompare order is not, see above).
struct IndexKeyLess {
  bool operator()(const Value& a, const Value& b) const;
};

/// One label+property index: value -> posting list of node ids.
///
/// Posting lists are std::set<uint64_t>, so every probe yields candidates in
/// ascending id order — the matcher's scans stay deterministic (id order)
/// regardless of which access path the planner picks.
///
/// The index stores only non-NULL values of alive nodes; tombstoned nodes
/// are removed by the GraphStore maintenance hooks before the record is
/// marked dead, and rollback re-inserts them through the same hooks (undo
/// replays inverse mutations through the store), so aborted transactions
/// never leave stale entries.
class PropertyIndex {
 public:
  explicit PropertyIndex(IndexSpec spec);
  PropertyIndex(const PropertyIndex&) = delete;
  PropertyIndex& operator=(const PropertyIndex&) = delete;

  const IndexSpec& spec() const { return spec_; }
  bool unique() const { return spec_.unique; }
  bool SupportsRange() const { return spec_.kind == IndexKind::kOrdered; }

  /// Number of (value, node) entries / distinct values.
  size_t EntryCount() const { return entries_; }
  size_t DistinctValues() const;

  /// Inserts / removes one entry. NULL values are ignored (never indexed).
  void Insert(const Value& value, NodeId id);
  void Erase(const Value& value, NodeId id);

  /// Equality probe: appends the ids of nodes whose value lies in the same
  /// band as `value` (a superset of Cypher-`=` matches; callers re-check
  /// exact equality per candidate), in ascending id order.
  void Lookup(const Value& value, std::vector<uint64_t>* out) const;

  /// True if some node other than `self` holds a value in `value`'s band;
  /// returns its id. Used for write-time unique enforcement. Band
  /// granularity makes this conservatively strict for distinct integers
  /// beyond 2^53 that collapse to the same double.
  std::optional<NodeId> FindConflict(const Value& value,
                                     std::optional<NodeId> self) const;

  /// Range scan over an ordered index: appends ids of nodes whose value
  /// lies within [lo, hi] (each bound optional, inclusivity per bound).
  /// Only keys in the same comparison class as the present bound(s) are
  /// visited — mirroring the evaluator, where `<`/`>` across classes
  /// (numeric vs string vs date ...) yields NULL and never passes WHERE.
  /// Appended ids are NOT globally sorted (value order); callers sort.
  /// No-op on hash indexes.
  void Range(const std::optional<Value>& lo, bool lo_inclusive,
             const std::optional<Value>& hi, bool hi_inclusive,
             std::vector<uint64_t>* out) const;

  /// Invokes `fn` for every *band* with its complete posting list (sorted
  /// ascending). Ordered layouts merge band-spanning keys (huge int +
  /// double) into one call, keyed by the band's first key. This is how the
  /// snapshot sidecar (index/versioned_postings.h) baselines itself.
  void ForEachBandPosting(
      const std::function<void(const Value&, const std::vector<uint64_t>&)>&
          fn) const;

  /// Invokes `fn` for every value whose posting list holds >= 2 nodes.
  /// This is how deferred-unique (PG-Key) violations are read off the index
  /// at commit time: O(duplicated values) instead of a full rescan.
  void ForEachDuplicate(
      const std::function<void(const Value&, const std::set<uint64_t>&)>& fn)
      const;

  void Clear();

 private:
  using Postings = std::set<uint64_t>;

  IndexSpec spec_;
  // Exactly one of the two maps is populated, per spec_.kind.
  std::unordered_map<Value, Postings, ValueHash, IndexKeyEq> hash_;
  std::map<Value, Postings, IndexKeyLess> ordered_;
  size_t entries_ = 0;
};

/// Comparison class used by range planning: ordering comparisons are only
/// satisfiable within one class (see the evaluator's `comparable` rule).
enum class CompareClass {
  kNumeric,
  kString,
  kBool,
  kDate,
  kDateTime,
  kOther,  ///< lists, maps, nodes, rels, NULL: never range-comparable
};

CompareClass CompareClassOf(const Value& v);

}  // namespace pgt::index

#endif  // PGTRIGGERS_INDEX_PROPERTY_INDEX_H_
