#ifndef PGTRIGGERS_INDEX_INDEX_DEF_H_
#define PGTRIGGERS_INDEX_INDEX_DEF_H_

#include <string>

#include "src/common/ids.h"

namespace pgt::index {

/// Physical layout of a property index.
///
/// * kHash    — unordered map keyed by property value: O(1) equality probes.
/// * kOrdered — value-ordered map: equality probes plus range scans
///              (`n.p > 5`, `n.p >= 'a' AND n.p < 'b'`).
enum class IndexKind { kHash, kOrdered };

/// Returns "hash" / "ordered".
const char* IndexKindName(IndexKind k);

/// Declaration of one label+property index.
///
/// An index covers exactly the alive nodes that carry `label` and have a
/// non-NULL value for `prop`. Uniqueness comes in two flavors:
///
/// * `unique && enforce_on_write`  — writes that would duplicate a key are
///   rejected with ConstraintViolation before they touch the store (the
///   Transaction layer probes the index first). This is what
///   `CREATE UNIQUE INDEX` DDL produces.
/// * `unique && !enforce_on_write` — deferred uniqueness: the index is
///   maintained (duplicate values simply share a posting list) and the
///   PG-Schema commit guard reads violations off the postings at commit
///   time. Database::AttachSchema creates these for PG-Key properties, so a
///   transaction may pass through a temporarily-duplicated state (delete +
///   recreate, key swaps) as long as the commit point is clean.
struct IndexSpec {
  LabelId label = 0;
  PropKeyId prop = 0;
  IndexKind kind = IndexKind::kHash;
  bool unique = false;
  bool enforce_on_write = true;
  /// True for indexes auto-created by Database::AttachSchema to back
  /// PG-Keys. Detaching a schema drops only indexes still carrying this
  /// mark, so a user index that replaced (or preceded) the auto-created
  /// one is never silently destroyed.
  bool schema_managed = false;
  /// Display name, e.g. "Person(ssn)"; filled in by GraphStore::CreateIndex
  /// from the interned label / property-key names.
  std::string name;
};

}  // namespace pgt::index

#endif  // PGTRIGGERS_INDEX_INDEX_DEF_H_
