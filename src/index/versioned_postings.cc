#include "src/index/versioned_postings.h"

#include <algorithm>
#include <utility>

namespace pgt::index {

namespace {

constexpr size_t kInitialBuckets = 16;  // power of two

/// NaN probes/keys match nothing (live parity: PropertyIndex never indexes
/// NaN and Lookup rejects it).
bool IsNanValue(const Value& v) {
  return v.is_double() && v.double_value() != v.double_value();
}

}  // namespace

VersionedPostings::VersionedPostings(IndexSpec spec) : spec_(std::move(spec)) {
  auto t = std::make_unique<Table>();
  t->mask = kInitialBuckets - 1;
  t->buckets = std::make_unique<std::atomic<Slot*>[]>(kInitialBuckets);
  table_.store(t.get(), std::memory_order_release);
  tables_.push_back(std::move(t));
}

VersionedPostings::~VersionedPostings() {
  for (const auto& band : bands_) {
    PostingVersion* v = band->head.load(std::memory_order_relaxed);
    while (v != nullptr) {
      PostingVersion* p = v->prev.load(std::memory_order_relaxed);
      delete v;
      v = p;
    }
  }
}

VersionedPostings::Band* VersionedPostings::FindBand(const Value& key) const {
  const Table* t = table_.load(std::memory_order_acquire);
  const size_t b = ValueHash{}(key) & t->mask;
  for (Slot* s = t->buckets[b].load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    if (IndexKeyEq{}(s->band->key, key)) return s->band;
  }
  return nullptr;
}

void VersionedPostings::InsertSlot(Table& t, Band* band) {
  const size_t b = ValueHash{}(band->key) & t.mask;
  auto slot = std::make_unique<Slot>();
  slot->band = band;
  slot->next = t.buckets[b].load(std::memory_order_relaxed);
  t.buckets[b].store(slot.get(), std::memory_order_release);
  slots_.push_back(std::move(slot));
}

void VersionedPostings::GrowLocked() {
  const Table* old = table_.load(std::memory_order_relaxed);
  auto bigger = std::make_unique<Table>();
  bigger->mask = (old->mask + 1) * 2 - 1;
  bigger->buckets =
      std::make_unique<std::atomic<Slot*>[]>(bigger->mask + 1);
  // Fresh chains into the new directory; the old table (and its slots)
  // stays intact for readers that already loaded it. Bands are shared, so
  // version chains published after the swap are visible through both.
  for (const auto& band : bands_) InsertSlot(*bigger, band.get());
  table_.store(bigger.get(), std::memory_order_release);
  tables_.push_back(std::move(bigger));
}

VersionedPostings::Band* VersionedPostings::EnsureBand(const Value& key) {
  Band* existing = FindBand(key);
  if (existing != nullptr) return existing;
  if (bands_.size() + 1 >
      table_.load(std::memory_order_relaxed)->mask + 1) {
    GrowLocked();
  }
  auto band = std::make_unique<Band>();
  band->key = key;
  Band* raw = band.get();
  bands_.push_back(std::move(band));
  InsertSlot(*tables_.back(), raw);
  return raw;
}

void VersionedPostings::Baseline(const PropertyIndex& live, uint64_t epoch) {
  live.ForEachBandPosting(
      [&](const Value& key, const std::vector<uint64_t>& ids) {
        Band* band = EnsureBand(key);
        auto* v = new PostingVersion();
        v->epoch = epoch;
        v->ids = ids;
        band->head.store(v, std::memory_order_release);
      });
}

void VersionedPostings::PublishBand(const Value& key,
                                    const PropertyIndex& live,
                                    uint64_t epoch) {
  if (key.is_null() || IsNanValue(key)) return;
  scratch_.clear();
  live.Lookup(key, &scratch_);
  Band* band = FindBand(key);
  if (band == nullptr) {
    if (scratch_.empty()) return;  // never-indexed band stays absent
    band = EnsureBand(key);
  }
  PostingVersion* head = band->head.load(std::memory_order_relaxed);
  if (head != nullptr && head->ids == scratch_) return;  // no-op candidate
  auto* v = new PostingVersion();
  v->epoch = epoch;
  v->ids = scratch_;
  v->prev.store(head, std::memory_order_relaxed);
  band->head.store(v, std::memory_order_release);
  if (head != nullptr) {
    ++superseded_;
    multi_.push_back(band);
  }
}

void VersionedPostings::Truncate(uint64_t min_keep) {
  std::sort(multi_.begin(), multi_.end());
  multi_.erase(std::unique(multi_.begin(), multi_.end()), multi_.end());
  size_t w = 0;
  for (Band* band : multi_) {
    PostingVersion* head = band->head.load(std::memory_order_relaxed);
    PostingVersion* v = head;
    while (v != nullptr && v->epoch > min_keep) {
      v = v->prev.load(std::memory_order_relaxed);
    }
    if (v != nullptr) {
      PostingVersion* dead = v->prev.load(std::memory_order_relaxed);
      if (dead != nullptr) {
        v->prev.store(nullptr, std::memory_order_release);
        while (dead != nullptr) {
          PostingVersion* p = dead->prev.load(std::memory_order_relaxed);
          delete dead;
          --superseded_;
          dead = p;
        }
      }
    }
    if (head != nullptr &&
        head->prev.load(std::memory_order_relaxed) != nullptr) {
      multi_[w++] = band;  // still multi-versioned: revisit next GC
    }
  }
  multi_.resize(w);
}

void VersionedPostings::LookupAt(const Value& value, uint64_t epoch,
                                 std::vector<uint64_t>* out) const {
  if (value.is_null() || IsNanValue(value)) return;
  const Band* band = FindBand(value);
  if (band == nullptr) return;
  const PostingVersion* v = band->head.load(std::memory_order_acquire);
  while (v != nullptr && v->epoch > epoch) {
    v = v->prev.load(std::memory_order_acquire);
  }
  if (v != nullptr) out->insert(out->end(), v->ids.begin(), v->ids.end());
}

}  // namespace pgt::index
