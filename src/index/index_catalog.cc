#include "src/index/index_catalog.h"

#include <algorithm>

namespace pgt::index {

Result<PropertyIndex*> IndexCatalog::Register(IndexSpec spec) {
  const Key key{spec.label, spec.prop};
  if (by_key_.count(key) > 0) {
    return Status::AlreadyExists("index " + spec.name + " already exists");
  }
  auto idx = std::make_unique<PropertyIndex>(std::move(spec));
  PropertyIndex* raw = idx.get();
  by_key_.emplace(key, std::move(idx));
  by_label_[raw->spec().label].push_back(raw);
  ++epoch_;
  return raw;
}

Status IndexCatalog::Unregister(LabelId label, PropKeyId prop) {
  auto it = by_key_.find(Key{label, prop});
  if (it == by_key_.end()) {
    return Status::NotFound("no index on that label/property");
  }
  PropertyIndex* raw = it->second.get();
  auto& vec = by_label_[label];
  vec.erase(std::remove(vec.begin(), vec.end(), raw), vec.end());
  if (vec.empty()) by_label_.erase(label);
  by_key_.erase(it);
  ++epoch_;
  return Status::OK();
}

const PropertyIndex* IndexCatalog::Find(LabelId label, PropKeyId prop) const {
  auto it = by_key_.find(Key{label, prop});
  return it == by_key_.end() ? nullptr : it->second.get();
}

PropertyIndex* IndexCatalog::FindMutable(LabelId label, PropKeyId prop) {
  auto it = by_key_.find(Key{label, prop});
  return it == by_key_.end() ? nullptr : it->second.get();
}

void IndexCatalog::ForEach(
    const std::function<void(const PropertyIndex&)>& fn) const {
  for (const auto& [key, idx] : by_key_) fn(*idx);
}

const std::vector<PropertyIndex*>* IndexCatalog::IndexesOnLabel(
    LabelId label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? nullptr : &it->second;
}

void IndexCatalog::OnNodeAdded(NodeId id, const std::vector<LabelId>& labels,
                               const PropMap& props) {
  for (LabelId l : labels) {
    const auto* indexes = IndexesOnLabel(l);
    if (indexes == nullptr) continue;
    for (PropertyIndex* idx : *indexes) {
      auto it = props.find(idx->spec().prop);
      if (it != props.end()) idx->Insert(it->second, id);
    }
  }
}

void IndexCatalog::OnNodeRemoved(NodeId id,
                                 const std::vector<LabelId>& labels,
                                 const PropMap& props) {
  for (LabelId l : labels) {
    const auto* indexes = IndexesOnLabel(l);
    if (indexes == nullptr) continue;
    for (PropertyIndex* idx : *indexes) {
      auto it = props.find(idx->spec().prop);
      if (it != props.end()) idx->Erase(it->second, id);
    }
  }
}

void IndexCatalog::OnLabelAdded(NodeId id, LabelId label,
                                const PropMap& props) {
  const auto* indexes = IndexesOnLabel(label);
  if (indexes == nullptr) return;
  for (PropertyIndex* idx : *indexes) {
    auto it = props.find(idx->spec().prop);
    if (it != props.end()) idx->Insert(it->second, id);
  }
}

void IndexCatalog::OnLabelRemoved(NodeId id, LabelId label,
                                  const PropMap& props) {
  const auto* indexes = IndexesOnLabel(label);
  if (indexes == nullptr) return;
  for (PropertyIndex* idx : *indexes) {
    auto it = props.find(idx->spec().prop);
    if (it != props.end()) idx->Erase(it->second, id);
  }
}

void IndexCatalog::OnPropChanged(NodeId id,
                                 const std::vector<LabelId>& labels,
                                 PropKeyId key, const Value& old_value,
                                 const Value& new_value) {
  for (LabelId l : labels) {
    const auto* indexes = IndexesOnLabel(l);
    if (indexes == nullptr) continue;
    for (PropertyIndex* idx : *indexes) {
      if (idx->spec().prop != key) continue;
      idx->Erase(old_value, id);
      idx->Insert(new_value, id);
    }
  }
}

std::optional<IndexCatalog::UniqueConflict> IndexCatalog::CheckNodeAdd(
    const std::vector<LabelId>& labels,
    const PropMap& props) const {
  for (LabelId l : labels) {
    const auto* indexes = IndexesOnLabel(l);
    if (indexes == nullptr) continue;
    for (const PropertyIndex* idx : *indexes) {
      if (!idx->unique() || !idx->spec().enforce_on_write) continue;
      auto it = props.find(idx->spec().prop);
      if (it == props.end() || it->second.is_null()) continue;
      auto holder = idx->FindConflict(it->second, std::nullopt);
      if (holder.has_value()) {
        return UniqueConflict{idx, *holder, it->second};
      }
    }
  }
  return std::nullopt;
}

std::optional<IndexCatalog::UniqueConflict> IndexCatalog::CheckLabelAdd(
    NodeId id, LabelId label,
    const PropMap& props) const {
  const auto* indexes = IndexesOnLabel(label);
  if (indexes == nullptr) return std::nullopt;
  for (const PropertyIndex* idx : *indexes) {
    if (!idx->unique() || !idx->spec().enforce_on_write) continue;
    auto it = props.find(idx->spec().prop);
    if (it == props.end() || it->second.is_null()) continue;
    auto holder = idx->FindConflict(it->second, id);
    if (holder.has_value()) {
      return UniqueConflict{idx, *holder, it->second};
    }
  }
  return std::nullopt;
}

std::optional<IndexCatalog::UniqueConflict> IndexCatalog::CheckPropSet(
    NodeId id, const std::vector<LabelId>& labels, PropKeyId key,
    const Value& value) const {
  if (value.is_null()) return std::nullopt;  // removal: cannot conflict
  for (LabelId l : labels) {
    const auto* indexes = IndexesOnLabel(l);
    if (indexes == nullptr) continue;
    for (const PropertyIndex* idx : *indexes) {
      if (idx->spec().prop != key) continue;
      if (!idx->unique() || !idx->spec().enforce_on_write) continue;
      auto holder = idx->FindConflict(value, id);
      if (holder.has_value()) {
        return UniqueConflict{idx, *holder, value};
      }
    }
  }
  return std::nullopt;
}

}  // namespace pgt::index
