#ifndef PGTRIGGERS_STORAGE_STORE_VIEW_H_
#define PGTRIGGERS_STORAGE_STORE_VIEW_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"
#include "src/common/prop_map.h"
#include "src/common/value.h"
#include "src/index/index_catalog.h"
#include "src/storage/graph_store.h"
#include "src/storage/snapshot.h"

namespace pgt {

/// A view-polymorphic handle to one property index's equality access path:
/// either the live catalog index or a snapshot's versioned posting sidecar
/// resolved at the pinned epoch. Small value type — scan plans carry it by
/// value, and an invalid (default) ref means "no index, label-scan".
///
/// Both paths share the band contract of property_index.h: Lookup appends
/// a band superset of exact matches in ascending id order, and callers
/// re-check candidates — so plans are access-path agnostic. Range scans
/// are live-only (SupportsRange() is false on snapshot refs).
class IndexRef {
 public:
  IndexRef() = default;

  static IndexRef LiveIndex(const index::PropertyIndex* idx) {
    IndexRef r;
    r.live_ = idx;
    return r;
  }
  static IndexRef SnapshotIndex(const index::VersionedPostings* postings,
                                uint64_t epoch) {
    IndexRef r;
    r.snap_ = postings;
    r.epoch_ = epoch;
    return r;
  }

  bool valid() const { return live_ != nullptr || snap_ != nullptr; }
  explicit operator bool() const { return valid(); }

  const index::IndexSpec& spec() const {
    return live_ != nullptr ? live_->spec() : snap_->spec();
  }
  bool unique() const { return spec().unique; }
  bool SupportsRange() const {
    return live_ != nullptr && live_->SupportsRange();
  }

  /// Equality probe: band-superset candidates, ascending id order.
  void Lookup(const Value& value, std::vector<uint64_t>* out) const {
    if (live_ != nullptr) {
      live_->Lookup(value, out);
    } else {
      snap_->LookupAt(value, epoch_, out);
    }
  }

  /// Range probe — live refs only (callers gate on SupportsRange()).
  void Range(const std::optional<Value>& lo, bool lo_inclusive,
             const std::optional<Value>& hi, bool hi_inclusive,
             std::vector<uint64_t>* out) const {
    if (live_ != nullptr) {
      live_->Range(lo, lo_inclusive, hi, hi_inclusive, out);
    }
  }

 private:
  const index::PropertyIndex* live_ = nullptr;
  const index::VersionedPostings* snap_ = nullptr;
  uint64_t epoch_ = 0;
};

/// The read abstraction every read path consumes (matcher, interpreter,
/// compiled-plan executor, scan planner, PG-Schema validator, emulation
/// layers): two pointers, one of which is set.
///
///  * StoreView::Live(store) — what the writer, triggers, and ad-hoc
///    statements use: reads forward straight to the GraphStore (same
///    inlined reads as before; the snapshot branch is one always-predicted
///    null check). Sees uncommitted state, exactly like a `GraphStore&`
///    used to.
///  * StoreView::Snapshot(snap) — reads resolve against a pinned
///    GraphSnapshot: the last committed state at the snapshot's epoch,
///    lock-free and safe on any thread while the single writer commits.
///
/// Property indexes work on both view kinds through FindIndex(): live
/// views probe the catalog's PropertyIndex directly; snapshot views probe
/// the epoch-versioned posting sidecar the SnapshotManager publishes
/// alongside record versions (index/versioned_postings.h), resolved at the
/// pinned epoch. Range scans remain a live-only access path (the sidecar
/// versions equality bands, not order) — the planner falls back to label
/// scans for range predicates on snapshots, which is a pure access-path
/// change: the matcher's determinism contract guarantees byte-identical
/// results whichever path is picked.
///
/// Semantics parity notes (mirroring GraphStore):
///  * NodeLabels/NodeProps/RelProps return nullptr for dead or absent
///    records; liveness is always per-view (a record alive in the live
///    store may be absent at a snapshot's epoch and vice versa);
///  * Rel() reports tombstoned relationships with exists=true and
///    alive=false — type and endpoints are immutable, and OLD transition
///    reads rely on them (live path only).
class StoreView {
 public:
  StoreView() = default;

  static StoreView Live(const GraphStore& store) {
    StoreView v;
    v.live_ = &store;
    return v;
  }
  static StoreView Snapshot(const GraphSnapshot& snap) {
    StoreView v;
    v.snap_ = &snap;
    return v;
  }

  bool valid() const { return live_ != nullptr || snap_ != nullptr; }
  bool is_snapshot() const { return snap_ != nullptr; }

  /// The underlying live store; nullptr for snapshot views (write paths
  /// must not run against snapshots).
  const GraphStore* live_store() const { return live_; }
  const GraphSnapshot* snapshot() const { return snap_; }

  // --- Dictionaries ---------------------------------------------------------

  std::optional<LabelId> LookupLabel(std::string_view name) const {
    return snap_ == nullptr ? live_->LookupLabel(name)
                            : snap_->LookupLabel(name);
  }
  std::optional<RelTypeId> LookupRelType(std::string_view name) const {
    return snap_ == nullptr ? live_->LookupRelType(name)
                            : snap_->LookupRelType(name);
  }
  std::optional<PropKeyId> LookupPropKey(std::string_view name) const {
    return snap_ == nullptr ? live_->LookupPropKey(name)
                            : snap_->LookupPropKey(name);
  }
  const std::string& LabelName(LabelId id) const {
    return snap_ == nullptr ? live_->LabelName(id) : snap_->LabelName(id);
  }
  const std::string& RelTypeName(RelTypeId id) const {
    return snap_ == nullptr ? live_->RelTypeName(id)
                            : snap_->RelTypeName(id);
  }
  const std::string& PropKeyName(PropKeyId id) const {
    return snap_ == nullptr ? live_->PropKeyName(id)
                            : snap_->PropKeyName(id);
  }

  // --- Records --------------------------------------------------------------

  bool NodeAlive(NodeId id) const {
    return snap_ == nullptr ? live_->NodeAlive(id) : snap_->NodeAlive(id);
  }
  bool RelAlive(RelId id) const {
    return snap_ == nullptr ? live_->RelAlive(id) : snap_->RelAlive(id);
  }

  /// Sorted labels of an alive node; nullptr when dead or absent in this
  /// view. The pointer is stable until the next store mutation (live) /
  /// for the snapshot's lifetime (snapshot).
  const std::vector<LabelId>* NodeLabels(NodeId id) const {
    if (snap_ == nullptr) {
      const NodeRecord* n = live_->GetNode(id);
      return n != nullptr && n->alive ? &n->labels : nullptr;
    }
    const NodeVersion* v = snap_->Node(id);
    return v != nullptr && v->alive ? &v->labels : nullptr;
  }

  /// Properties of an alive node / relationship; nullptr when dead or
  /// absent in this view. Same stability as NodeLabels.
  const PropMap* NodeProps(NodeId id) const {
    if (snap_ == nullptr) {
      const NodeRecord* n = live_->GetNode(id);
      return n != nullptr && n->alive ? &n->props : nullptr;
    }
    const NodeVersion* v = snap_->Node(id);
    return v != nullptr && v->alive ? &v->props : nullptr;
  }
  const PropMap* RelProps(RelId id) const {
    if (snap_ == nullptr) {
      const RelRecord* r = live_->GetRel(id);
      return r != nullptr && r->alive ? &r->props : nullptr;
    }
    const RelVersion* v = snap_->Rel(id);
    return v != nullptr && v->alive ? &v->props : nullptr;
  }

  /// Property of an alive node/rel; NULL when absent (or dead/absent
  /// record — matching Transaction::Read* with no ghost).
  Value NodeProp(NodeId id, PropKeyId key) const {
    const PropMap* props = NodeProps(id);
    if (props == nullptr) return Value::Null();
    auto it = props->find(key);
    return it == props->end() ? Value::Null() : it->second;
  }
  Value RelProp(RelId id, PropKeyId key) const {
    const PropMap* props = RelProps(id);
    if (props == nullptr) return Value::Null();
    auto it = props->find(key);
    return it == props->end() ? Value::Null() : it->second;
  }

  /// Relationship header. `exists` covers tombstoned records too (their
  /// type and endpoints remain readable, as in the live store).
  struct RelInfo {
    bool exists = false;
    bool alive = false;
    RelTypeId type = 0;
    NodeId src;
    NodeId dst;
  };
  RelInfo Rel(RelId id) const {
    RelInfo info;
    if (snap_ == nullptr) {
      const RelRecord* r = live_->GetRel(id);
      if (r == nullptr) return info;
      info = {true, r->alive, r->type, r->src, r->dst};
      return info;
    }
    const RelVersion* v = snap_->Rel(id);
    if (v == nullptr) return info;
    info = {true, v->alive, v->type, v->src, v->dst};
    return info;
  }

  // --- Scans ----------------------------------------------------------------

  std::vector<NodeId> NodesByLabel(LabelId label) const {
    return snap_ == nullptr ? live_->NodesByLabel(label)
                            : snap_->NodesByLabel(label);
  }
  size_t LabelCardinality(LabelId label) const {
    return snap_ == nullptr ? live_->LabelCardinality(label)
                            : snap_->LabelCardinality(label);
  }
  std::vector<NodeId> AllNodes() const {
    return snap_ == nullptr ? live_->AllNodes() : snap_->AllNodes();
  }
  std::vector<RelId> AllRels() const {
    return snap_ == nullptr ? live_->AllRels() : snap_->AllRels();
  }
  std::vector<RelId> RelsOf(NodeId node, Direction dir,
                            std::optional<RelTypeId> type) const {
    return snap_ == nullptr ? live_->RelsOf(node, dir, type)
                            : snap_->RelsOf(node, dir, type);
  }
  template <typename Fn>
  void ForEachRelOf(NodeId node, Direction dir,
                    std::optional<RelTypeId> type, Fn&& fn) const {
    if (snap_ == nullptr) {
      live_->ForEachRelOf(node, dir, type, std::forward<Fn>(fn));
    } else {
      snap_->ForEachRelOf(node, dir, type, std::forward<Fn>(fn));
    }
  }

  size_t NodeCount() const {
    return snap_ == nullptr ? live_->NodeCount() : snap_->NodeCount();
  }
  size_t RelCount() const {
    return snap_ == nullptr ? live_->RelCount() : snap_->RelCount();
  }
  uint64_t NodeIdBound() const {
    return snap_ == nullptr ? live_->NodeIdBound() : snap_->NodeIdBound();
  }
  uint64_t RelIdBound() const {
    return snap_ == nullptr ? live_->RelIdBound() : snap_->RelIdBound();
  }

  /// Property-index catalog — live views only (write-path consumers such
  /// as the PG-Schema validator; read paths use FindIndex, which works on
  /// snapshots too).
  const index::IndexCatalog* Indexes() const {
    return snap_ == nullptr ? &live_->indexes() : nullptr;
  }

  /// True when this view has any index access path at all — a cheap
  /// planner early-out before per-(label, prop) FindIndex probes.
  bool HasIndexes() const {
    return snap_ == nullptr ? !live_->indexes().empty()
                            : snap_->HasIndexes();
  }

  /// The index access path for (label, prop) in this view, or an invalid
  /// ref when none exists. Live views wrap the catalog index; snapshot
  /// views wrap the versioned posting sidecar pinned at the snapshot's
  /// epoch (absent for indexes created after the snapshot opened).
  IndexRef FindIndex(LabelId label, PropKeyId prop) const {
    if (snap_ == nullptr) {
      return IndexRef::LiveIndex(live_->indexes().Find(label, prop));
    }
    return IndexRef::SnapshotIndex(snap_->FindIndex(label, prop),
                                   snap_->epoch());
  }

 private:
  const GraphStore* live_ = nullptr;
  const GraphSnapshot* snap_ = nullptr;
};

}  // namespace pgt

#endif  // PGTRIGGERS_STORAGE_STORE_VIEW_H_
