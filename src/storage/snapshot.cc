#include "src/storage/snapshot.h"

#include <algorithm>

#include "src/common/fault.h"
#include "src/common/macros.h"
#include "src/tx/delta.h"

namespace pgt {

namespace {

void SortUnique(std::vector<uint64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

// --- GraphSnapshot -----------------------------------------------------------

GraphSnapshot::~GraphSnapshot() {
  if (mgr_ != nullptr) mgr_->Unpin(epoch_);
}

const NodeVersion* GraphSnapshot::Node(NodeId id) const {
  if (id.value >= node_bound_) return nullptr;
  const NodeVersion* v = mgr_->nodes_.Head(id.value);
  while (v != nullptr && v->epoch > epoch_) {
    v = v->prev.load(std::memory_order_acquire);
  }
  return v;
}

const RelVersion* GraphSnapshot::Rel(RelId id) const {
  if (id.value >= rel_bound_) return nullptr;
  const RelVersion* v = mgr_->rels_.Head(id.value);
  while (v != nullptr && v->epoch > epoch_) {
    v = v->prev.load(std::memory_order_acquire);
  }
  return v;
}

std::vector<NodeId> GraphSnapshot::NodesByLabel(LabelId label) const {
  auto it = buckets_.find(label);
  if (it == buckets_.end()) return {};
  return *it->second;
}

size_t GraphSnapshot::LabelCardinality(LabelId label) const {
  auto it = buckets_.find(label);
  return it == buckets_.end() ? 0 : it->second->size();
}

std::vector<NodeId> GraphSnapshot::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(node_count_);
  for (uint64_t id = 0; id < node_bound_; ++id) {
    const NodeVersion* v = Node(NodeId{id});
    if (v != nullptr && v->alive) out.push_back(NodeId{id});
  }
  return out;
}

std::vector<RelId> GraphSnapshot::AllRels() const {
  std::vector<RelId> out;
  out.reserve(rel_count_);
  for (uint64_t id = 0; id < rel_bound_; ++id) {
    const RelVersion* v = Rel(RelId{id});
    if (v != nullptr && v->alive) out.push_back(RelId{id});
  }
  return out;
}

std::vector<RelId> GraphSnapshot::RelsOf(NodeId node, Direction dir,
                                         std::optional<RelTypeId> type) const {
  std::vector<RelId> out;
  ForEachRelOf(node, dir, type, [&](RelId rid) { out.push_back(rid); });
  std::sort(out.begin(), out.end());
  return out;
}

// --- SnapshotManager ---------------------------------------------------------

void SnapshotManager::RefreshDictsLocked(const GraphStore& store) {
  if (dicts_ != nullptr &&
      dicts_->label_names.size() == store.LabelDictSize() &&
      dicts_->rel_type_names.size() == store.RelTypeDictSize() &&
      dicts_->prop_key_names.size() == store.PropKeyDictSize()) {
    return;  // no new names since the last committed image
  }
  auto d = std::make_shared<SnapshotDicts>();
  d->label_names.reserve(store.LabelDictSize());
  for (uint32_t i = 0; i < store.LabelDictSize(); ++i) {
    d->label_names.push_back(store.LabelName(i));
    d->label_ids.emplace(d->label_names.back(), i);
  }
  d->rel_type_names.reserve(store.RelTypeDictSize());
  for (uint32_t i = 0; i < store.RelTypeDictSize(); ++i) {
    d->rel_type_names.push_back(store.RelTypeName(i));
    d->rel_type_ids.emplace(d->rel_type_names.back(), i);
  }
  d->prop_key_names.reserve(store.PropKeyDictSize());
  for (uint32_t i = 0; i < store.PropKeyDictSize(); ++i) {
    d->prop_key_names.push_back(store.PropKeyName(i));
    d->prop_key_ids.emplace(d->prop_key_names.back(), i);
  }
  dicts_ = std::move(d);
}

void SnapshotManager::RebuildBucketLocked(const GraphStore& store,
                                          LabelId label) {
  buckets_[label] =
      std::make_shared<const std::vector<NodeId>>(store.NodesByLabel(label));
}

void SnapshotManager::Arm(const GraphStore& store) {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_.load(std::memory_order_relaxed)) return;
  // Both chunk directories must exist before any reader can call Head():
  // the directory pointer itself is not atomic, so it may never be
  // assigned concurrently with reads (e.g. the rel table staying empty at
  // arm time because every relationship was dead, then growing later).
  nodes_.EnsureTop();
  rels_.EnsureTop();
  const uint64_t epoch = commit_epoch_.load(std::memory_order_relaxed);
  for (uint64_t id = 0; id < store.NodeIdBound(); ++id) {
    const NodeRecord* rec = store.GetNode(NodeId{id});
    if (rec == nullptr || !rec->alive) continue;  // never-existed / dead:
                                                  // absent == invisible
    auto* v = new NodeVersion();
    v->epoch = epoch;
    v->alive = true;
    v->labels = rec->labels;
    v->props = rec->props;
    v->out_rels = std::make_shared<const std::vector<RelId>>(rec->out_rels);
    v->in_rels = std::make_shared<const std::vector<RelId>>(rec->in_rels);
    nodes_.Publish(id, v);
  }
  for (uint64_t id = 0; id < store.RelIdBound(); ++id) {
    const RelRecord* rec = store.GetRel(RelId{id});
    if (rec == nullptr || !rec->alive) continue;
    auto* v = new RelVersion();
    v->epoch = epoch;
    v->alive = true;
    v->type = rec->type;
    v->src = rec->src;
    v->dst = rec->dst;
    v->props = rec->props;
    rels_.Publish(id, v);
  }
  RefreshDictsLocked(store);
  for (uint32_t l = 0; l < store.LabelDictSize(); ++l) {
    RebuildBucketLocked(store, l);
  }
  // Baseline a versioned posting sidecar per existing property index, so
  // snapshot probes work from the first pinned epoch on.
  auto image = std::make_shared<SnapshotIndexImage>();
  store.indexes().ForEach([&](const index::PropertyIndex& idx) {
    auto sidecar = std::make_shared<index::VersionedPostings>(idx.spec());
    sidecar->Baseline(idx, epoch);
    (*image)[{idx.spec().label, idx.spec().prop}] = std::move(sidecar);
  });
  index_image_ = std::move(image);
  node_bound_ = store.NodeIdBound();
  rel_bound_ = store.RelIdBound();
  node_count_ = store.NodeCount();
  rel_count_ = store.RelCount();
  armed_.store(true, std::memory_order_release);
}

void SnapshotManager::PublishIndexBandsLocked(const GraphStore& store,
                                              const GraphDelta& delta,
                                              uint64_t new_epoch) {
  if (index_image_ == nullptr || index_image_->empty()) return;
  std::vector<Value> candidates;
  for (const auto& [key, sidecar] : *index_image_) {
    const LabelId label = key.first;
    const PropKeyId prop = key.second;
    const index::PropertyIndex* live = store.indexes().Find(label, prop);
    if (live == nullptr) continue;  // image and catalog are DDL-synced
    // Bands this commit may have changed. Over-approximation is fine —
    // PublishBand dedupes unchanged content — so no label filtering: a
    // value is a candidate if any touched node carried it under `prop`.
    candidates.clear();
    auto add = [&](const Value& v) {
      if (v.is_null()) return;
      for (const Value& c : candidates) {
        if (index::IndexKeyEq{}(c, v)) return;  // one publish per band
      }
      candidates.push_back(v);
    };
    auto add_record_prop = [&](NodeId id) {
      const NodeRecord* rec = store.GetNode(id);
      if (rec == nullptr) return;
      auto it = rec->props.find(prop);
      if (it != rec->props.end()) add(it->second);
    };
    for (const NodePropChange& c : delta.assigned_node_props) {
      if (c.key != prop) continue;
      add(c.old_value);
      add(c.new_value);
    }
    for (const NodePropChange& c : delta.removed_node_props) {
      if (c.key != prop) continue;
      add(c.old_value);
      add(c.new_value);
    }
    // Deleted nodes: the final image (tombstones keep props, but the
    // delta image survives recycling). Covers label-removed-then-deleted.
    for (const DeletedNodeImage& img : delta.deleted_nodes) {
      auto it = img.props.find(prop);
      if (it != img.props.end()) add(it->second);
    }
    for (NodeId id : delta.created_nodes) add_record_prop(id);
    for (const LabelChange& c : delta.assigned_labels) {
      if (c.label == label) add_record_prop(c.node);
    }
    for (const LabelChange& c : delta.removed_labels) {
      if (c.label == label) add_record_prop(c.node);
    }
    for (const Value& v : candidates) {
      sidecar->PublishBand(v, *live, new_epoch);
    }
  }
}

Status SnapshotManager::PublishCommit(const GraphStore& store,
                                      const GraphDelta& delta) {
  // The fault point fires before the epoch advances or any version is
  // written, so a refused publish leaves the substrate exactly at the
  // previous commit and the transaction fully rollbackable.
  PGT_RETURN_IF_ERROR(FaultRegistry::Global().Hit("snapshot.publish"));
  if (!armed_.load(std::memory_order_acquire)) {
    // Unarmed: no readers exist; just advance the epoch counter.
    commit_epoch_.fetch_add(1, std::memory_order_release);
    return Status::OK();
  }

  std::lock_guard<std::mutex> lock(mu_);
  // The new epoch is published (store below) only after every version,
  // bucket, and count update lands, all under mu_ — an Open() racing this
  // commit either pins the previous epoch or observes the complete new
  // one, never a half-published state.
  const uint64_t new_epoch = commit_epoch_.load(std::memory_order_relaxed) + 1;

  // Records the commit touched, each re-versioned once from its (now
  // committed) live image. Endpoints of created relationships count as
  // touched nodes: their adjacency grew.
  std::vector<uint64_t> touched_nodes, touched_rels, adj_changed;
  std::vector<LabelId> touched_labels;
  for (NodeId id : delta.created_nodes) touched_nodes.push_back(id.value);
  for (const DeletedNodeImage& img : delta.deleted_nodes) {
    touched_nodes.push_back(img.id.value);
    for (LabelId l : img.labels) touched_labels.push_back(l);
  }
  for (const LabelChange& c : delta.assigned_labels) {
    touched_nodes.push_back(c.node.value);
    touched_labels.push_back(c.label);
  }
  for (const LabelChange& c : delta.removed_labels) {
    touched_nodes.push_back(c.node.value);
    touched_labels.push_back(c.label);
  }
  for (const NodePropChange& c : delta.assigned_node_props) {
    touched_nodes.push_back(c.node.value);
  }
  for (const NodePropChange& c : delta.removed_node_props) {
    touched_nodes.push_back(c.node.value);
  }
  for (RelId id : delta.created_rels) {
    touched_rels.push_back(id.value);
    const RelRecord* rec = store.GetRel(id);
    adj_changed.push_back(rec->src.value);
    adj_changed.push_back(rec->dst.value);
  }
  for (const DeletedRelImage& img : delta.deleted_rels) {
    touched_rels.push_back(img.id.value);
  }
  for (const RelPropChange& c : delta.assigned_rel_props) {
    touched_rels.push_back(c.rel.value);
  }
  for (const RelPropChange& c : delta.removed_rel_props) {
    touched_rels.push_back(c.rel.value);
  }
  for (NodeId id : delta.created_nodes) {
    const NodeRecord* rec = store.GetNode(id);
    for (LabelId l : rec->labels) touched_labels.push_back(l);
  }
  SortUnique(adj_changed);
  for (uint64_t id : adj_changed) touched_nodes.push_back(id);
  SortUnique(touched_nodes);
  SortUnique(touched_rels);

  for (uint64_t id : touched_nodes) {
    const NodeRecord* rec = store.GetNode(NodeId{id});
    auto* v = new NodeVersion();
    v->epoch = new_epoch;
    v->alive = rec->alive;
    if (rec->alive) {
      v->labels = rec->labels;
      v->props = rec->props;
    }
    NodeVersion* prev = nodes_.Head(id);
    const bool adj = std::binary_search(adj_changed.begin(),
                                        adj_changed.end(), id);
    if (prev != nullptr && !adj) {
      v->out_rels = prev->out_rels;  // adjacency unchanged: share
      v->in_rels = prev->in_rels;
    } else {
      v->out_rels = std::make_shared<const std::vector<RelId>>(rec->out_rels);
      v->in_rels = std::make_shared<const std::vector<RelId>>(rec->in_rels);
    }
    if (nodes_.Publish(id, v) != nullptr) {
      ++sidecar_versions_;
      multi_nodes_.push_back(id);
    }
  }
  for (uint64_t id : touched_rels) {
    const RelRecord* rec = store.GetRel(RelId{id});
    auto* v = new RelVersion();
    v->epoch = new_epoch;
    v->alive = rec->alive;
    v->type = rec->type;
    v->src = rec->src;
    v->dst = rec->dst;
    if (rec->alive) v->props = rec->props;
    if (rels_.Publish(id, v) != nullptr) {
      ++sidecar_versions_;
      multi_rels_.push_back(id);
    }
  }

  std::sort(touched_labels.begin(), touched_labels.end());
  touched_labels.erase(
      std::unique(touched_labels.begin(), touched_labels.end()),
      touched_labels.end());
  for (LabelId l : touched_labels) RebuildBucketLocked(store, l);

  PublishIndexBandsLocked(store, delta, new_epoch);

  RefreshDictsLocked(store);
  node_bound_ = store.NodeIdBound();
  rel_bound_ = store.RelIdBound();
  node_count_ = store.NodeCount();
  rel_count_ = store.RelCount();

  // Epoch publication: the one synchronization point readers observe.
  commit_epoch_.store(new_epoch, std::memory_order_release);

  CollectGarbageLocked();
  return Status::OK();
}

std::shared_ptr<const GraphSnapshot> SnapshotManager::Open(
    std::shared_ptr<SnapshotManager> self) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return nullptr;
  const uint64_t epoch = commit_epoch_.load(std::memory_order_relaxed);
  if (auto cached = cache_.lock();
      cached != nullptr && cached->epoch() == epoch) {
    return cached;
  }
  auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  snap->mgr_ = std::move(self);
  snap->epoch_ = epoch;
  snap->dicts_ = dicts_;
  snap->buckets_ = buckets_;
  snap->indexes_ = index_image_;
  snap->node_bound_ = node_bound_;
  snap->rel_bound_ = rel_bound_;
  snap->node_count_ = node_count_;
  snap->rel_count_ = rel_count_;
  pins_.insert(epoch);
  cache_ = snap;
  return snap;
}

void SnapshotManager::Unpin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(epoch);
  if (it != pins_.end()) pins_.erase(it);
  CollectGarbageLocked();
}

template <typename V>
void SnapshotManager::TruncateChains(VersionTable<V>& table,
                                     std::vector<uint64_t>& ids,
                                     uint64_t min_keep) {
  SortUnique(ids);
  size_t w = 0;
  for (uint64_t id : ids) {
    V* head = table.Head(id);
    // Find the version the oldest pin can still observe; everything older
    // is unreachable by every live (and future) snapshot.
    V* v = head;
    while (v != nullptr && v->epoch > min_keep) {
      v = v->prev.load(std::memory_order_relaxed);
    }
    if (v != nullptr) {
      V* dead = v->prev.load(std::memory_order_relaxed);
      if (dead != nullptr) {
        v->prev.store(nullptr, std::memory_order_release);
        while (dead != nullptr) {
          V* p = dead->prev.load(std::memory_order_relaxed);
          delete dead;
          --sidecar_versions_;
          dead = p;
        }
      }
    }
    if (head != nullptr &&
        head->prev.load(std::memory_order_relaxed) != nullptr) {
      ids[w++] = id;  // still multi-versioned: revisit next GC
    }
  }
  ids.resize(w);
}

void SnapshotManager::CollectGarbageLocked() {
  const uint64_t min_keep = pins_.empty()
                                ? commit_epoch_.load(std::memory_order_relaxed)
                                : *pins_.begin();
  TruncateChains(nodes_, multi_nodes_, min_keep);
  TruncateChains(rels_, multi_rels_, min_keep);
  if (index_image_ != nullptr) {
    for (const auto& [key, sidecar] : *index_image_) {
      sidecar->Truncate(min_keep);
    }
  }
}

void SnapshotManager::OnIndexCreated(const index::PropertyIndex& live) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return;
  auto image = index_image_ == nullptr
                   ? std::make_shared<SnapshotIndexImage>()
                   : std::make_shared<SnapshotIndexImage>(*index_image_);
  auto sidecar = std::make_shared<index::VersionedPostings>(live.spec());
  sidecar->Baseline(live, commit_epoch_.load(std::memory_order_relaxed));
  (*image)[{live.spec().label, live.spec().prop}] = std::move(sidecar);
  index_image_ = std::move(image);
  // Same-epoch re-opens must capture the new image; already-open snapshots
  // keep the old one and simply lack this index (planner label-scans).
  cache_.reset();
}

void SnapshotManager::OnIndexDropped(LabelId label, PropKeyId prop) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return;
  if (index_image_ == nullptr) return;
  auto image = std::make_shared<SnapshotIndexImage>(*index_image_);
  image->erase({label, prop});
  index_image_ = std::move(image);
  cache_.reset();
}

size_t SnapshotManager::SidecarVersions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sidecar_versions_;
}

size_t SnapshotManager::IndexSidecarVersions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  if (index_image_ != nullptr) {
    for (const auto& [key, sidecar] : *index_image_) {
      total += sidecar->SupersededVersions();
    }
  }
  return total;
}

size_t SnapshotManager::PinnedSnapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_.size();
}

}  // namespace pgt
