#ifndef PGTRIGGERS_STORAGE_GRAPH_STORE_H_
#define PGTRIGGERS_STORAGE_GRAPH_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/interner.h"
#include "src/common/macros.h"
#include "src/common/prop_map.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/index/index_catalog.h"
#include "src/index/index_def.h"

namespace pgt {

class GraphSnapshot;
class SnapshotManager;

namespace ivm {
class IvmManager;
}

/// Direction of traversal relative to a node.
enum class Direction { kOutgoing, kIncoming, kBoth };

/// Stored node. Labels are kept sorted; properties are keyed by interned
/// property-key id. Adjacency is maintained as unordered id lists; deleted
/// relationships are lazily skipped.
struct NodeRecord {
  NodeId id;
  bool alive = true;
  std::vector<LabelId> labels;  // sorted, unique
  PropMap props;
  std::vector<RelId> out_rels;
  std::vector<RelId> in_rels;

  bool HasLabel(LabelId l) const;
};

/// Stored relationship (always directed src -> dst; queries may traverse
/// either way). A relationship has exactly one type, per the Property Graph
/// model used by the paper.
struct RelRecord {
  RelId id;
  bool alive = true;
  RelTypeId type = 0;
  NodeId src;
  NodeId dst;
  PropMap props;
};

/// In-memory property graph: the storage substrate on which the PG-Trigger
/// engine, the Cypher-subset executor, and the APOC/Memgraph emulators all
/// run (standing in for Neo4j's / Memgraph's storage layer).
///
/// Invariants:
///  * ids are dense, allocated in creation order, never reused;
///  * deletions tombstone the record (alive = false) and unlink it from the
///    label index; the record stays addressable for undo and for OLD
///    transition variables;
///  * the label index is exact: it contains exactly the alive nodes that
///    carry the label, in id order (deterministic scans);
///  * property indexes (see src/index) are exact in the same sense: every
///    node mutation routes through the IndexCatalog maintenance hooks, so
///    postings cover exactly the alive nodes carrying the indexed label
///    with a non-NULL indexed property.
///
/// The store itself performs no change tracking and no trigger dispatch;
/// that is the transaction layer's job (src/tx). It is single-writer.
class GraphStore {
 public:
  GraphStore();
  ~GraphStore();
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // --- Dictionaries -------------------------------------------------------

  LabelId InternLabel(std::string_view name) { return labels_.Intern(name); }
  RelTypeId InternRelType(std::string_view name) {
    return rel_types_.Intern(name);
  }
  PropKeyId InternPropKey(std::string_view name) {
    return prop_keys_.Intern(name);
  }
  std::optional<LabelId> LookupLabel(std::string_view name) const {
    return labels_.Lookup(name);
  }
  std::optional<RelTypeId> LookupRelType(std::string_view name) const {
    return rel_types_.Lookup(name);
  }
  std::optional<PropKeyId> LookupPropKey(std::string_view name) const {
    return prop_keys_.Lookup(name);
  }
  const std::string& LabelName(LabelId id) const { return labels_.name(id); }
  const std::string& RelTypeName(RelTypeId id) const {
    return rel_types_.name(id);
  }
  const std::string& PropKeyName(PropKeyId id) const {
    return prop_keys_.name(id);
  }

  /// Dictionary sizes: ids are dense, so every id < size is valid. The
  /// snapshot substrate uses these to mirror the dictionaries per epoch.
  size_t LabelDictSize() const { return labels_.size(); }
  size_t RelTypeDictSize() const { return rel_types_.size(); }
  size_t PropKeyDictSize() const { return prop_keys_.size(); }

  // --- Node operations ----------------------------------------------------

  /// Creates a node with the given labels and properties.
  NodeId CreateNode(const std::vector<LabelId>& labels,
                    PropMap props);

  /// Returns the record (alive or tombstoned), or nullptr if never existed.
  const NodeRecord* GetNode(NodeId id) const;

  /// True iff the node exists and is alive.
  bool NodeAlive(NodeId id) const;

  /// Deletes a node. Fails with FailedPrecondition if relationships are
  /// still attached (callers implement DETACH DELETE by removing them
  /// first).
  Status DeleteNode(NodeId id);

  /// Re-inserts a tombstoned node with the given image (undo path).
  Status ReviveNode(NodeId id, const std::vector<LabelId>& labels,
                    PropMap props);

  /// Adds a label; returns true if the label was newly added.
  Result<bool> AddLabel(NodeId id, LabelId label);

  /// Removes a label; returns true if the label was present.
  Result<bool> RemoveLabel(NodeId id, LabelId label);

  /// Sets a property; returns the previous value (NULL if absent).
  Result<Value> SetNodeProp(NodeId id, PropKeyId key, Value value);

  /// Removes a property; returns the previous value (NULL if absent).
  Result<Value> RemoveNodeProp(NodeId id, PropKeyId key);

  /// Property read; NULL if absent. Precondition: node exists.
  Value GetNodeProp(NodeId id, PropKeyId key) const;

  // --- Relationship operations --------------------------------------------

  /// Creates a relationship src -[type]-> dst.
  Result<RelId> CreateRel(NodeId src, RelTypeId type, NodeId dst,
                          PropMap props);

  const RelRecord* GetRel(RelId id) const;
  bool RelAlive(RelId id) const;

  Status DeleteRel(RelId id);

  /// Re-inserts a tombstoned relationship with the given image (undo path).
  Status ReviveRel(RelId id, PropMap props);

  Result<Value> SetRelProp(RelId id, PropKeyId key, Value value);
  Result<Value> RemoveRelProp(RelId id, PropKeyId key);
  Value GetRelProp(RelId id, PropKeyId key) const;

  // --- Scans ---------------------------------------------------------------

  /// Alive nodes carrying `label`, in id order.
  std::vector<NodeId> NodesByLabel(LabelId label) const;

  /// Number of alive nodes carrying `label` (planner selectivity).
  size_t LabelCardinality(LabelId label) const;

  /// All alive nodes, in id order.
  std::vector<NodeId> AllNodes() const;

  /// All alive relationships, in id order.
  std::vector<RelId> AllRels() const;

  /// Alive relationships incident to `node` in the given direction,
  /// optionally restricted to a type. Deterministic (id order).
  std::vector<RelId> RelsOf(NodeId node, Direction dir,
                            std::optional<RelTypeId> type) const;

  /// Zero-materialization traversal over the same relationships RelsOf
  /// returns, in raw adjacency order (NOT id-sorted — RelsOf sorts on top
  /// of this). For order-insensitive consumers only; the matcher keeps
  /// using RelsOf so match emission order stays id-deterministic. The
  /// callback must not mutate the store.
  template <typename Fn>
  void ForEachRelOf(NodeId node, Direction dir,
                    std::optional<RelTypeId> type, Fn&& fn) const {
    const NodeRecord* n = GetNode(node);
    if (n == nullptr || !n->alive) return;
    auto consider = [&](RelId rid) {
      const RelRecord* r = GetRel(rid);
      if (r == nullptr || !r->alive) return;
      if (type.has_value() && r->type != *type) return;
      fn(rid);
    };
    if (dir == Direction::kOutgoing || dir == Direction::kBoth) {
      for (RelId rid : n->out_rels) consider(rid);
    }
    if (dir == Direction::kIncoming || dir == Direction::kBoth) {
      for (RelId rid : n->in_rels) {
        // Self-loops appear in both adjacency lists; report them once.
        const RelRecord* r = GetRel(rid);
        if (dir == Direction::kBoth && r != nullptr && r->src == r->dst) {
          continue;
        }
        consider(rid);
      }
    }
  }

  /// Number of alive nodes / relationships.
  size_t NodeCount() const { return alive_nodes_; }
  size_t RelCount() const { return alive_rels_; }

  /// Total ids ever allocated (alive + tombstoned); ids are < these bounds.
  uint64_t NodeIdBound() const { return nodes_.size(); }
  uint64_t RelIdBound() const { return rels_.size(); }

  /// Consumes one id by appending a dead placeholder record (no adjacency,
  /// no index postings, no counters). A rolled-back transaction burns the
  /// ids it allocated without logging anything, so WAL replay uses these to
  /// reproduce the resulting gaps in the id sequence (docs/durability.md).
  NodeId BurnNodeId();
  RelId BurnRelId();

  // --- Property indexes ----------------------------------------------------

  /// The property-index catalog. Every node mutation above flows through
  /// its maintenance hooks, so postings always mirror the alive graph —
  /// including across transaction rollback, whose undo log replays inverse
  /// mutations through these same methods.
  index::IndexCatalog& indexes() { return indexes_; }
  const index::IndexCatalog& indexes() const { return indexes_; }

  /// Creates and backfills a label+property index. `spec.name` is filled
  /// from the interned names. Fails with AlreadyExists if (label, prop) is
  /// already indexed, or with ConstraintViolation when a unique
  /// enforce-on-write index finds duplicate values in existing data (the
  /// index is not left behind).
  Result<const index::PropertyIndex*> CreateIndex(index::IndexSpec spec);

  /// Drops the index on (label, prop); NotFound if none exists.
  Status DropIndex(LabelId label, PropKeyId prop);

  // --- Incremental WHEN maintenance (src/ivm, docs/ivm.md) ------------------

  /// Wires the IVM manager into the node-mutation hook sites (the same
  /// call sites that maintain the label and property indexes), so
  /// per-trigger materialized match state stays exact across mutations —
  /// rollback included, since undo replays inverse mutations through these
  /// same methods. Null detaches (the default).
  void SetIvmManager(ivm::IvmManager* ivm) { ivm_ = ivm; }
  ivm::IvmManager* ivm_manager() const { return ivm_; }

  // --- Snapshots ------------------------------------------------------------

  /// The epoch-versioning snapshot substrate (src/storage/snapshot.h,
  /// docs/snapshots.md). Until the first OpenSnapshot arms it, commits
  /// only bump an atomic epoch counter.
  SnapshotManager& snapshots() { return *snapshots_; }
  const SnapshotManager& snapshots() const { return *snapshots_; }

  /// Opens a snapshot pinned to the last committed epoch. The first call
  /// arms the substrate (baseline-copies every live record) and must run
  /// on the writer thread while no transaction is active; afterwards
  /// OpenSnapshot is safe from any thread.
  std::shared_ptr<const GraphSnapshot> OpenSnapshot();

  // --- Recovery -------------------------------------------------------------

  /// Bulk-loads a recovered snapshot image into an empty store (WAL
  /// recovery only). Interns the dictionaries in their original order (the
  /// dense ids baked into the records must resolve to the same symbols),
  /// installs node / relationship records — tombstones included, because
  /// the id space must come back hole-for-hole — rebuilds adjacency from
  /// the alive relationships in id order, and rebuilds the label index and
  /// alive counts. Record `id` fields are assigned from position; incoming
  /// adjacency lists are ignored. Property indexes are not touched: the
  /// caller re-creates them from the recovered definitions afterwards.
  Status LoadForRecovery(const std::vector<std::string>& labels,
                         const std::vector<std::string>& rel_types,
                         const std::vector<std::string>& prop_keys,
                         std::vector<NodeRecord> nodes,
                         std::vector<RelRecord> rels);

 private:
  NodeRecord* MutableNode(NodeId id);
  RelRecord* MutableRel(RelId id);
  void IndexNodeLabel(NodeId id, LabelId label);
  void UnindexNodeLabel(NodeId id, LabelId label);
  // IVM hook forwarders (defined in graph_store.cc where the manager is a
  // complete type). Called at the END of each mutator, after the record
  // reflects the new truth — maintenance recomputes membership from the
  // store, so it must observe the post-mutation state.
  void IvmNodeEvent(NodeId id, const std::vector<LabelId>& labels);
  void IvmLabelEvent(NodeId id, LabelId changed,
                     const std::vector<LabelId>& labels);
  void IvmPropEvent(NodeId id, PropKeyId key,
                    const std::vector<LabelId>& labels);

  StringInterner labels_;
  StringInterner rel_types_;
  StringInterner prop_keys_;
  std::vector<NodeRecord> nodes_;
  std::vector<RelRecord> rels_;
  // label -> alive node ids carrying it; std::set keeps scans deterministic.
  std::unordered_map<LabelId, std::set<uint64_t>> label_index_;
  index::IndexCatalog indexes_;
  ivm::IvmManager* ivm_ = nullptr;  // not owned; see SetIvmManager
  std::shared_ptr<SnapshotManager> snapshots_;  // open snapshots co-own it
  size_t alive_nodes_ = 0;
  size_t alive_rels_ = 0;
};

}  // namespace pgt

#endif  // PGTRIGGERS_STORAGE_GRAPH_STORE_H_
