#include "src/storage/graph_store.h"

#include <algorithm>

#include "src/ivm/ivm_manager.h"
#include "src/storage/snapshot.h"

namespace pgt {

GraphStore::GraphStore() : snapshots_(std::make_shared<SnapshotManager>()) {}

GraphStore::~GraphStore() = default;

std::shared_ptr<const GraphSnapshot> GraphStore::OpenSnapshot() {
  if (!snapshots_->armed()) snapshots_->Arm(*this);
  return snapshots_->Open(snapshots_);
}

bool NodeRecord::HasLabel(LabelId l) const {
  return std::binary_search(labels.begin(), labels.end(), l);
}

// --- IVM hook forwarders ----------------------------------------------------
// Out of line so graph_store.h only forward-declares the manager; the
// active() pre-check keeps the detached / idle cost to one branch.

void GraphStore::IvmNodeEvent(NodeId id, const std::vector<LabelId>& labels) {
  if (ivm_ != nullptr && ivm_->active()) ivm_->OnNodeEvent(id, labels);
}

void GraphStore::IvmLabelEvent(NodeId id, LabelId changed,
                               const std::vector<LabelId>& labels) {
  if (ivm_ != nullptr && ivm_->active()) {
    ivm_->OnLabelEvent(id, changed, labels);
  }
}

void GraphStore::IvmPropEvent(NodeId id, PropKeyId key,
                              const std::vector<LabelId>& labels) {
  if (ivm_ != nullptr && ivm_->active()) ivm_->OnPropEvent(id, key, labels);
}

// --- Nodes ------------------------------------------------------------------

NodeId GraphStore::CreateNode(const std::vector<LabelId>& labels,
                              PropMap props) {
  NodeRecord rec;
  rec.id = NodeId{nodes_.size()};
  rec.labels = labels;
  std::sort(rec.labels.begin(), rec.labels.end());
  rec.labels.erase(std::unique(rec.labels.begin(), rec.labels.end()),
                   rec.labels.end());
  rec.props = std::move(props);
  const NodeId id = rec.id;
  nodes_.push_back(std::move(rec));
  ++alive_nodes_;
  const NodeRecord& stored = nodes_.back();
  for (LabelId l : stored.labels) IndexNodeLabel(id, l);
  if (!indexes_.empty()) indexes_.OnNodeAdded(id, stored.labels, stored.props);
  IvmNodeEvent(id, stored.labels);
  return id;
}

NodeId GraphStore::BurnNodeId() {
  NodeRecord rec;
  rec.id = NodeId{nodes_.size()};
  rec.alive = false;
  const NodeId id = rec.id;
  nodes_.push_back(std::move(rec));
  return id;
}

RelId GraphStore::BurnRelId() {
  RelRecord rec;
  rec.id = RelId{rels_.size()};
  rec.alive = false;
  const RelId id = rec.id;
  rels_.push_back(std::move(rec));
  return id;
}

const NodeRecord* GraphStore::GetNode(NodeId id) const {
  if (id.value >= nodes_.size()) return nullptr;
  return &nodes_[id.value];
}

NodeRecord* GraphStore::MutableNode(NodeId id) {
  if (id.value >= nodes_.size()) return nullptr;
  return &nodes_[id.value];
}

bool GraphStore::NodeAlive(NodeId id) const {
  const NodeRecord* n = GetNode(id);
  return n != nullptr && n->alive;
}

Status GraphStore::DeleteNode(NodeId id) {
  NodeRecord* n = MutableNode(id);
  if (n == nullptr || !n->alive) {
    return Status::NotFound("node " + std::to_string(id.value));
  }
  for (RelId r : n->out_rels) {
    if (RelAlive(r)) {
      return Status::FailedPrecondition(
          "node " + std::to_string(id.value) +
          " still has relationships; DETACH DELETE required");
    }
  }
  for (RelId r : n->in_rels) {
    if (RelAlive(r)) {
      return Status::FailedPrecondition(
          "node " + std::to_string(id.value) +
          " still has relationships; DETACH DELETE required");
    }
  }
  for (LabelId l : n->labels) UnindexNodeLabel(id, l);
  if (!indexes_.empty()) indexes_.OnNodeRemoved(id, n->labels, n->props);
  n->alive = false;
  --alive_nodes_;
  // After the alive flip: IVM recomputes membership from the record, so it
  // must see the tombstoned state (labels stay intact on the tombstone).
  IvmNodeEvent(id, n->labels);
  return Status::OK();
}

Status GraphStore::ReviveNode(NodeId id, const std::vector<LabelId>& labels,
                              PropMap props) {
  NodeRecord* n = MutableNode(id);
  if (n == nullptr) {
    return Status::NotFound("node " + std::to_string(id.value));
  }
  if (n->alive) {
    return Status::FailedPrecondition("node is alive");
  }
  n->alive = true;
  n->labels = labels;
  std::sort(n->labels.begin(), n->labels.end());
  n->props = std::move(props);
  ++alive_nodes_;
  for (LabelId l : n->labels) IndexNodeLabel(id, l);
  if (!indexes_.empty()) indexes_.OnNodeAdded(id, n->labels, n->props);
  IvmNodeEvent(id, n->labels);
  return Status::OK();
}

Result<bool> GraphStore::AddLabel(NodeId id, LabelId label) {
  NodeRecord* n = MutableNode(id);
  if (n == nullptr || !n->alive) {
    return Status::NotFound("node " + std::to_string(id.value));
  }
  auto it = std::lower_bound(n->labels.begin(), n->labels.end(), label);
  if (it != n->labels.end() && *it == label) return false;
  n->labels.insert(it, label);
  IndexNodeLabel(id, label);
  if (!indexes_.empty()) indexes_.OnLabelAdded(id, label, n->props);
  IvmLabelEvent(id, label, n->labels);
  return true;
}

Result<bool> GraphStore::RemoveLabel(NodeId id, LabelId label) {
  NodeRecord* n = MutableNode(id);
  if (n == nullptr || !n->alive) {
    return Status::NotFound("node " + std::to_string(id.value));
  }
  auto it = std::lower_bound(n->labels.begin(), n->labels.end(), label);
  if (it == n->labels.end() || *it != label) return false;
  n->labels.erase(it);
  UnindexNodeLabel(id, label);
  if (!indexes_.empty()) indexes_.OnLabelRemoved(id, label, n->props);
  IvmLabelEvent(id, label, n->labels);
  return true;
}

Result<Value> GraphStore::SetNodeProp(NodeId id, PropKeyId key, Value value) {
  NodeRecord* n = MutableNode(id);
  if (n == nullptr || !n->alive) {
    return Status::NotFound("node " + std::to_string(id.value));
  }
  Value old;
  auto it = n->props.find(key);
  if (it != n->props.end()) old = it->second;
  if (value.is_null()) {
    // Cypher semantics: SET n.p = null removes the property.
    n->props.Erase(key);
    if (!indexes_.empty()) {
      indexes_.OnPropChanged(id, n->labels, key, old, Value::Null());
    }
  } else {
    if (!indexes_.empty()) {
      indexes_.OnPropChanged(id, n->labels, key, old, value);
    }
    n->props[key] = std::move(value);
  }
  IvmPropEvent(id, key, n->labels);
  return old;
}

Result<Value> GraphStore::RemoveNodeProp(NodeId id, PropKeyId key) {
  NodeRecord* n = MutableNode(id);
  if (n == nullptr || !n->alive) {
    return Status::NotFound("node " + std::to_string(id.value));
  }
  Value old;
  auto it = n->props.find(key);
  if (it != n->props.end()) {
    old = it->second;
    n->props.Erase(key);
    if (!indexes_.empty()) {
      indexes_.OnPropChanged(id, n->labels, key, old, Value::Null());
    }
    IvmPropEvent(id, key, n->labels);
  }
  return old;
}

Value GraphStore::GetNodeProp(NodeId id, PropKeyId key) const {
  const NodeRecord* n = GetNode(id);
  if (n == nullptr) return Value::Null();
  auto it = n->props.find(key);
  return it == n->props.end() ? Value::Null() : it->second;
}

// --- Relationships -----------------------------------------------------------

Result<RelId> GraphStore::CreateRel(NodeId src, RelTypeId type, NodeId dst,
                                    PropMap props) {
  NodeRecord* s = MutableNode(src);
  NodeRecord* d = MutableNode(dst);
  if (s == nullptr || !s->alive) {
    return Status::NotFound("source node " + std::to_string(src.value));
  }
  if (d == nullptr || !d->alive) {
    return Status::NotFound("target node " + std::to_string(dst.value));
  }
  RelRecord rec;
  rec.id = RelId{rels_.size()};
  rec.type = type;
  rec.src = src;
  rec.dst = dst;
  rec.props = std::move(props);
  const RelId id = rec.id;
  rels_.push_back(std::move(rec));
  ++alive_rels_;
  s->out_rels.push_back(id);
  d->in_rels.push_back(id);
  return id;
}

const RelRecord* GraphStore::GetRel(RelId id) const {
  if (id.value >= rels_.size()) return nullptr;
  return &rels_[id.value];
}

RelRecord* GraphStore::MutableRel(RelId id) {
  if (id.value >= rels_.size()) return nullptr;
  return &rels_[id.value];
}

bool GraphStore::RelAlive(RelId id) const {
  const RelRecord* r = GetRel(id);
  return r != nullptr && r->alive;
}

Status GraphStore::DeleteRel(RelId id) {
  RelRecord* r = MutableRel(id);
  if (r == nullptr || !r->alive) {
    return Status::NotFound("relationship " + std::to_string(id.value));
  }
  r->alive = false;
  --alive_rels_;
  return Status::OK();
}

Status GraphStore::ReviveRel(RelId id, PropMap props) {
  RelRecord* r = MutableRel(id);
  if (r == nullptr) {
    return Status::NotFound("relationship " + std::to_string(id.value));
  }
  if (r->alive) return Status::FailedPrecondition("relationship is alive");
  if (!NodeAlive(r->src) || !NodeAlive(r->dst)) {
    return Status::FailedPrecondition("endpoint not alive");
  }
  r->alive = true;
  r->props = std::move(props);
  ++alive_rels_;
  return Status::OK();
}

Result<Value> GraphStore::SetRelProp(RelId id, PropKeyId key, Value value) {
  RelRecord* r = MutableRel(id);
  if (r == nullptr || !r->alive) {
    return Status::NotFound("relationship " + std::to_string(id.value));
  }
  Value old;
  auto it = r->props.find(key);
  if (it != r->props.end()) old = it->second;
  if (value.is_null()) {
    r->props.Erase(key);
  } else {
    r->props[key] = std::move(value);
  }
  return old;
}

Result<Value> GraphStore::RemoveRelProp(RelId id, PropKeyId key) {
  RelRecord* r = MutableRel(id);
  if (r == nullptr || !r->alive) {
    return Status::NotFound("relationship " + std::to_string(id.value));
  }
  Value old;
  auto it = r->props.find(key);
  if (it != r->props.end()) {
    old = it->second;
    r->props.Erase(key);
  }
  return old;
}

Value GraphStore::GetRelProp(RelId id, PropKeyId key) const {
  const RelRecord* r = GetRel(id);
  if (r == nullptr) return Value::Null();
  auto it = r->props.find(key);
  return it == r->props.end() ? Value::Null() : it->second;
}

// --- Scans --------------------------------------------------------------------

std::vector<NodeId> GraphStore::NodesByLabel(LabelId label) const {
  std::vector<NodeId> out;
  auto it = label_index_.find(label);
  if (it == label_index_.end()) return out;
  out.reserve(it->second.size());
  for (uint64_t v : it->second) out.push_back(NodeId{v});
  return out;
}

size_t GraphStore::LabelCardinality(LabelId label) const {
  auto it = label_index_.find(label);
  return it == label_index_.end() ? 0 : it->second.size();
}

std::vector<NodeId> GraphStore::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_nodes_);
  for (const NodeRecord& n : nodes_) {
    if (n.alive) out.push_back(n.id);
  }
  return out;
}

std::vector<RelId> GraphStore::AllRels() const {
  std::vector<RelId> out;
  out.reserve(alive_rels_);
  for (const RelRecord& r : rels_) {
    if (r.alive) out.push_back(r.id);
  }
  return out;
}

std::vector<RelId> GraphStore::RelsOf(NodeId node, Direction dir,
                                      std::optional<RelTypeId> type) const {
  std::vector<RelId> out;
  ForEachRelOf(node, dir, type, [&](RelId rid) { out.push_back(rid); });
  std::sort(out.begin(), out.end());
  return out;
}

// --- Property indexes --------------------------------------------------------

Result<const index::PropertyIndex*> GraphStore::CreateIndex(
    index::IndexSpec spec) {
  spec.name = LabelName(spec.label) + "(" + PropKeyName(spec.prop) + ")";
  PGT_ASSIGN_OR_RETURN(index::PropertyIndex * idx,
                       indexes_.Register(std::move(spec)));
  // Backfill from the label index: exactly the alive carriers of the label.
  const index::IndexSpec& s = idx->spec();
  for (NodeId id : NodesByLabel(s.label)) {
    const NodeRecord* n = GetNode(id);
    auto it = n->props.find(s.prop);
    if (it != n->props.end()) idx->Insert(it->second, id);
  }
  // A write-enforcing unique index must start from a clean state; report
  // the first duplicate and leave no index behind.
  if (s.unique && s.enforce_on_write) {
    std::string error;
    idx->ForEachDuplicate([&](const Value& v, const std::set<uint64_t>& ids) {
      if (!error.empty()) return;
      auto it = ids.begin();
      const uint64_t first = *it++;
      error = "cannot create unique index " + idx->spec().name + ": value " +
              v.ToString() + " held by nodes " + std::to_string(first) +
              " and " + std::to_string(*it);
    });
    if (!error.empty()) {
      const LabelId label = s.label;
      const PropKeyId prop = s.prop;
      PGT_RETURN_IF_ERROR(indexes_.Unregister(label, prop));
      return Status::ConstraintViolation(error);
    }
  }
  // Snapshot sidecar: give pinned-epoch readers a versioned posting store
  // for the new index (no-op until snapshots are armed).
  if (snapshots_->armed()) snapshots_->OnIndexCreated(*idx);
  return idx;
}

Status GraphStore::DropIndex(LabelId label, PropKeyId prop) {
  PGT_RETURN_IF_ERROR(indexes_.Unregister(label, prop));
  if (snapshots_->armed()) snapshots_->OnIndexDropped(label, prop);
  return Status::OK();
}

Status GraphStore::LoadForRecovery(const std::vector<std::string>& labels,
                                   const std::vector<std::string>& rel_types,
                                   const std::vector<std::string>& prop_keys,
                                   std::vector<NodeRecord> nodes,
                                   std::vector<RelRecord> rels) {
  if (!nodes_.empty() || !rels_.empty() || labels_.size() != 0 ||
      rel_types_.size() != 0 || prop_keys_.size() != 0) {
    return Status::Internal("LoadForRecovery requires an empty store");
  }
  for (const std::string& s : labels) labels_.Intern(s);
  for (const std::string& s : rel_types) rel_types_.Intern(s);
  for (const std::string& s : prop_keys) prop_keys_.Intern(s);
  if (labels_.size() != labels.size() || rel_types_.size() != rel_types.size() ||
      prop_keys_.size() != prop_keys.size()) {
    // Intern dedups, so a shrink means the image held duplicate names —
    // which a healthy writer can never produce.
    return Status::IoError("recovered dictionary contains duplicate names");
  }

  nodes_ = std::move(nodes);
  rels_ = std::move(rels);
  alive_nodes_ = 0;
  alive_rels_ = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeRecord& n = nodes_[i];
    n.id = NodeId{i};
    n.out_rels.clear();
    n.in_rels.clear();
    if (!n.alive) continue;
    ++alive_nodes_;
    for (LabelId l : n.labels) {
      if (l >= labels_.size()) {
        return Status::IoError("recovered node carries unknown label id " +
                               std::to_string(l));
      }
      IndexNodeLabel(n.id, l);
    }
  }
  // Adjacency is rebuilt from the alive relationships in id order: a
  // tombstoned rel's adjacency entries were unobservable (every traversal
  // skips dead rels), so omitting them is equivalent — and it is the same
  // out-then-in append CreateRel does, self-loops landing in both lists.
  for (size_t i = 0; i < rels_.size(); ++i) {
    RelRecord& r = rels_[i];
    r.id = RelId{i};
    if (!r.alive) continue;
    if (r.src.value >= nodes_.size() || r.dst.value >= nodes_.size() ||
        !nodes_[r.src.value].alive || !nodes_[r.dst.value].alive) {
      return Status::IoError("recovered relationship " + std::to_string(i) +
                             " has a dead or missing endpoint");
    }
    ++alive_rels_;
    nodes_[r.src.value].out_rels.push_back(r.id);
    nodes_[r.dst.value].in_rels.push_back(r.id);
  }
  return Status::OK();
}

void GraphStore::IndexNodeLabel(NodeId id, LabelId label) {
  label_index_[label].insert(id.value);
}

void GraphStore::UnindexNodeLabel(NodeId id, LabelId label) {
  auto it = label_index_.find(label);
  if (it != label_index_.end()) it->second.erase(id.value);
}

}  // namespace pgt
