#ifndef PGTRIGGERS_STORAGE_SNAPSHOT_H_
#define PGTRIGGERS_STORAGE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/prop_map.h"
#include "src/common/status.h"
#include "src/common/str_util.h"
#include "src/common/value.h"
#include "src/index/versioned_postings.h"
#include "src/storage/graph_store.h"

namespace pgt {

struct GraphDelta;

/// Epoch-versioned snapshot substrate (docs/snapshots.md).
///
/// The engine is single-writer: all mutations flow through one Transaction
/// at a time, on one thread. Snapshots give *readers* on other threads a
/// consistent point-in-time view without locking that writer out:
///
///  * `commit_epoch` is bumped once per committed transaction (epoch
///    publication is the only synchronization point between the writer and
///    the readers' hot path);
///  * at commit, the records the transaction touched are re-published as
///    immutable epoch-tagged versions into a sidecar (chunked tables of
///    lock-free version chains) — record-granularity copy-on-write driven
///    by the commit's GraphDelta, which the transaction machinery already
///    derives for trigger dispatch;
///  * a `GraphSnapshot` pins an epoch: resolving a record walks its chain
///    to the newest version with `epoch <= pinned`. Readers never touch
///    the writer-mutable `GraphStore` records at all, so there is nothing
///    to tear; versions are immutable after publication and heads/prev
///    links are atomics.
///
/// The sidecar is reclaimed when the oldest pinned snapshot advances:
/// versions older than what every live snapshot can still observe are
/// freed (and chains truncated) under the manager mutex. Open/close and
/// commit publication take that mutex; snapshot *reads* never do.
///
/// Uncommitted changes are never published, so a snapshot can be opened at
/// any time between or during transactions and always observes the last
/// committed state. Rollbacks publish nothing.

/// Immutable committed version of a node record. `out_rels` / `in_rels`
/// are shared with the previous version when the commit did not touch the
/// node's adjacency (adjacency only grows, and only via relationship
/// creation, so sharing is exact).
struct NodeVersion {
  uint64_t epoch = 0;  // commit epoch at which this version became current
  bool alive = false;
  std::vector<LabelId> labels;  // sorted (empty for dead versions)
  PropMap props;                // empty for dead versions
  std::shared_ptr<const std::vector<RelId>> out_rels, in_rels;
  std::atomic<NodeVersion*> prev{nullptr};  // next-older version
};

/// Immutable committed version of a relationship record. Type and
/// endpoints are immutable in the store, so dead versions keep them (live
/// parity: a tombstoned RelRecord keeps its type/src/dst too).
struct RelVersion {
  uint64_t epoch = 0;
  bool alive = false;
  RelTypeId type = 0;
  NodeId src;
  NodeId dst;
  PropMap props;  // empty for dead versions
  std::atomic<RelVersion*> prev{nullptr};
};

/// Lock-free chunked table of per-record version chains, indexed by dense
/// record id. Chunks are allocated by the writer on demand and published
/// with release stores; readers only ever load. Chunk memory is stable for
/// the table's lifetime, so readers hold no locks.
template <typename V>
class VersionTable {
 public:
  static constexpr size_t kChunkBits = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;  // 4096
  static constexpr size_t kMaxChunks = size_t{1} << 18;  // 1B records
  static constexpr uint64_t kMaxRecords = kMaxChunks * kChunkSize;

  VersionTable() = default;
  ~VersionTable() { Destroy(); }
  VersionTable(const VersionTable&) = delete;
  VersionTable& operator=(const VersionTable&) = delete;

  /// Newest published version for `id` (acquire), or nullptr.
  V* Head(uint64_t id) const {
    if (top_ == nullptr || id >= kMaxRecords) return nullptr;
    const Chunk* c = top_[id >> kChunkBits].load(std::memory_order_acquire);
    if (c == nullptr) return nullptr;
    return c->slots[id & (kChunkSize - 1)].load(std::memory_order_acquire);
  }

  /// Writer-side: prepends `v` as the new head of `id`'s chain. Returns the
  /// previous head (already linked as v->prev).
  V* Publish(uint64_t id, V* v) {
    Chunk* c = EnsureChunk(id >> kChunkBits);
    auto& slot = c->slots[id & (kChunkSize - 1)];
    V* old = slot.load(std::memory_order_relaxed);
    v->prev.store(old, std::memory_order_relaxed);
    slot.store(v, std::memory_order_release);
    return old;
  }

  /// Pre-allocates the chunk directory. `top_` itself is a plain pointer,
  /// so it must be in place before the first lock-free Head() can run
  /// concurrently with a Publish — SnapshotManager::Arm calls this before
  /// any snapshot (and hence any reader) exists; it is never reassigned
  /// afterwards.
  void EnsureTop() {
    if (top_ == nullptr) {
      top_ = std::make_unique<std::atomic<Chunk*>[]>(kMaxChunks);
    }
  }

 private:
  struct Chunk {
    std::atomic<V*> slots[kChunkSize] = {};
  };

  Chunk* EnsureChunk(size_t idx) {
    // Fail loudly rather than indexing past top_: silently dropping a
    // version would hand snapshot readers a stale image.
    if (idx >= kMaxChunks) {
      std::fprintf(stderr,
                   "FATAL: snapshot version table capacity exceeded "
                   "(record id >= %llu)\n",
                   static_cast<unsigned long long>(kMaxRecords));
      std::abort();
    }
    if (top_ == nullptr) {
      top_ = std::make_unique<std::atomic<Chunk*>[]>(kMaxChunks);
    }
    Chunk* c = top_[idx].load(std::memory_order_relaxed);
    if (c == nullptr) {
      c = new Chunk();
      top_[idx].store(c, std::memory_order_release);
    }
    return c;
  }

  void Destroy() {
    if (top_ == nullptr) return;
    for (size_t i = 0; i < kMaxChunks; ++i) {
      Chunk* c = top_[i].load(std::memory_order_relaxed);
      if (c == nullptr) continue;
      for (size_t j = 0; j < kChunkSize; ++j) {
        V* v = c->slots[j].load(std::memory_order_relaxed);
        while (v != nullptr) {
          V* p = v->prev.load(std::memory_order_relaxed);
          delete v;
          v = p;
        }
      }
      delete c;
    }
    top_.reset();
  }

  std::unique_ptr<std::atomic<Chunk*>[]> top_;
};

/// Immutable copies of the store's string dictionaries as of an epoch.
/// Rebuilt at commit only when names were interned since the last rebuild;
/// snapshots share the current copy via shared_ptr. Interner ids are dense
/// and stable, so a snapshot's ids agree with the live store's.
struct SnapshotDicts {
  using NameMap = std::unordered_map<std::string, uint32_t,
                                     TransparentStringHash, std::equal_to<>>;

  std::vector<std::string> label_names, rel_type_names, prop_key_names;
  NameMap label_ids, rel_type_ids, prop_key_ids;

  static std::optional<uint32_t> Find(const NameMap& m, std::string_view s) {
    auto it = m.find(s);
    if (it == m.end()) return std::nullopt;
    return it->second;
  }
};

class SnapshotManager;

/// The set of versioned index sidecars visible to snapshots: (label, prop)
/// -> chain store. The map itself is copy-on-write — replaced only on
/// index DDL, shared by every snapshot opened in between; per-commit
/// posting publication mutates the (lock-free) sidecars in place.
using SnapshotIndexImage =
    std::map<std::pair<uint32_t, uint32_t>,
             std::shared_ptr<index::VersionedPostings>>;

/// A pinned point-in-time view of the graph: everything committed up to
/// (and including) `epoch()`, nothing after, nothing uncommitted. Safe to
/// read from any number of threads concurrently with the single writer;
/// reads take no locks. Obtained from GraphStore::OpenSnapshot() /
/// Database::OpenSnapshot(); releasing the last reference unpins the epoch
/// and lets the manager reclaim sidecar versions.
class GraphSnapshot {
 public:
  ~GraphSnapshot();
  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  uint64_t epoch() const { return epoch_; }

  // --- Dictionaries (as of the pinned epoch) ------------------------------

  std::optional<LabelId> LookupLabel(std::string_view name) const {
    return SnapshotDicts::Find(dicts_->label_ids, name);
  }
  std::optional<RelTypeId> LookupRelType(std::string_view name) const {
    return SnapshotDicts::Find(dicts_->rel_type_ids, name);
  }
  std::optional<PropKeyId> LookupPropKey(std::string_view name) const {
    return SnapshotDicts::Find(dicts_->prop_key_ids, name);
  }
  const std::string& LabelName(LabelId id) const {
    return dicts_->label_names[id];
  }
  const std::string& RelTypeName(RelTypeId id) const {
    return dicts_->rel_type_names[id];
  }
  const std::string& PropKeyName(PropKeyId id) const {
    return dicts_->prop_key_names[id];
  }

  // --- Record resolution ---------------------------------------------------

  /// The version of the node visible at this epoch (alive or dead), or
  /// nullptr when the node did not exist yet. Pointer stays valid for the
  /// snapshot's lifetime (pinned versions are never reclaimed).
  const NodeVersion* Node(NodeId id) const;
  const RelVersion* Rel(RelId id) const;

  bool NodeAlive(NodeId id) const {
    const NodeVersion* v = Node(id);
    return v != nullptr && v->alive;
  }
  bool RelAlive(RelId id) const {
    const RelVersion* v = Rel(id);
    return v != nullptr && v->alive;
  }

  // --- Scans ---------------------------------------------------------------

  /// Alive carriers of `label` at this epoch, in id order.
  std::vector<NodeId> NodesByLabel(LabelId label) const;
  size_t LabelCardinality(LabelId label) const;
  std::vector<NodeId> AllNodes() const;
  std::vector<RelId> AllRels() const;

  /// Mirror of GraphStore::ForEachRelOf over the pinned view: alive
  /// relationships incident to `node`, raw adjacency order, self-loops
  /// reported once for kBoth.
  template <typename Fn>
  void ForEachRelOf(NodeId node, Direction dir,
                    std::optional<RelTypeId> type, Fn&& fn) const {
    const NodeVersion* n = Node(node);
    if (n == nullptr || !n->alive) return;
    auto consider = [&](RelId rid, const RelVersion* r) {
      if (r == nullptr || !r->alive) return;
      if (type.has_value() && r->type != *type) return;
      fn(rid);
    };
    if (dir == Direction::kOutgoing || dir == Direction::kBoth) {
      for (RelId rid : *n->out_rels) consider(rid, Rel(rid));
    }
    if (dir == Direction::kIncoming || dir == Direction::kBoth) {
      for (RelId rid : *n->in_rels) {
        const RelVersion* r = Rel(rid);  // resolve the chain once
        if (dir == Direction::kBoth && r != nullptr && r->src == r->dst) {
          continue;  // self-loops appear in both lists; report once
        }
        consider(rid, r);
      }
    }
  }

  std::vector<RelId> RelsOf(NodeId node, Direction dir,
                            std::optional<RelTypeId> type) const;

  // --- Index probes ---------------------------------------------------------

  /// The versioned posting sidecar for the index on (label, prop), or
  /// nullptr when no index covered the pair when this snapshot was opened
  /// (callers fall back to a label scan). Probe with
  /// `LookupAt(value, epoch(), out)`.
  const index::VersionedPostings* FindIndex(LabelId label,
                                            PropKeyId prop) const {
    if (indexes_ == nullptr) return nullptr;
    auto it = indexes_->find({label, prop});
    return it == indexes_->end() ? nullptr : it->second.get();
  }

  bool HasIndexes() const {
    return indexes_ != nullptr && !indexes_->empty();
  }

  size_t NodeCount() const { return node_count_; }
  size_t RelCount() const { return rel_count_; }
  uint64_t NodeIdBound() const { return node_bound_; }
  uint64_t RelIdBound() const { return rel_bound_; }

 private:
  friend class SnapshotManager;
  GraphSnapshot() = default;

  std::shared_ptr<SnapshotManager> mgr_;  // keeps version tables alive
  uint64_t epoch_ = 0;
  std::shared_ptr<const SnapshotDicts> dicts_;
  // label -> alive carriers at this epoch (shared with the manager's
  // committed bucket; replaced-not-mutated on later commits).
  std::unordered_map<LabelId, std::shared_ptr<const std::vector<NodeId>>>
      buckets_;
  // Versioned index sidecars as of this snapshot's open (shared with the
  // manager; keeps dropped indexes' chains alive for the pinned epoch).
  std::shared_ptr<const SnapshotIndexImage> indexes_;
  uint64_t node_bound_ = 0, rel_bound_ = 0;
  size_t node_count_ = 0, rel_count_ = 0;
};

/// Owns the committed-version sidecar and the snapshot lifecycle. One per
/// GraphStore (held via shared_ptr so open snapshots keep the tables alive
/// even past store teardown).
///
/// Thread contract:
///  * Arm() and PublishCommit() run on the writer thread (Arm additionally
///    requires the writer to be idle — it baselines every live record);
///  * Open() / snapshot release are safe from any thread (they lock mu_);
///  * snapshot reads (Node/Rel resolution, scans) are lock-free.
class SnapshotManager {
 public:
  SnapshotManager() = default;

  /// True once the sidecar is maintained. Until armed, commits only bump
  /// the epoch counter (one atomic add — the trigger hot path stays
  /// zero-cost when snapshots are unused).
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Builds the baseline: one version per live record at the current
  /// epoch, committed dictionary / label-bucket / count images. Idempotent.
  /// Must run on the writer thread with no transaction in flight.
  void Arm(const GraphStore& store);

  /// Publishes the commit that produced `delta`: bumps the epoch and (when
  /// armed) re-versions every record the delta touched, from the
  /// now-committed live images. Writer thread only. Fails only by fault
  /// injection ("snapshot.publish", docs/robustness.md), and then before
  /// any state changes — the caller can still roll the transaction back.
  Status PublishCommit(const GraphStore& store, const GraphDelta& delta);

  uint64_t commit_epoch() const {
    return commit_epoch_.load(std::memory_order_acquire);
  }

  /// Opens (or reuses, when one is already pinned at the current epoch) a
  /// snapshot of the latest committed state. Requires armed().
  std::shared_ptr<const GraphSnapshot> Open(
      std::shared_ptr<SnapshotManager> self);

  // --- Index DDL hooks (writer thread; invoked by GraphStore) ---------------

  /// A property index was created while armed: baseline a versioned
  /// sidecar for it at the current epoch and publish a new index image.
  /// Snapshots already open (including the cached current-epoch one) keep
  /// the old image and fall back to label scans for this index — correct,
  /// just unaccelerated.
  void OnIndexCreated(const index::PropertyIndex& live);

  /// A property index was dropped while armed: publish an image without
  /// it. Open snapshots keep the old image (and its chains) alive.
  void OnIndexDropped(LabelId label, PropKeyId prop);

  // --- Introspection (tests / docs) ----------------------------------------

  /// Number of superseded (non-head) versions currently banked.
  size_t SidecarVersions() const;
  /// Number of superseded posting versions banked across index sidecars.
  size_t IndexSidecarVersions() const;
  /// Number of epochs currently pinned by live snapshots.
  size_t PinnedSnapshots() const;

 private:
  friend class GraphSnapshot;

  void Unpin(uint64_t epoch);
  void CollectGarbageLocked();
  void RefreshDictsLocked(const GraphStore& store);
  void RebuildBucketLocked(const GraphStore& store, LabelId label);
  void PublishIndexBandsLocked(const GraphStore& store,
                               const GraphDelta& delta, uint64_t new_epoch);

  template <typename V>
  void TruncateChains(VersionTable<V>& table, std::vector<uint64_t>& ids,
                      uint64_t min_keep);

  std::atomic<uint64_t> commit_epoch_{0};
  std::atomic<bool> armed_{false};

  mutable std::mutex mu_;  // pins, committed images, publish, GC
  VersionTable<NodeVersion> nodes_;
  VersionTable<RelVersion> rels_;
  std::vector<uint64_t> multi_nodes_, multi_rels_;  // ids with chains > 1
  size_t sidecar_versions_ = 0;
  std::multiset<uint64_t> pins_;
  std::weak_ptr<const GraphSnapshot> cache_;  // latest-epoch snapshot reuse

  // Committed images captured into every snapshot opened at the current
  // epoch (shared, replaced-not-mutated).
  std::shared_ptr<const SnapshotDicts> dicts_;
  std::unordered_map<LabelId, std::shared_ptr<const std::vector<NodeId>>>
      buckets_;
  // Versioned index sidecars (docs/async.md). The image map is COW'd only
  // on index DDL; commits publish posting versions into the shared
  // sidecars in place.
  std::shared_ptr<const SnapshotIndexImage> index_image_;
  uint64_t node_bound_ = 0, rel_bound_ = 0;
  size_t node_count_ = 0, rel_count_ = 0;
};

}  // namespace pgt

#endif  // PGTRIGGERS_STORAGE_SNAPSHOT_H_
