#ifndef PGTRIGGERS_COMMON_STATUS_H_
#define PGTRIGGERS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace pgt {

/// Canonical error codes used across the library. Modeled after the
/// RocksDB/Arrow Status idiom: no exceptions cross public API boundaries;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  /// Malformed input from the caller (bad query text, bad options).
  kInvalidArgument,
  /// A referenced entity (node, relationship, trigger, label) is missing.
  kNotFound,
  /// An entity with the same identity already exists (e.g. trigger name).
  kAlreadyExists,
  /// The operation is not legal in the current state (e.g. write in a
  /// read-only context, commit of an aborted transaction).
  kFailedPrecondition,
  /// Lexical or grammatical error in a query / trigger definition.
  kSyntaxError,
  /// Operand of the wrong runtime type (e.g. adding a string to a node).
  kTypeError,
  /// A PG-Schema or PG-Trigger legality rule was violated (e.g. setting the
  /// trigger's target label inside its own statement, key violation).
  kConstraintViolation,
  /// Trigger cascading exceeded the configured depth limit (runaway rules).
  kCascadeLimitExceeded,
  /// The enclosing transaction was rolled back.
  kAborted,
  /// Feature recognized but intentionally not implemented.
  kUnimplemented,
  /// Internal invariant broken; indicates a bug in the library.
  kInternal,
  /// A filesystem operation failed (WAL append, fsync, snapshot write).
  kIoError,
  /// A statement exceeded its execution budget (statement_timeout_ms or
  /// max_plan_steps) and was cancelled cooperatively (docs/robustness.md).
  kBudgetExceeded,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "SyntaxError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a context message.
///
/// Cheap to copy in the OK case (empty message). Use the factory functions
/// (`Status::OK()`, `Status::SyntaxError("...")`) rather than the raw
/// constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status SyntaxError(std::string m) {
    return Status(StatusCode::kSyntaxError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status ConstraintViolation(std::string m) {
    return Status(StatusCode::kConstraintViolation, std::move(m));
  }
  static Status CascadeLimitExceeded(std::string m) {
    return Status(StatusCode::kCascadeLimitExceeded, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status BudgetExceeded(std::string m) {
    return Status(StatusCode::kBudgetExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "SyntaxError: unexpected token 'FOO' at 1:17" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_STATUS_H_
