#ifndef PGTRIGGERS_COMMON_MACROS_H_
#define PGTRIGGERS_COMMON_MACROS_H_

#include <utility>

#include "src/common/result.h"
#include "src/common/status.h"

/// Error-propagation macros in the Arrow / RocksDB idiom.
///
///   PGT_RETURN_IF_ERROR(expr);            // expr yields Status
///   PGT_ASSIGN_OR_RETURN(auto v, expr);   // expr yields Result<T>

#define PGT_CONCAT_IMPL(x, y) x##y
#define PGT_CONCAT(x, y) PGT_CONCAT_IMPL(x, y)

#define PGT_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::pgt::Status _pgt_st = (expr);              \
    if (!_pgt_st.ok()) return _pgt_st;           \
  } while (0)

#define PGT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define PGT_ASSIGN_OR_RETURN(lhs, expr) \
  PGT_ASSIGN_OR_RETURN_IMPL(PGT_CONCAT(_pgt_res_, __LINE__), lhs, expr)

#endif  // PGTRIGGERS_COMMON_MACROS_H_
