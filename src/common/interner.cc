#include "src/common/interner.h"

namespace pgt {

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<uint32_t> StringInterner::Lookup(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace pgt
