#ifndef PGTRIGGERS_COMMON_PROP_MAP_H_
#define PGTRIGGERS_COMMON_PROP_MAP_H_

#include <algorithm>
#include <initializer_list>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"

namespace pgt {

/// Flat sorted-vector property map keyed by interned PropKeyId: the
/// per-record property container of NodeRecord / RelRecord, the deleted-item
/// images, and the OLD-image overlays of TransitionEnv (docs/values.md).
///
/// Records carry a handful of properties, so one contiguous vector with
/// binary-search reads beats a node-per-entry red-black tree on every axis
/// that matters here: reads are one cache line instead of a pointer chase
/// per tree level, copies are one allocation instead of one per entry, and
/// clear/reuse keeps the capacity. Iteration order is ascending key id —
/// deterministic, like the std::map it replaces (ids are interned in
/// first-seen order, so the *relative* order of two keys can differ from
/// name order; nothing observable depends on it).
///
/// The std::map-flavored parts of the interface (find / count / emplace)
/// are kept so call sites read the same as before the flattening.
class PropMap {
 public:
  using value_type = std::pair<PropKeyId, Value>;
  using const_iterator = std::vector<value_type>::const_iterator;
  using iterator = std::vector<value_type>::iterator;

  PropMap() = default;
  PropMap(std::initializer_list<value_type> init) {
    for (const value_type& e : init) Set(e.first, e.second);
  }

  /// Pointer to the mapped value, or nullptr when absent.
  const Value* Find(PropKeyId key) const {
    auto it = LowerBound(key);
    return it != entries_.end() && it->first == key ? &it->second : nullptr;
  }

  /// The mapped value, or NULL when absent (property-read semantics).
  Value Get(PropKeyId key) const {
    const Value* v = Find(key);
    return v != nullptr ? *v : Value();
  }

  /// Inserts or overwrites.
  void Set(PropKeyId key, Value v) {
    auto it = MutableLowerBound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(v);
    } else {
      entries_.emplace(it, key, std::move(v));
    }
  }

  /// Inserts only if absent (std::map::emplace semantics — "first value
  /// wins", which the OLD-image overlays rely on). Returns true if
  /// inserted.
  bool emplace(PropKeyId key, Value v) {
    auto it = MutableLowerBound(key);
    if (it != entries_.end() && it->first == key) return false;
    entries_.emplace(it, key, std::move(v));
    return true;
  }

  /// Inserts NULL if absent; returns a mutable reference to the slot.
  Value& operator[](PropKeyId key) {
    auto it = MutableLowerBound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.emplace(it, key, Value());
    }
    return it->second;
  }

  /// Removes the entry; returns true if it was present.
  bool Erase(PropKeyId key) {
    auto it = MutableLowerBound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }

  const_iterator find(PropKeyId key) const {
    auto it = LowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  size_t count(PropKeyId key) const { return Find(key) != nullptr ? 1 : 0; }
  bool contains(PropKeyId key) const { return Find(key) != nullptr; }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }  // keeps capacity (pooled reuse)
  void reserve(size_t n) { entries_.reserve(n); }

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

 private:
  const_iterator LowerBound(PropKeyId key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, PropKeyId k) { return e.first < k; });
  }
  iterator MutableLowerBound(PropKeyId key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, PropKeyId k) { return e.first < k; });
  }

  std::vector<value_type> entries_;  // sorted by key id, unique
};

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_PROP_MAP_H_
