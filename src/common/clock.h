#ifndef PGTRIGGERS_COMMON_CLOCK_H_
#define PGTRIGGERS_COMMON_CLOCK_H_

#include <cstdint>

namespace pgt {

/// Deterministic logical clock backing the Cypher DATETIME() function.
///
/// Every call advances the clock by one microsecond, so timestamps are
/// strictly monotone and runs are reproducible (the paper's alert nodes
/// carry `time: DATETIME()`; with a wall clock, tests and benchmark output
/// would be nondeterministic). The epoch can be set to a fixed calendar
/// point when realistic-looking values matter.
class LogicalClock {
 public:
  explicit LogicalClock(int64_t epoch_micros = 0) : now_(epoch_micros) {}

  /// Returns the current instant and advances the clock.
  int64_t NextMicros() { return now_++; }

  /// Returns the current instant without advancing.
  int64_t PeekMicros() const { return now_; }

  /// Jumps forward; used by workload generators to model the passage of
  /// days between admission waves.
  void AdvanceMicros(int64_t delta) { now_ += delta; }

 private:
  int64_t now_;
};

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_CLOCK_H_
