#ifndef PGTRIGGERS_COMMON_RESULT_H_
#define PGTRIGGERS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace pgt {

/// A value-or-error holder in the style of arrow::Result / absl::StatusOr.
///
/// A Result<T> is either OK and holds a T, or holds a non-OK Status.
/// Use with the PGT_ASSIGN_OR_RETURN / PGT_RETURN_IF_ERROR macros from
/// src/common/macros.h.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when not OK.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_RESULT_H_
