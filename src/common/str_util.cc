#include "src/common/str_util.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace pgt {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string EscapeSingleQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '\'') out += '\\';
    out += c;
  }
  return out;
}

std::string Indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line =
        text.substr(start, nl == std::string_view::npos ? std::string_view::npos
                                                        : nl - start);
    if (!line.empty()) out += pad;
    out += line;
    if (nl == std::string_view::npos) break;
    out += '\n';
    start = nl + 1;
  }
  return out;
}

}  // namespace pgt
