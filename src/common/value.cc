#include "src/common/value.h"

#include <cmath>
#include <sstream>

namespace pgt {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kDouble:
      return "FLOAT";
    case ValueType::kString:
      return "STRING";
    case ValueType::kList:
      return "LIST";
    case ValueType::kMap:
      return "MAP";
    case ValueType::kDate:
      return "DATE";
    case ValueType::kDateTime:
      return "DATETIME";
    case ValueType::kNode:
      return "NODE";
    case ValueType::kRel:
      return "RELATIONSHIP";
  }
  return "UNKNOWN";
}

Value Value::MakeList(List items) {
  Value v(Tag::kList);
  new (&v.p_.list) ListPtr(std::make_shared<const List>(std::move(items)));
  return v;
}

Value Value::MakeMap(Map items) {
  Value v(Tag::kMap);
  new (&v.p_.map) MapPtr(std::make_shared<const Map>(std::move(items)));
  return v;
}

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

/// Rank used to order values of different types in the total order.
/// Numerics share a rank so 1 < 1.5 < 2 works across int/double.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kBool:
      return 0;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
    case ValueType::kDate:
      return 3;
    case ValueType::kDateTime:
      return 4;
    case ValueType::kNode:
      return 5;
    case ValueType::kRel:
      return 6;
    case ValueType::kList:
      return 7;
    case ValueType::kMap:
      return 8;
    case ValueType::kNull:
      return 9;  // NULL sorts last
  }
  return 10;
}

}  // namespace

bool Value::Equals(const Value& other) const {
  const ValueType ta = type(), tb = other.type();
  if (ta == ValueType::kNull || tb == ValueType::kNull) {
    return ta == tb;
  }
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return int_value() == other.int_value();
    return as_double() == other.as_double();
  }
  if (ta != tb) return false;
  switch (ta) {
    case ValueType::kBool:
      return bool_value() == other.bool_value();
    case ValueType::kString:
      return string_value() == other.string_value();
    case ValueType::kDate:
      return date_value() == other.date_value();
    case ValueType::kDateTime:
      return datetime_value() == other.datetime_value();
    case ValueType::kNode:
      return node_id() == other.node_id();
    case ValueType::kRel:
      return rel_id() == other.rel_id();
    case ValueType::kList: {
      const List& a = list_value();
      const List& b = other.list_value();
      // No shared-payload shortcut: a list containing NaN must compare
      // unequal to itself, exactly as the element-wise walk reports.
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
    case ValueType::kMap: {
      const Map& a = map_value();
      const Map& b = other.map_value();
      if (a.size() != b.size()) return false;
      auto ia = a.begin();
      auto ib = b.begin();
      for (; ia != a.end(); ++ia, ++ib) {
        if (ia->first != ib->first || !ia->second.Equals(ib->second)) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

int Value::TotalCompare(const Value& other) const {
  const ValueType ta = type(), tb = other.type();
  const int ra = TypeRank(ta), rb = TypeRank(tb);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ta) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return static_cast<int>(bool_value()) -
             static_cast<int>(other.bool_value());
    case ValueType::kInt:
    case ValueType::kDouble:
      if (is_int() && other.is_int()) {
        if (int_value() < other.int_value()) return -1;
        if (int_value() > other.int_value()) return 1;
        return 0;
      }
      return CompareDoubles(as_double(), other.as_double());
    case ValueType::kString:
      return string_value().compare(other.string_value());
    case ValueType::kDate:
      return CompareDoubles(static_cast<double>(date_value().days),
                            static_cast<double>(other.date_value().days));
    case ValueType::kDateTime:
      return CompareDoubles(static_cast<double>(datetime_value().micros),
                            static_cast<double>(other.datetime_value().micros));
    case ValueType::kNode:
      if (node_id().value < other.node_id().value) return -1;
      if (node_id().value > other.node_id().value) return 1;
      return 0;
    case ValueType::kRel:
      if (rel_id().value < other.rel_id().value) return -1;
      if (rel_id().value > other.rel_id().value) return 1;
      return 0;
    case ValueType::kList: {
      const List& a = list_value();
      const List& b = other.list_value();
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a[i].TotalCompare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() < b.size()) return -1;
      if (a.size() > b.size()) return 1;
      return 0;
    }
    case ValueType::kMap: {
      const Map& a = map_value();
      const Map& b = other.map_value();
      auto ia = a.begin();
      auto ib = b.begin();
      for (; ia != a.end() && ib != b.end(); ++ia, ++ib) {
        const int kc = ia->first.compare(ib->first);
        if (kc != 0) return kc;
        const int vc = ia->second.TotalCompare(ib->second);
        if (vc != 0) return vc;
      }
      if (a.size() < b.size()) return -1;
      if (a.size() > b.size()) return 1;
      return 0;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::kNull:
      os << "null";
      break;
    case ValueType::kBool:
      os << (bool_value() ? "true" : "false");
      break;
    case ValueType::kInt:
      os << int_value();
      break;
    case ValueType::kDouble: {
      const double d = double_value();
      if (std::isfinite(d) && d == std::floor(d) &&
          std::abs(d) < 1e15) {
        os << static_cast<int64_t>(d) << ".0";
      } else {
        os << d;
      }
      break;
    }
    case ValueType::kString:
      os << '\'' << string_value() << '\'';
      break;
    case ValueType::kDate:
      os << "date(" << date_value().days << ")";
      break;
    case ValueType::kDateTime:
      os << "datetime(" << datetime_value().micros << ")";
      break;
    case ValueType::kNode:
      os << "#n" << node_id().value;
      break;
    case ValueType::kRel:
      os << "#r" << rel_id().value;
      break;
    case ValueType::kList: {
      os << '[';
      bool first = true;
      for (const Value& v : list_value()) {
        if (!first) os << ", ";
        first = false;
        os << v.ToString();
      }
      os << ']';
      break;
    }
    case ValueType::kMap: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : map_value()) {
        if (!first) os << ", ";
        first = false;
        os << k << ": " << v.ToString();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

bool ValueVectorLess::operator()(const std::vector<Value>& a,
                                 const std::vector<Value>& b) const {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].TotalCompare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace pgt
