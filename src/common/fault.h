#ifndef PGTRIGGERS_COMMON_FAULT_H_
#define PGTRIGGERS_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace pgt {

/// Unified fault-injection registry (docs/robustness.md).
///
/// Production code declares *fault points* — named sites on failure-prone
/// paths (WAL append/fsync, snapshot publication, async enqueue/worker/
/// apply, transaction commit) — by calling `Hit("wal.sync")` and
/// propagating a non-OK result exactly as it would a real IO error. Tests
/// arm points with `FaultSpec`s: fail the Nth hit, fail each hit with a
/// probability (seeded, deterministic), fail a scripted subset, or cap a
/// byte budget for short writes.
///
/// Cost when disarmed: one relaxed atomic load and a predicted-not-taken
/// branch — no lock, no map lookup, no string hashing. Arming anything
/// flips the `armed_points_` counter, and only then does `Hit` take the
/// slow path. This keeps the registry permanently compiled into release
/// builds (the chaos suite runs against the production binary, not a
/// special build) without taxing the hot paths it guards.
///
/// Thread contract: `Hit` is safe from any thread (the slow path locks);
/// Arm/Disarm/DisarmAll are safe from any thread but are intended for the
/// test driver between or around workload phases.
class FaultRegistry {
 public:
  /// How an armed point decides whether a given hit fails.
  struct FaultSpec {
    /// Status the failing hit returns. `message` defaults to
    /// "injected fault at <point>" when empty.
    StatusCode code = StatusCode::kIoError;
    std::string message;

    /// Nth-hit mode: skip the first `skip_first` hits, then fail the next
    /// `trigger_count` hits (0 = this mode disabled). Counted per point,
    /// reset by Arm.
    uint64_t skip_first = 0;
    uint64_t trigger_count = 0;

    /// Probabilistic mode: each hit fails with probability `probability`
    /// (0.0 = disabled). Deterministic per (seed, hit index) — replaying
    /// the same seed against the same workload fails the same hits.
    double probability = 0.0;
    uint64_t seed = 0;

    /// Unit-budget mode: hits carry a unit count (e.g. bytes for a WAL
    /// append); the point accepts units until the budget is exhausted,
    /// then fails. A hit that straddles the boundary reports the accepted
    /// prefix via Hit's `accepted_units` (short-write semantics).
    /// -1 = disabled.
    int64_t unit_budget = -1;

    /// Scripted mode: full control — called with the 0-based hit index,
    /// returns true to fail that hit. Checked after the other modes.
    std::function<bool(uint64_t hit_index)> script;
  };

  /// The process-wide registry used by engine fault points.
  static FaultRegistry& Global();

  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Production-side check. Returns OK (and counts the hit) unless `point`
  /// is armed and the spec elects this hit to fail. `units` feeds the
  /// unit-budget mode (default 1); when a budget boundary splits the hit,
  /// `accepted_units` (if non-null) receives how many units fit before
  /// the failure — callers implementing short writes persist that prefix.
  Status Hit(std::string_view point, uint64_t units = 1,
             uint64_t* accepted_units = nullptr) {
    if (armed_points_.load(std::memory_order_relaxed) == 0) {
      return Status::OK();  // disarmed fast path: one predicted branch
    }
    return HitSlow(point, units, accepted_units);
  }

  /// True when any point is armed (cheap; used to skip per-hit setup).
  bool AnyArmed() const {
    return armed_points_.load(std::memory_order_relaxed) != 0;
  }

  /// Arms `point` with `spec`, replacing any previous arming and resetting
  /// the point's hit/unit counters.
  void Arm(std::string_view point, FaultSpec spec);

  /// Convenience: fail the Nth future hit (1 = the next one) once.
  void ArmNthHit(std::string_view point, uint64_t nth,
                 StatusCode code = StatusCode::kIoError,
                 std::string message = "");

  /// Convenience: fail each future hit with probability `p` (seeded).
  void ArmProbabilistic(std::string_view point, double p, uint64_t seed,
                        StatusCode code = StatusCode::kIoError,
                        std::string message = "");

  void Disarm(std::string_view point);
  void DisarmAll();

  /// Total hits observed at `point` since it was first armed (armed
  /// points only — disarmed points are not counted, by design: counting
  /// would put a lock on the fast path).
  uint64_t HitCount(std::string_view point) const;
  /// Total injected failures at `point` since it was first armed.
  uint64_t FailureCount(std::string_view point) const;

  /// Names of currently armed points (diagnostics / SHOW HEALTH).
  std::vector<std::string> ArmedPoints() const;

 private:
  struct PointState {
    FaultSpec spec;
    bool armed = false;
    uint64_t hits = 0;      // hits observed while armed
    uint64_t failures = 0;  // injected failures
    int64_t units_seen = 0;
  };

  Status HitSlow(std::string_view point, uint64_t units,
                 uint64_t* accepted_units);

  std::atomic<uint64_t> armed_points_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
};

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_FAULT_H_
