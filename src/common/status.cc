#include "src/common/status.h"

namespace pgt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kCascadeLimitExceeded:
      return "CascadeLimitExceeded";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kBudgetExceeded:
      return "BudgetExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace pgt
