#ifndef PGTRIGGERS_COMMON_INTERNER_H_
#define PGTRIGGERS_COMMON_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"

namespace pgt {

/// Bidirectional string <-> dense-id dictionary used for labels,
/// relationship types, and property keys. Ids are assigned in first-seen
/// order starting at 0 and are stable for the lifetime of the store.
class StringInterner {
 public:
  /// Returns the id for `s`, interning it if unseen.
  uint32_t Intern(std::string_view s);

  /// Returns the id for `s` if already interned.
  std::optional<uint32_t> Lookup(std::string_view s) const;

  /// Returns the string for `id`. Precondition: id < size().
  const std::string& name(uint32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_INTERNER_H_
