#include "src/common/fault.h"

#include <utility>

namespace pgt {

namespace {

/// SplitMix64 finalizer: turns (seed, hit index) into a uniform 64-bit
/// hash so probabilistic arming is deterministic per seed — replaying a
/// chaos seed fails exactly the same hits.
uint64_t MixHit(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Status MakeFault(const FaultRegistry::FaultSpec& spec,
                 std::string_view point) {
  std::string msg = spec.message.empty()
                        ? "injected fault at " + std::string(point)
                        : spec.message;
  return Status(spec.code, std::move(msg));
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* g = new FaultRegistry();  // never destroyed
  return *g;
}

Status FaultRegistry::HitSlow(std::string_view point, uint64_t units,
                              uint64_t* accepted_units) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  if (it == points_.end() || !it->second.armed) return Status::OK();
  PointState& st = it->second;
  const uint64_t index = st.hits++;
  const FaultSpec& spec = st.spec;

  bool fail = false;
  // Nth-hit window.
  if (spec.trigger_count > 0 && index >= spec.skip_first &&
      index < spec.skip_first + spec.trigger_count) {
    fail = true;
  }
  // Probabilistic (seeded, per-hit deterministic).
  if (!fail && spec.probability > 0.0) {
    const double u = static_cast<double>(MixHit(spec.seed, index) >> 11) *
                     (1.0 / 9007199254740992.0);  // [0,1) from 53 bits
    fail = u < spec.probability;
  }
  // Unit budget (short-write semantics).
  if (!fail && spec.unit_budget >= 0) {
    const int64_t room = spec.unit_budget - st.units_seen;
    st.units_seen += static_cast<int64_t>(units);
    if (room < static_cast<int64_t>(units)) {
      if (accepted_units != nullptr) {
        *accepted_units = room > 0 ? static_cast<uint64_t>(room) : 0;
      }
      ++st.failures;
      return MakeFault(spec, point);
    }
  }
  // Scripted.
  if (!fail && spec.script && spec.script(index)) fail = true;

  if (!fail) return Status::OK();
  if (accepted_units != nullptr) *accepted_units = 0;
  ++st.failures;
  return MakeFault(spec, point);
}

void FaultRegistry::Arm(std::string_view point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& st = points_[std::string(point)];
  if (!st.armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  st.armed = true;
  st.spec = std::move(spec);
  st.hits = 0;
  st.failures = 0;
  st.units_seen = 0;
}

void FaultRegistry::ArmNthHit(std::string_view point, uint64_t nth,
                              StatusCode code, std::string message) {
  FaultSpec spec;
  spec.code = code;
  spec.message = std::move(message);
  spec.skip_first = nth > 0 ? nth - 1 : 0;
  spec.trigger_count = 1;
  Arm(point, std::move(spec));
}

void FaultRegistry::ArmProbabilistic(std::string_view point, double p,
                                     uint64_t seed, StatusCode code,
                                     std::string message) {
  FaultSpec spec;
  spec.code = code;
  spec.message = std::move(message);
  spec.probability = p;
  spec.seed = seed;
  Arm(point, std::move(spec));
}

void FaultRegistry::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : points_) {
    if (st.armed) {
      st.armed = false;
      armed_points_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t FaultRegistry::HitCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::FailureCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.failures;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, st] : points_) {
    if (st.armed) out.push_back(name);
  }
  return out;
}

}  // namespace pgt
