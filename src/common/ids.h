#ifndef PGTRIGGERS_COMMON_IDS_H_
#define PGTRIGGERS_COMMON_IDS_H_

#include <cstdint>
#include <functional>

namespace pgt {

/// Interned symbol identifiers. Labels, relationship types, and property
/// keys are interned into dense uint32 ids by the GraphStore dictionaries.
using LabelId = uint32_t;
using RelTypeId = uint32_t;
using PropKeyId = uint32_t;

/// Sentinel for "no symbol".
inline constexpr uint32_t kInvalidSymbol = 0xFFFFFFFFu;

/// Strongly-typed node identifier. Ids are allocated densely and never
/// reused after deletion (tombstoning), which keeps transition variables and
/// undo logs unambiguous across a transaction's lifetime.
struct NodeId {
  uint64_t value = 0;
  bool operator==(const NodeId&) const = default;
  auto operator<=>(const NodeId&) const = default;
};

/// Strongly-typed relationship identifier; same allocation discipline as
/// NodeId.
struct RelId {
  uint64_t value = 0;
  bool operator==(const RelId&) const = default;
  auto operator<=>(const RelId&) const = default;
};

}  // namespace pgt

template <>
struct std::hash<pgt::NodeId> {
  size_t operator()(const pgt::NodeId& id) const noexcept {
    return std::hash<uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<pgt::RelId> {
  size_t operator()(const pgt::RelId& id) const noexcept {
    return std::hash<uint64_t>{}(id.value ^ 0x9E3779B97F4A7C15ull);
  }
};

#endif  // PGTRIGGERS_COMMON_IDS_H_
