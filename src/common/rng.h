#ifndef PGTRIGGERS_COMMON_RNG_H_
#define PGTRIGGERS_COMMON_RNG_H_

#include <cstdint>

namespace pgt {

/// Deterministic 64-bit PRNG (SplitMix64). Used by the data generators and
/// workloads; seeded explicitly so every experiment is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_RNG_H_
