#ifndef PGTRIGGERS_COMMON_STR_UTIL_H_
#define PGTRIGGERS_COMMON_STR_UTIL_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace pgt {

/// Transparent string hash for heterogeneous unordered_map lookup: probe
/// with a string_view / const char* without materializing a std::string.
/// Pair with std::equal_to<>.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// ASCII-uppercased copy (for case-insensitive keyword handling).
std::string ToUpper(std::string_view s);

/// ASCII-lowercased copy.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Escapes single quotes and backslashes for embedding in a single-quoted
/// Cypher string literal.
std::string EscapeSingleQuoted(std::string_view s);

/// Indents every line of `text` by `spaces` spaces (used by the code
/// generators to pretty-print APOC / Memgraph trigger bodies).
std::string Indent(std::string_view text, int spaces);

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_STR_UTIL_H_
