#ifndef PGTRIGGERS_COMMON_VALUE_H_
#define PGTRIGGERS_COMMON_VALUE_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"

namespace pgt {

/// Calendar date, stored as days since the Unix epoch.
struct Date {
  int64_t days = 0;
  bool operator==(const Date&) const = default;
  auto operator<=>(const Date&) const = default;
};

/// Timestamp, stored as microseconds on the engine's logical clock (the
/// engine uses a deterministic logical clock so that examples and tests are
/// reproducible; see LogicalClock in src/common/clock.h).
struct DateTime {
  int64_t micros = 0;
  bool operator==(const DateTime&) const = default;
  auto operator<=>(const DateTime&) const = default;
};

/// Runtime type tag of a Value.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kList,
  kMap,
  kDate,
  kDateTime,
  kNode,  ///< reference to a node in the graph store
  kRel,   ///< reference to a relationship in the graph store
};

/// Returns a stable name ("NULL", "INTEGER", ...) for a value type.
const char* ValueTypeName(ValueType t);

/// Dynamic value: the single value model shared by node/relationship
/// properties, Cypher expression evaluation, query result rows, and trigger
/// transition variables.
///
/// Representation (docs/values.md): a 24-byte tagged union — 16-byte
/// payload + tag + inline-string length. Scalars (bool/int/double/date/
/// datetime/node/rel) live directly in the payload; strings up to
/// kSsoCapacity bytes are stored inline (the common case for labels and
/// status-sized properties); longer strings, lists, and maps fall back to a
/// shared-ownership heap block, so copying any Value is at most a reference
/// count bump — never a deep copy (mutation goes through the builders).
/// Node/relationship values store only the id; the evaluation context
/// resolves them against the store (including "ghost" records of deleted
/// items so that OLD transition variables remain readable).
class Value {
 public:
  using List = std::vector<Value>;
  // Ordered => deterministic print; transparent comparator => lookups from
  // string_view keys (e.g. `map[other.string_value()]`) skip the temporary.
  using Map = std::map<std::string, Value, std::less<>>;

  /// Longest string stored inline (no heap). Chosen to exactly reuse the
  /// payload bytes the shared_ptr fallback occupies, keeping
  /// sizeof(Value) <= 24 (asserted in tests/test_value_rep.cc).
  static constexpr size_t kSsoCapacity = 16;

  /// Default-constructed Value is NULL.
  Value() = default;

  Value(const Value& other) { CopyFrom(other); }
  Value(Value&& other) noexcept { MoveFrom(other); }
  // Assignment stages through a temporary so assigning a Value from within
  // its own payload (v = v.list_value()[i]) cannot free the source before
  // it is read — Destroy() may drop the last reference to the container
  // the right-hand side lives in.
  Value& operator=(const Value& other) {
    if (this != &other) {
      Value tmp(other);
      Destroy();
      MoveFrom(tmp);
    }
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this != &other) {
      Value tmp(std::move(other));
      Destroy();
      MoveFrom(tmp);
    }
    return *this;
  }
  ~Value() { Destroy(); }

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v(Tag::kBool);
    v.p_.b = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v(Tag::kInt);
    v.p_.i = i;
    return v;
  }
  static Value Double(double d) {
    Value v(Tag::kDouble);
    v.p_.d = d;
    return v;
  }
  static Value String(std::string_view s) {
    Value v;
    v.AssignString(s);
    return v;
  }
  static Value String(const std::string& s) {
    return String(std::string_view(s));
  }
  static Value String(const char* s) { return String(std::string_view(s)); }
  static Value MakeList(List items);
  static Value MakeMap(Map items);
  static Value MakeDate(int64_t days) {
    Value v(Tag::kDate);
    v.p_.date = pgt::Date{days};
    return v;
  }
  static Value MakeDateTime(int64_t micros) {
    Value v(Tag::kDateTime);
    v.p_.dt = pgt::DateTime{micros};
    return v;
  }
  static Value Node(NodeId id) {
    Value v(Tag::kNode);
    v.p_.node = id;
    return v;
  }
  static Value Rel(RelId id) {
    Value v(Tag::kRel);
    v.p_.rel = id;
    return v;
  }

  ValueType type() const {
    switch (tag_) {
      case Tag::kNull:
        return ValueType::kNull;
      case Tag::kBool:
        return ValueType::kBool;
      case Tag::kInt:
        return ValueType::kInt;
      case Tag::kDouble:
        return ValueType::kDouble;
      case Tag::kSsoString:
      case Tag::kHeapString:
        return ValueType::kString;
      case Tag::kList:
        return ValueType::kList;
      case Tag::kMap:
        return ValueType::kMap;
      case Tag::kDate:
        return ValueType::kDate;
      case Tag::kDateTime:
        return ValueType::kDateTime;
      case Tag::kNode:
        return ValueType::kNode;
      case Tag::kRel:
        return ValueType::kRel;
    }
    return ValueType::kNull;
  }
  const char* type_name() const { return ValueTypeName(type()); }

  bool is_null() const { return tag_ == Tag::kNull; }
  bool is_bool() const { return tag_ == Tag::kBool; }
  bool is_int() const { return tag_ == Tag::kInt; }
  bool is_double() const { return tag_ == Tag::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const {
    return tag_ == Tag::kSsoString || tag_ == Tag::kHeapString;
  }
  bool is_list() const { return tag_ == Tag::kList; }
  bool is_map() const { return tag_ == Tag::kMap; }
  bool is_node() const { return tag_ == Tag::kNode; }
  bool is_rel() const { return tag_ == Tag::kRel; }

  /// Unchecked accessors; caller must verify the type first.
  bool bool_value() const { return p_.b; }
  int64_t int_value() const { return p_.i; }
  double double_value() const { return p_.d; }
  /// The string payload. Views into an SSO value are invalidated by
  /// assigning to / destroying that Value (like a std::string's buffer);
  /// views into a heap value stay valid while any copy is alive.
  std::string_view string_value() const {
    return tag_ == Tag::kSsoString ? std::string_view(p_.sso, sso_len_)
                                   : std::string_view(*p_.str);
  }
  const List& list_value() const { return *p_.list; }
  const Map& map_value() const { return *p_.map; }
  pgt::Date date_value() const { return p_.date; }
  pgt::DateTime datetime_value() const { return p_.dt; }
  NodeId node_id() const { return p_.node; }
  RelId rel_id() const { return p_.rel; }

  /// Numeric value widened to double (valid for kInt/kDouble).
  double as_double() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// Structural equality with numeric coercion (1 = 1.0 is true), as in
  /// Cypher's `=` on non-null operands. NULL = NULL is *true* here; the
  /// expression evaluator implements SQL/Cypher ternary logic on top.
  bool Equals(const Value& other) const;

  /// Total order over all values, used for ORDER BY, DISTINCT and grouping:
  /// NULL sorts last; values of different types order by type tag; numerics
  /// compare across int/double. Returns <0, 0, >0.
  int TotalCompare(const Value& other) const;

  /// Rendering close to Cypher literals: strings quoted, lists/maps
  /// bracketed, nodes as `#n<id>`, relationships as `#r<id>`.
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  using StrPtr = std::shared_ptr<const std::string>;
  using ListPtr = std::shared_ptr<const List>;
  using MapPtr = std::shared_ptr<const Map>;

  enum class Tag : uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kDouble,
    kSsoString,   // string inline in p_.sso, length in sso_len_
    kHeapString,  // shared heap string (> kSsoCapacity bytes)
    kList,
    kMap,
    kDate,
    kDateTime,
    kNode,
    kRel,
  };

  union Payload {
    bool b;
    int64_t i;
    double d;
    pgt::Date date;
    pgt::DateTime dt;
    NodeId node;
    RelId rel;
    char sso[kSsoCapacity];
    StrPtr str;
    ListPtr list;
    MapPtr map;

    // Lifetime of the active member is managed by Value (Destroy/CopyFrom/
    // MoveFrom switch on the tag). Zero-filled so the raw-byte copy of
    // trivial payloads never reads indeterminate bytes.
    Payload() { std::memset(this, 0, sizeof(*this)); }
    ~Payload() {}
  };

  explicit Value(Tag tag) : tag_(tag) {}

  void AssignString(std::string_view s) {
    if (s.size() <= kSsoCapacity) {
      std::memcpy(p_.sso, s.data(), s.size());
      sso_len_ = static_cast<uint8_t>(s.size());
      tag_ = Tag::kSsoString;
    } else {
      new (&p_.str) StrPtr(std::make_shared<const std::string>(s));
      tag_ = Tag::kHeapString;
    }
  }

  void CopyFrom(const Value& other) {
    switch (other.tag_) {
      case Tag::kHeapString:
        new (&p_.str) StrPtr(other.p_.str);
        break;
      case Tag::kList:
        new (&p_.list) ListPtr(other.p_.list);
        break;
      case Tag::kMap:
        new (&p_.map) MapPtr(other.p_.map);
        break;
      default:
        // Trivial payloads (including the inline string bytes).
        std::memcpy(&p_, &other.p_, sizeof(p_));
        break;
    }
    tag_ = other.tag_;
    sso_len_ = other.sso_len_;
  }

  void MoveFrom(Value& other) noexcept {
    switch (other.tag_) {
      case Tag::kHeapString:
        new (&p_.str) StrPtr(std::move(other.p_.str));
        other.p_.str.~StrPtr();
        break;
      case Tag::kList:
        new (&p_.list) ListPtr(std::move(other.p_.list));
        other.p_.list.~ListPtr();
        break;
      case Tag::kMap:
        new (&p_.map) MapPtr(std::move(other.p_.map));
        other.p_.map.~MapPtr();
        break;
      default:
        std::memcpy(&p_, &other.p_, sizeof(p_));
        break;
    }
    tag_ = other.tag_;
    sso_len_ = other.sso_len_;
    other.tag_ = Tag::kNull;
  }

  void Destroy() {
    switch (tag_) {
      case Tag::kHeapString:
        p_.str.~StrPtr();
        break;
      case Tag::kList:
        p_.list.~ListPtr();
        break;
      case Tag::kMap:
        p_.map.~MapPtr();
        break;
      default:
        break;
    }
    tag_ = Tag::kNull;
  }

  Payload p_;
  Tag tag_ = Tag::kNull;
  uint8_t sso_len_ = 0;
};

/// Comparator usable as the ordering of std::map / std::sort over Values.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.TotalCompare(b) < 0;
  }
};

/// Lexicographic total order over value tuples (grouping keys).
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_VALUE_H_
