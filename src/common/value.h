#ifndef PGTRIGGERS_COMMON_VALUE_H_
#define PGTRIGGERS_COMMON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/ids.h"

namespace pgt {

/// Calendar date, stored as days since the Unix epoch.
struct Date {
  int64_t days = 0;
  bool operator==(const Date&) const = default;
  auto operator<=>(const Date&) const = default;
};

/// Timestamp, stored as microseconds on the engine's logical clock (the
/// engine uses a deterministic logical clock so that examples and tests are
/// reproducible; see LogicalClock in src/common/clock.h).
struct DateTime {
  int64_t micros = 0;
  bool operator==(const DateTime&) const = default;
  auto operator<=>(const DateTime&) const = default;
};

/// Runtime type tag of a Value.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kList,
  kMap,
  kDate,
  kDateTime,
  kNode,  ///< reference to a node in the graph store
  kRel,   ///< reference to a relationship in the graph store
};

/// Returns a stable name ("NULL", "INTEGER", ...) for a value type.
const char* ValueTypeName(ValueType t);

/// Dynamic value: the single value model shared by node/relationship
/// properties, Cypher expression evaluation, query result rows, and trigger
/// transition variables.
///
/// Lists and maps use shared ownership (copy-on-write is not needed at our
/// scale; copies share the payload, mutation goes through the builders).
/// Node/relationship values store only the id; the evaluation context
/// resolves them against the store (including "ghost" records of deleted
/// items so that OLD transition variables remain readable).
class Value {
 public:
  using List = std::vector<Value>;
  using Map = std::map<std::string, Value>;  // ordered => deterministic print

  /// Default-constructed Value is NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }
  static Value MakeList(List items);
  static Value MakeMap(Map items);
  static Value MakeDate(int64_t days) { return Value(Rep(Date{days})); }
  static Value MakeDateTime(int64_t micros) {
    return Value(Rep(DateTime{micros}));
  }
  static Value Node(NodeId id) { return Value(Rep(id)); }
  static Value Rel(RelId id) { return Value(Rep(id)); }

  ValueType type() const;
  const char* type_name() const { return ValueTypeName(type()); }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_list() const { return type() == ValueType::kList; }
  bool is_map() const { return type() == ValueType::kMap; }
  bool is_node() const { return type() == ValueType::kNode; }
  bool is_rel() const { return type() == ValueType::kRel; }

  /// Unchecked accessors; caller must verify the type first.
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const {
    return std::get<std::string>(rep_);
  }
  const List& list_value() const { return *std::get<ListPtr>(rep_); }
  const Map& map_value() const { return *std::get<MapPtr>(rep_); }
  Date date_value() const { return std::get<Date>(rep_); }
  DateTime datetime_value() const { return std::get<DateTime>(rep_); }
  NodeId node_id() const { return std::get<NodeId>(rep_); }
  RelId rel_id() const { return std::get<RelId>(rep_); }

  /// Numeric value widened to double (valid for kInt/kDouble).
  double as_double() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// Structural equality with numeric coercion (1 = 1.0 is true), as in
  /// Cypher's `=` on non-null operands. NULL = NULL is *true* here; the
  /// expression evaluator implements SQL/Cypher ternary logic on top.
  bool Equals(const Value& other) const;

  /// Total order over all values, used for ORDER BY, DISTINCT and grouping:
  /// NULL sorts last; values of different types order by type tag; numerics
  /// compare across int/double. Returns <0, 0, >0.
  int TotalCompare(const Value& other) const;

  /// Rendering close to Cypher literals: strings quoted, lists/maps
  /// bracketed, nodes as `#n<id>`, relationships as `#r<id>`.
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  using ListPtr = std::shared_ptr<const List>;
  using MapPtr = std::shared_ptr<const Map>;
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           ListPtr, MapPtr, Date, DateTime, NodeId, RelId>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// Comparator usable as the ordering of std::map / std::sort over Values.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.TotalCompare(b) < 0;
  }
};

/// Lexicographic total order over value tuples (grouping keys).
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

}  // namespace pgt

#endif  // PGTRIGGERS_COMMON_VALUE_H_
