#include "src/termination/triggering_graph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

namespace pgt::termination {

namespace {

constexpr const char* kWildcard = "*";

/// Variable knowledge gathered from the patterns of a trigger definition.
struct VarInfo {
  std::set<std::string> node_labels;  // labels seen on node patterns
  bool is_node = false;
  bool is_rel = false;
  /// First bound by a CREATE pattern: the label set is exact (creation
  /// labels). MATCH/MERGE-bound node variables may designate nodes that
  /// carry labels beyond the matched ones, and the engine emits event keys
  /// for *every* label of the affected node — such targets must widen.
  bool created = false;
  std::set<std::string> rel_types;
};

using VarMap = std::map<std::string, VarInfo>;

void ScanPattern(const cypher::Pattern& pattern, bool create_bound,
                 VarMap* vars) {
  auto note_node = [&](const cypher::NodePattern& np) {
    if (np.var.empty()) return;
    const bool is_new = vars->count(np.var) == 0;
    VarInfo& info = (*vars)[np.var];
    info.is_node = true;
    if (is_new && create_bound) info.created = true;
    for (const std::string& l : np.labels) info.node_labels.insert(l);
  };
  for (const cypher::PatternPart& part : pattern.parts) {
    note_node(part.first);
    for (const auto& [rel, node] : part.chain) {
      if (!rel.var.empty()) {
        VarInfo& info = (*vars)[rel.var];
        info.is_rel = true;
        for (const std::string& t : rel.types) info.rel_types.insert(t);
      }
      note_node(node);
    }
  }
}

void ScanClausesForVars(const std::vector<cypher::ClausePtr>& clauses,
                        VarMap* vars) {
  for (const cypher::ClausePtr& c : clauses) {
    switch (c->kind) {
      case cypher::Clause::Kind::kMatch:
      case cypher::Clause::Kind::kMerge:
        // MERGE may bind an existing item — labels are a lower bound only.
        ScanPattern(c->pattern, /*create_bound=*/false, vars);
        break;
      case cypher::Clause::Kind::kCreate:
        ScanPattern(c->pattern, /*create_bound=*/true, vars);
        break;
      case cypher::Clause::Kind::kForeach:
        ScanClausesForVars(c->foreach_body, vars);
        break;
      default:
        break;
    }
  }
}

/// Labels attributable to the base expression of a SET/REMOVE/DELETE
/// target; wildcard when unknown. Node variables bound by MATCH/MERGE (or
/// transition variables) widen with "*": the designated node may carry
/// labels beyond the matched ones, and a write raises event keys for every
/// label it carries. Relationship types never widen (a rel has exactly one
/// immutable type), and CREATE-bound nodes keep their exact creation
/// labels.
std::set<std::string> LabelsOfTarget(const cypher::Expr& e,
                                     const VarMap& vars, bool* is_node,
                                     bool* is_rel) {
  *is_node = false;
  *is_rel = false;
  if (e.kind == cypher::Expr::Kind::kVar) {
    auto it = vars.find(e.name);
    if (it != vars.end()) {
      *is_node = it->second.is_node;
      *is_rel = it->second.is_rel;
      if (it->second.is_node && !it->second.node_labels.empty()) {
        std::set<std::string> labels = it->second.node_labels;
        if (!it->second.created) labels.insert(kWildcard);
        return labels;
      }
      if (it->second.is_rel && !it->second.rel_types.empty()) {
        return it->second.rel_types;
      }
    }
  }
  return {kWildcard};
}

void CollectWrites(const std::vector<cypher::ClausePtr>& clauses,
                   const VarMap& vars, WriteSignature* sig) {
  auto collect_set_items = [&](const std::vector<cypher::SetItem>& items) {
    for (const cypher::SetItem& s : items) {
      if (s.kind == cypher::SetItem::Kind::kLabels) {
        for (const std::string& l : s.labels) sig->set_labels.insert(l);
        continue;
      }
      if (s.kind == cypher::SetItem::Kind::kMergeMap) {
        // n += {map}: property keys are dynamic — widen to wildcard.
        sig->set_node_props.insert({kWildcard, kWildcard});
        sig->set_rel_props.insert({kWildcard, kWildcard});
        continue;
      }
      bool is_node = false, is_rel = false;
      std::set<std::string> labels =
          LabelsOfTarget(*s.target, vars, &is_node, &is_rel);
      for (const std::string& l : labels) {
        if (is_rel && !is_node) {
          sig->set_rel_props.insert({l, s.prop});
        } else if (is_node && !is_rel) {
          sig->set_node_props.insert({l, s.prop});
        } else {
          sig->set_node_props.insert({l, s.prop});
          sig->set_rel_props.insert({l, s.prop});
        }
      }
    }
  };
  for (const cypher::ClausePtr& c : clauses) {
    switch (c->kind) {
      case cypher::Clause::Kind::kCreate:
      case cypher::Clause::Kind::kMerge: {
        for (const cypher::PatternPart& part : c->pattern.parts) {
          auto note = [&](const cypher::NodePattern& np) {
            // A bound variable is a reused node, not a creation.
            if (!np.labels.empty()) {
              for (const std::string& l : np.labels) {
                sig->created_node_labels.insert(l);
              }
            } else if (np.var.empty()) {
              sig->created_node_labels.insert(kWildcard);
            }
          };
          if (!(part.first.var.empty() && part.first.labels.empty())) {
            // Heuristic: nodes with labels or anonymous nodes are created.
            if (!part.first.labels.empty() ||
                vars.count(part.first.var) == 0) {
              note(part.first);
            }
          }
          for (const auto& [rel, node] : part.chain) {
            for (const std::string& t : rel.types) {
              sig->created_rel_types.insert(t);
            }
            if (!node.labels.empty() || node.var.empty() ||
                vars.count(node.var) == 0) {
              note(node);
            }
          }
        }
        collect_set_items(c->on_create);
        collect_set_items(c->on_match);
        break;
      }
      case cypher::Clause::Kind::kDelete: {
        for (const cypher::ExprPtr& e : c->delete_exprs) {
          bool is_node = false, is_rel = false;
          std::set<std::string> labels =
              LabelsOfTarget(*e, vars, &is_node, &is_rel);
          for (const std::string& l : labels) {
            if (is_rel && !is_node) {
              sig->deleted_rel_types.insert(l);
            } else if (is_node && !is_rel) {
              sig->deleted_node_labels.insert(l);
              if (c->detach) sig->deleted_rel_types.insert(kWildcard);
            } else {
              sig->deleted_node_labels.insert(l);
              sig->deleted_rel_types.insert(l == kWildcard ? kWildcard : l);
            }
          }
        }
        break;
      }
      case cypher::Clause::Kind::kSet:
        collect_set_items(c->set_items);
        break;
      case cypher::Clause::Kind::kRemove: {
        for (const cypher::RemoveItem& r : c->remove_items) {
          if (r.kind == cypher::RemoveItem::Kind::kLabels) {
            for (const std::string& l : r.labels) {
              sig->removed_labels.insert(l);
            }
            continue;
          }
          bool is_node = false, is_rel = false;
          std::set<std::string> labels =
              LabelsOfTarget(*r.target, vars, &is_node, &is_rel);
          for (const std::string& l : labels) {
            if (is_rel && !is_node) {
              sig->removed_rel_props.insert({l, r.prop});
            } else if (is_node && !is_rel) {
              sig->removed_node_props.insert({l, r.prop});
            } else {
              sig->removed_node_props.insert({l, r.prop});
              sig->removed_rel_props.insert({l, r.prop});
            }
          }
        }
        break;
      }
      case cypher::Clause::Kind::kForeach: {
        // The element variable shadows any outer binding and may hold an
        // arbitrary node/rel (e.g. collected lists): reset it to unknown so
        // writes through it widen instead of inheriting outer labels.
        VarMap inner = vars;
        if (!c->foreach_var.empty()) inner[c->foreach_var] = VarInfo{};
        CollectWrites(c->foreach_body, inner, sig);
        break;
      }
      default:
        break;
    }
  }
}

bool MatchesLabel(const std::set<std::string>& labels,
                  const std::string& want) {
  return labels.count(want) > 0 || labels.count(kWildcard) > 0;
}

bool MatchesProp(const std::set<std::pair<std::string, std::string>>& props,
                 const std::string& label, const std::string& prop) {
  for (const auto& [l, p] : props) {
    if (p != prop && p != kWildcard) continue;
    if (l == label || l == kWildcard) return true;
  }
  return false;
}

}  // namespace

std::string WriteSignature::ToString() const {
  std::ostringstream os;
  auto emit_set = [&](const char* tag, const std::set<std::string>& s) {
    if (s.empty()) return;
    os << tag << "{";
    bool first = true;
    for (const std::string& v : s) {
      if (!first) os << ",";
      first = false;
      os << v;
    }
    os << "} ";
  };
  auto emit_props =
      [&](const char* tag,
          const std::set<std::pair<std::string, std::string>>& s) {
        if (s.empty()) return;
        os << tag << "{";
        bool first = true;
        for (const auto& [l, p] : s) {
          if (!first) os << ",";
          first = false;
          os << l << "." << p;
        }
        os << "} ";
      };
  emit_set("+node", created_node_labels);
  emit_set("+rel", created_rel_types);
  emit_set("-node", deleted_node_labels);
  emit_set("-rel", deleted_rel_types);
  emit_set("+label", set_labels);
  emit_set("-label", removed_labels);
  emit_props("set", set_node_props);
  emit_props("unset", removed_node_props);
  emit_props("rset", set_rel_props);
  emit_props("runset", removed_rel_props);
  return os.str();
}

WriteSignature ExtractWriteSignature(const TriggerDef& def) {
  VarMap vars;
  // Transition variables carry the target label by construction.
  if (def.item == ItemKind::kNode) {
    VarInfo info;
    info.is_node = true;
    info.node_labels.insert(def.label);
    vars[def.OldVarName()] = info;
    vars[def.NewVarName()] = info;
    vars[def.AliasFor(TransitionVar::kOld)] = info;
    vars[def.AliasFor(TransitionVar::kNew)] = info;
  } else {
    VarInfo info;
    info.is_rel = true;
    info.rel_types.insert(def.label);
    vars[def.OldVarName()] = info;
    vars[def.NewVarName()] = info;
    vars[def.AliasFor(TransitionVar::kOld)] = info;
    vars[def.AliasFor(TransitionVar::kNew)] = info;
  }
  ScanClausesForVars(def.when_query.clauses, &vars);
  ScanClausesForVars(def.statement.clauses, &vars);
  WriteSignature sig;
  CollectWrites(def.statement.clauses, vars, &sig);
  return sig;
}

bool MayTrigger(const WriteSignature& sig, const TriggerDef& def) {
  const bool is_node = def.item == ItemKind::kNode;
  switch (def.event) {
    case TriggerEvent::kCreate:
      return is_node ? MatchesLabel(sig.created_node_labels, def.label)
                     : MatchesLabel(sig.created_rel_types, def.label);
    case TriggerEvent::kDelete:
      return is_node ? MatchesLabel(sig.deleted_node_labels, def.label)
                     : MatchesLabel(sig.deleted_rel_types, def.label);
    case TriggerEvent::kSet:
      if (def.property.empty()) {
        // Label event (kMonitoredLabel semantics; see options.h).
        return MatchesLabel(sig.set_labels, def.label);
      }
      return is_node
                 ? MatchesProp(sig.set_node_props, def.label, def.property)
                 : MatchesProp(sig.set_rel_props, def.label, def.property);
    case TriggerEvent::kRemove:
      if (def.property.empty()) {
        return MatchesLabel(sig.removed_labels, def.label);
      }
      return is_node ? MatchesProp(sig.removed_node_props, def.label,
                                   def.property)
                     : MatchesProp(sig.removed_rel_props, def.label,
                                   def.property);
  }
  return false;
}

TriggeringGraph TriggeringGraph::Build(
    const std::vector<const TriggerDef*>& triggers) {
  TriggeringGraph g;
  g.triggers_ = triggers;
  g.edges_.resize(triggers.size());
  std::vector<WriteSignature> sigs;
  sigs.reserve(triggers.size());
  for (const TriggerDef* t : triggers) {
    sigs.push_back(ExtractWriteSignature(*t));
  }
  for (size_t i = 0; i < triggers.size(); ++i) {
    for (size_t j = 0; j < triggers.size(); ++j) {
      if (MayTrigger(sigs[i], *triggers[j])) {
        g.edges_[i].push_back(j);
      }
    }
  }
  return g;
}

std::vector<std::vector<std::string>> TriggeringGraph::FindCycles() const {
  // Tarjan SCC (iteratively sized graphs are tiny; recursion is fine).
  const size_t n = triggers_.size();
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  int counter = 0;
  std::vector<std::vector<std::string>> cycles;

  std::function<void(size_t)> strongconnect = [&](size_t v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    for (size_t w : edges_[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<size_t> component;
      while (true) {
        size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        component.push_back(w);
        if (w == v) break;
      }
      bool is_cycle = component.size() > 1;
      if (component.size() == 1) {
        const size_t u = component[0];
        is_cycle = std::find(edges_[u].begin(), edges_[u].end(), u) !=
                   edges_[u].end();
      }
      if (is_cycle) {
        std::vector<std::string> names;
        for (size_t u : component) names.push_back(triggers_[u]->name);
        std::sort(names.begin(), names.end());
        cycles.push_back(std::move(names));
      }
    }
  };
  for (size_t v = 0; v < n; ++v) {
    if (index[v] < 0) strongconnect(v);
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

TriggeringGraph::Report TriggeringGraph::Analyze() const {
  Report report;
  report.trigger_count = triggers_.size();
  for (const auto& adj : edges_) report.edge_count += adj.size();
  for (const std::vector<std::string>& cycle : FindCycles()) {
    bool all_guarded = true;
    for (const std::string& name : cycle) {
      for (const TriggerDef* t : triggers_) {
        if (t->name == name && !t->HasWhen()) {
          all_guarded = false;
        }
      }
    }
    report.cycles.emplace_back(cycle, all_guarded);
  }
  report.guaranteed_termination = report.cycles.empty();
  return report;
}

std::string TriggeringGraph::Report::ToString() const {
  std::ostringstream os;
  os << "triggering graph: " << trigger_count << " trigger(s), "
     << edge_count << " edge(s)\n";
  if (guaranteed_termination) {
    os << "acyclic: every cascade terminates\n";
    return os.str();
  }
  for (const auto& [cycle, guarded] : cycles) {
    os << "cycle {";
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) os << ", ";
      os << cycle[i];
    }
    os << "} — " << (guarded ? "guarded (may converge; not proven)"
                             : "UNGUARDED (non-termination likely)")
       << "\n";
  }
  return os.str();
}

}  // namespace pgt::termination
