#ifndef PGTRIGGERS_TERMINATION_TRIGGERING_GRAPH_H_
#define PGTRIGGERS_TERMINATION_TRIGGERING_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "src/trigger/trigger_def.h"

namespace pgt::termination {

/// Conservative abstraction of what a trigger statement may do to the
/// graph, expressed as event patterns it can raise. "*" is the wildcard
/// label/property (the statement touches an item whose label set cannot be
/// inferred statically).
struct WriteSignature {
  std::set<std::string> created_node_labels;
  std::set<std::string> created_rel_types;
  std::set<std::string> deleted_node_labels;  // may contain "*"
  std::set<std::string> deleted_rel_types;    // may contain "*"
  std::set<std::string> set_labels;
  std::set<std::string> removed_labels;
  // (label-or-*, property) pairs
  std::set<std::pair<std::string, std::string>> set_node_props;
  std::set<std::pair<std::string, std::string>> removed_node_props;
  std::set<std::pair<std::string, std::string>> set_rel_props;
  std::set<std::pair<std::string, std::string>> removed_rel_props;

  std::string ToString() const;
};

/// Extracts a conservative write signature from a trigger action. Labels of
/// variables are inferred from the MATCH/CREATE patterns that bind them in
/// the same statement (and the WHEN pipeline); unknown targets widen to the
/// wildcard. MATCH/MERGE-bound and transition node variables additionally
/// widen with "*" — the designated node may carry labels beyond the matched
/// ones and the engine raises event keys for every label of the affected
/// node — while CREATE-bound nodes keep their exact creation labels and
/// relationship types never widen. FOREACH element variables are treated as
/// unknown (they shadow outer bindings and may hold arbitrary items).
///
/// This AST-level signature is the fallback used when a trigger has no
/// usable compiled plan; the primary, more precise path is
/// analysis::InferWriteSet over the compiled TriggerProgram
/// (src/analysis/write_set.h, docs/analysis.md).
WriteSignature ExtractWriteSignature(const TriggerDef& def);

/// Can the writes of `sig` raise the event monitored by `def`?
/// (Conservative: wildcards match everything.)
bool MayTrigger(const WriteSignature& sig, const TriggerDef& def);

/// The triggering graph of Baralis/Ceri/Widom [9]: nodes are triggers, an
/// edge T1 -> T2 means T1's action may raise T2's event. Acyclicity is a
/// sufficient condition for termination of any cascade.
class TriggeringGraph {
 public:
  /// Builds the graph over the given triggers (typically catalog.All()).
  static TriggeringGraph Build(const std::vector<const TriggerDef*>& triggers);

  /// Adjacency: edges()[i] lists indices j with trigger i -> trigger j.
  const std::vector<std::vector<size_t>>& edges() const { return edges_; }
  const std::vector<const TriggerDef*>& triggers() const { return triggers_; }

  /// Strongly connected components with more than one trigger, plus
  /// self-loops, in deterministic order. Each is a potential
  /// non-termination source.
  std::vector<std::vector<std::string>> FindCycles() const;

  struct Report {
    bool guaranteed_termination = false;
    /// Cycles; alongside each, whether every trigger in it is guarded by a
    /// WHEN condition (a guarded cycle *may* converge — e.g. the paper's
    /// bed-availability test in Section 6.2.3 — but this is a heuristic,
    /// not a proof).
    std::vector<std::pair<std::vector<std::string>, bool>> cycles;
    size_t trigger_count = 0;
    size_t edge_count = 0;

    std::string ToString() const;
  };

  /// Full analysis: termination guarantee or cycle inventory.
  Report Analyze() const;

 private:
  std::vector<const TriggerDef*> triggers_;
  std::vector<std::vector<size_t>> edges_;
};

}  // namespace pgt::termination

#endif  // PGTRIGGERS_TERMINATION_TRIGGERING_GRAPH_H_
