// Pattern matcher tests: label scans, directions, property constraints,
// relationship uniqueness, variable-length paths, transition pseudo-labels.

#include "src/cypher/matcher.h"

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/cypher/parser.h"

namespace pgt::cypher {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : manager_(&store_) {
    tx_ = std::move(manager_.Begin()).value();
    ctx_.tx = tx_.get();
    ctx_.clock = &clock_;
    ctx_.params = &params_;
  }

  NodeId Node(const std::string& label,
              std::map<std::string, Value> props = {}) {
    PropMap p;
    for (auto& [k, v] : props) p[store_.InternPropKey(k)] = v;
    return store_.CreateNode({store_.InternLabel(label)}, std::move(p));
  }
  RelId Rel(NodeId a, const std::string& type, NodeId b) {
    return store_.CreateRel(a, store_.InternRelType(type), b, {}).value();
  }

  /// Matches the MATCH clause of `query` and returns all rows.
  std::vector<Row> Match(const std::string& pattern_text,
                         const Row& seed = {}) {
    auto q = Parser::ParseQuery("MATCH " + pattern_text + " RETURN *");
    EXPECT_TRUE(q.ok()) << q.status();
    std::vector<Row> out;
    Status st = MatchPattern(q.value().clauses[0]->pattern, seed, ctx_,
                             [&](const Row& r) {
                               out.push_back(r);
                               return Status::OK();
                             });
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  GraphStore store_;
  TransactionManager manager_;
  std::unique_ptr<Transaction> tx_;
  LogicalClock clock_;
  Params params_;
  EvalContext ctx_;
};

TEST_F(MatcherTest, LabelScan) {
  Node("A");
  Node("A");
  Node("B");
  EXPECT_EQ(Match("(n:A)").size(), 2u);
  EXPECT_EQ(Match("(n:B)").size(), 1u);
  EXPECT_EQ(Match("(n)").size(), 3u);
}

TEST_F(MatcherTest, UnknownLabelMatchesNothing) {
  Node("A");
  EXPECT_TRUE(Match("(n:Nothing)").empty());
}

TEST_F(MatcherTest, PropertyConstraint) {
  Node("P", {{"age", Value::Int(30)}});
  Node("P", {{"age", Value::Int(40)}});
  EXPECT_EQ(Match("(n:P {age: 30})").size(), 1u);
  EXPECT_TRUE(Match("(n:P {age: 99})").empty());
  EXPECT_TRUE(Match("(n:P {missing: 1})").empty());
}

TEST_F(MatcherTest, DirectedTraversal) {
  NodeId a = Node("A");
  NodeId b = Node("B");
  Rel(a, "R", b);
  EXPECT_EQ(Match("(x:A)-[:R]->(y:B)").size(), 1u);
  EXPECT_TRUE(Match("(x:A)<-[:R]-(y:B)").empty());
  EXPECT_EQ(Match("(x:A)-[:R]-(y:B)").size(), 1u);
  EXPECT_EQ(Match("(y:B)<-[:R]-(x:A)").size(), 1u);
}

TEST_F(MatcherTest, TypeFilterAndAlternatives) {
  NodeId a = Node("A");
  NodeId b = Node("B");
  Rel(a, "R1", b);
  Rel(a, "R2", b);
  EXPECT_EQ(Match("(x:A)-[:R1]->(y)").size(), 1u);
  EXPECT_EQ(Match("(x:A)-[:R1|R2]->(y)").size(), 2u);
  EXPECT_EQ(Match("(x:A)-[r]->(y)").size(), 2u);
}

TEST_F(MatcherTest, BoundVariablesConstrain) {
  NodeId a = Node("A");
  NodeId b = Node("B");
  NodeId c = Node("B");
  Rel(a, "R", b);
  Rel(a, "R", c);
  Row seed;
  seed.Set("y", Value::Node(b));
  EXPECT_EQ(Match("(x:A)-[:R]->(y)", seed).size(), 1u);
}

TEST_F(MatcherTest, BoundRelVariableConstrains) {
  NodeId a = Node("A");
  NodeId b = Node("B");
  RelId r1 = Rel(a, "R", b);
  Rel(a, "R", b);
  Row seed;
  seed.Set("r", Value::Rel(r1));
  EXPECT_EQ(Match("(x)-[r]->(y)", seed).size(), 1u);
}

TEST_F(MatcherTest, RelationshipUniquenessWithinMatch) {
  NodeId a = Node("A");
  NodeId b = Node("A");
  Rel(a, "R", b);
  // A two-hop path needs two distinct relationships; with only one, the
  // same rel may not be reused (a)-[r]-(b)-[r]-(a).
  EXPECT_TRUE(Match("(x:A)-[:R]-(y:A)-[:R]-(z:A)").empty());
}

TEST_F(MatcherTest, MultiPartCartesianAndJoin) {
  Node("A");
  Node("A");
  Node("B");
  EXPECT_EQ(Match("(x:A), (y:B)").size(), 2u);
  EXPECT_EQ(Match("(x:A), (y:A)").size(), 4u);  // no node uniqueness
}

TEST_F(MatcherTest, VariableLengthPaths) {
  NodeId n1 = Node("N");
  NodeId n2 = Node("N");
  NodeId n3 = Node("N");
  NodeId n4 = Node("N");
  Rel(n1, "R", n2);
  Rel(n2, "R", n3);
  Rel(n3, "R", n4);
  Row seed;
  seed.Set("s", Value::Node(n1));
  EXPECT_EQ(Match("(s)-[:R*1..3]->(t)", seed).size(), 3u);
  EXPECT_EQ(Match("(s)-[:R*2]->(t)", seed).size(), 1u);
  EXPECT_EQ(Match("(s)-[:R*]->(t)", seed).size(), 3u);
  // Zero-length includes the start node itself.
  EXPECT_EQ(Match("(s)-[:R*0..1]->(t)", seed).size(), 2u);
}

TEST_F(MatcherTest, VariableLengthBindsRelList) {
  NodeId n1 = Node("N");
  NodeId n2 = Node("N");
  NodeId n3 = Node("N");
  Rel(n1, "R", n2);
  Rel(n2, "R", n3);
  Row seed;
  seed.Set("s", Value::Node(n1));
  std::vector<Row> rows = Match("(s)-[path:R*2]->(t)", seed);
  ASSERT_EQ(rows.size(), 1u);
  const Value* path = rows[0].Get("path");
  ASSERT_NE(path, nullptr);
  ASSERT_TRUE(path->is_list());
  EXPECT_EQ(path->list_value().size(), 2u);
}

TEST_F(MatcherTest, VariableLengthCyclesAreBounded) {
  NodeId a = Node("N");
  NodeId b = Node("N");
  Rel(a, "R", b);
  Rel(b, "R", a);
  Row seed;
  seed.Set("s", Value::Node(a));
  // Rel-uniqueness bounds the DFS: a->b (1 hop), a->b->a (2 hops), stop.
  EXPECT_EQ(Match("(s)-[:R*]->(t)", seed).size(), 2u);
}

TEST_F(MatcherTest, TransitionPseudoLabel) {
  NodeId a = Node("P");
  Node("P");
  TransitionEnv env;
  env.MutableSet("NEWNODES", true).ids = {a.value};
  ctx_.transition = &env;
  std::vector<Row> rows = Match("(pn:NEWNODES)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("pn")->node_id(), a);
  // Combined with a real label.
  EXPECT_EQ(Match("(pn:NEWNODES:P)").size(), 1u);
  EXPECT_TRUE(Match("(pn:NEWNODES:Q)").empty());
}

TEST_F(MatcherTest, PseudoLabelOfRelSetNeverMatchesNodes) {
  Node("P");
  TransitionEnv env;
  env.MutableSet("NEWRELS", false).ids = {0};
  ctx_.transition = &env;
  EXPECT_TRUE(Match("(x:NEWRELS)").empty());
}

TEST_F(MatcherTest, DeletedNodesInOldSetMatchButDoNotTraverse) {
  NodeId a = Node("P");
  NodeId b = Node("P");
  Rel(a, "R", b);
  ASSERT_TRUE(tx_->DeleteNode(a, /*detach=*/true).ok());
  TransitionEnv env;
  env.MutableSet("OLDNODES", true).ids = {a.value};
  ctx_.transition = &env;
  EXPECT_EQ(Match("(x:OLDNODES)").size(), 1u);       // ghost matches
  EXPECT_TRUE(Match("(x:OLDNODES)-[:R]-(y)").empty());  // no traversal
}

TEST_F(MatcherTest, PatternExistsEarlyExit) {
  NodeId a = Node("A");
  NodeId b = Node("B");
  Rel(a, "R", b);
  auto q = Parser::ParseQuery("MATCH (x:A)-[:R]->(:B) RETURN *");
  ASSERT_TRUE(q.ok());
  auto found = PatternExists(q.value().clauses[0]->pattern, nullptr, Row{},
                             ctx_);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found.value());
  auto q2 = Parser::ParseQuery("MATCH (x:B)-[:R]->(:A) RETURN *");
  auto missing = PatternExists(q2.value().clauses[0]->pattern, nullptr,
                               Row{}, ctx_);
  EXPECT_FALSE(missing.value());
}

TEST_F(MatcherTest, PatternVariablesReportsUnbound) {
  auto q = Parser::ParseQuery("MATCH (a)-[r:R]->(b) RETURN *");
  Row row;
  row.Set("a", Value::Node(NodeId{0}));
  std::vector<std::string> vars =
      PatternVariables(q.value().clauses[0]->pattern, row);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "r");
  EXPECT_EQ(vars[1], "b");
}

TEST_F(MatcherTest, SelfLoopMatches) {
  NodeId a = Node("A");
  Rel(a, "R", a);
  EXPECT_EQ(Match("(x:A)-[:R]->(x)").size(), 1u);
  EXPECT_EQ(Match("(x:A)-[:R]-(y)").size(), 1u);
}

// Regression: scans must stay deterministic (ascending id order, tombstones
// excluded) when deletes are interleaved with scans — the unconstrained,
// label-index, and property-index access paths all share this contract.
TEST_F(MatcherTest, ScanOrderDeterministicAcrossInterleavedDeletes) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(Node("D", {{"v", Value::Int(i)}}));
  }

  auto scan_ids = [&](const std::string& pattern) {
    std::vector<uint64_t> ids;
    for (const Row& r : Match(pattern)) {
      ids.push_back(r.Get("n")->node_id().value);
    }
    return ids;
  };
  auto expect_sorted_without = [&](const std::vector<uint64_t>& ids,
                                   const std::set<uint64_t>& deleted,
                                   size_t total) {
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    EXPECT_EQ(ids.size(), total - deleted.size());
    for (uint64_t id : ids) EXPECT_EQ(deleted.count(id), 0u);
  };

  std::set<uint64_t> deleted;
  expect_sorted_without(scan_ids("(n)"), deleted, nodes.size());

  // Delete from the middle, scan, delete more, scan again.
  ASSERT_TRUE(store_.DeleteNode(nodes[3]).ok());
  deleted.insert(nodes[3].value);
  expect_sorted_without(scan_ids("(n)"), deleted, nodes.size());
  expect_sorted_without(scan_ids("(n:D)"), deleted, nodes.size());

  ASSERT_TRUE(store_.DeleteNode(nodes[0]).ok());
  ASSERT_TRUE(store_.DeleteNode(nodes[7]).ok());
  deleted.insert(nodes[0].value);
  deleted.insert(nodes[7].value);
  expect_sorted_without(scan_ids("(n)"), deleted, nodes.size());
  expect_sorted_without(scan_ids("(n:D)"), deleted, nodes.size());

  // Revival (the rollback path) restores the node at its old position.
  ASSERT_TRUE(store_
                  .ReviveNode(nodes[3], {*store_.LookupLabel("D")},
                              {{*store_.LookupPropKey("v"), Value::Int(3)}})
                  .ok());
  deleted.erase(nodes[3].value);
  expect_sorted_without(scan_ids("(n)"), deleted, nodes.size());
  expect_sorted_without(scan_ids("(n:D)"), deleted, nodes.size());

  // Same contract on the property-index path.
  ASSERT_TRUE(store_
                  .CreateIndex(index::IndexSpec{*store_.LookupLabel("D"),
                                                *store_.LookupPropKey("v"),
                                                index::IndexKind::kOrdered})
                  .ok());
  std::vector<uint64_t> via_index = scan_ids("(n:D {v: 3})");
  ASSERT_EQ(via_index.size(), 1u);
  EXPECT_EQ(via_index[0], nodes[3].value);
  // New nodes created mid-stream appear in id order on the next scan.
  Node("D", {{"v", Value::Int(3)}});
  via_index = scan_ids("(n:D {v: 3})");
  ASSERT_EQ(via_index.size(), 2u);
  EXPECT_TRUE(std::is_sorted(via_index.begin(), via_index.end()));
}

}  // namespace
}  // namespace pgt::cypher
