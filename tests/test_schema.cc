// PG-Schema tests: DDL parsing, round-trips, inheritance, and graph
// validation (types, required/extra properties, keys, edge endpoints).

#include <gtest/gtest.h>

#include "src/covid/schema.h"
#include "src/schema/pg_schema.h"
#include "src/schema/validator.h"

namespace pgt::schema {
namespace {

const char* kTinyDdl = R"(
CREATE GRAPH TYPE Tiny STRICT {
  (PersonType : Person {name STRING, age INT32 OPTIONAL, ssn STRING KEY}),
  (StudentType : Student <: PersonType {school STRING}),
  (NoteType : Note OPEN {text STRING}),
  (:PersonType)-[KnowsType : Knows {since INT32 OPTIONAL}]->(:PersonType)
})";

TEST(SchemaParserTest, ParsesNodeEdgeAndInheritance) {
  auto r = ParseSchemaDdl(kTinyDdl);
  ASSERT_TRUE(r.ok()) << r.status();
  const SchemaDef& s = r.value();
  EXPECT_EQ(s.name, "Tiny");
  EXPECT_TRUE(s.strict);
  ASSERT_EQ(s.node_types.size(), 3u);
  ASSERT_EQ(s.edge_types.size(), 1u);
  const NodeTypeSpec* student = s.FindNodeType("StudentType");
  ASSERT_NE(student, nullptr);
  EXPECT_EQ(student->parent, "PersonType");
  EXPECT_TRUE(s.FindNodeType("NoteType")->open);
  const EdgeTypeSpec* knows = s.FindEdgeType("Knows");
  ASSERT_NE(knows, nullptr);
  EXPECT_EQ(knows->src_type, "PersonType");
}

TEST(SchemaParserTest, PropertyFlags) {
  auto r = ParseSchemaDdl(kTinyDdl);
  ASSERT_TRUE(r.ok());
  const NodeTypeSpec* person = r->FindNodeType("PersonType");
  EXPECT_FALSE(person->props[0].optional);
  EXPECT_TRUE(person->props[1].optional);
  EXPECT_TRUE(person->props[2].is_key);
}

TEST(SchemaParserTest, RoundTripThroughToDdl) {
  auto r1 = ParseSchemaDdl(kTinyDdl);
  ASSERT_TRUE(r1.ok());
  auto r2 = ParseSchemaDdl(r1->ToDdl());
  ASSERT_TRUE(r2.ok()) << r1->ToDdl() << "\n-> " << r2.status();
  EXPECT_EQ(r2->ToDdl(), r1->ToDdl());
}

TEST(SchemaParserTest, RejectsUnknownParent) {
  auto r = ParseSchemaDdl(
      "CREATE GRAPH TYPE Bad STRICT { (AType : A <: Ghost {x STRING}) }");
  EXPECT_FALSE(r.ok());
}

TEST(SchemaParserTest, RejectsOptionalKey) {
  auto r = ParseSchemaDdl(
      "CREATE GRAPH TYPE Bad STRICT { (AType : A {k STRING OPTIONAL KEY}) }");
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST(SchemaParserTest, RejectsDuplicateTypeNames) {
  auto r = ParseSchemaDdl(
      "CREATE GRAPH TYPE Bad STRICT { (AType : A {x STRING}), "
      "(AType : B {x STRING}) }");
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST(SchemaDefTest, EffectiveLabelsAndProps) {
  auto r = ParseSchemaDdl(kTinyDdl);
  ASSERT_TRUE(r.ok());
  const NodeTypeSpec* student = r->FindNodeType("StudentType");
  auto labels = r->EffectiveLabels(*student);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 2u);  // Student + Person
  auto props = r->EffectiveProps(*student);
  ASSERT_TRUE(props.ok());
  EXPECT_EQ(props->size(), 4u);  // name, age, ssn, school
  EXPECT_TRUE(r->IsSubtypeOf("StudentType", "PersonType"));
  EXPECT_FALSE(r->IsSubtypeOf("PersonType", "StudentType"));
}

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() {
    auto r = ParseSchemaDdl(kTinyDdl);
    EXPECT_TRUE(r.ok());
    schema_ = std::move(r).value();
  }

  NodeId Person(const std::string& name, const std::string& ssn) {
    return store_.CreateNode(
        {store_.InternLabel("Person")},
        {{store_.InternPropKey("name"), Value::String(name)},
         {store_.InternPropKey("ssn"), Value::String(ssn)}});
  }

  GraphStore store_;
  SchemaDef schema_;
};

TEST_F(ValidatorTest, ConformantGraphPasses) {
  NodeId a = Person("ann", "1");
  NodeId b = Person("bob", "2");
  ASSERT_TRUE(
      store_.CreateRel(a, store_.InternRelType("Knows"), b, {}).ok());
  ValidationReport report = ValidateGraph(store_, schema_);
  EXPECT_TRUE(report.ok()) << report.violations[0].ToString();
  EXPECT_EQ(report.nodes_checked, 2u);
  EXPECT_EQ(report.rels_checked, 1u);
}

TEST_F(ValidatorTest, MissingRequiredProperty) {
  store_.CreateNode({store_.InternLabel("Person")},
                    {{store_.InternPropKey("name"), Value::String("x")}});
  ValidationReport report = ValidateGraph(store_, schema_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMissingProperty);
}

TEST_F(ValidatorTest, WrongPropertyType) {
  store_.CreateNode({store_.InternLabel("Person")},
                    {{store_.InternPropKey("name"), Value::Int(7)},
                     {store_.InternPropKey("ssn"), Value::String("1")}});
  ValidationReport report = ValidateGraph(store_, schema_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kWrongType);
}

TEST_F(ValidatorTest, ExtraPropertyOnClosedType) {
  store_.CreateNode({store_.InternLabel("Person")},
                    {{store_.InternPropKey("name"), Value::String("x")},
                     {store_.InternPropKey("ssn"), Value::String("1")},
                     {store_.InternPropKey("hobby"), Value::String("y")}});
  ValidationReport report = ValidateGraph(store_, schema_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kExtraProperty);
}

TEST_F(ValidatorTest, OpenTypeAcceptsExtras) {
  store_.CreateNode({store_.InternLabel("Note")},
                    {{store_.InternPropKey("text"), Value::String("t")},
                     {store_.InternPropKey("anything"), Value::Int(1)}});
  EXPECT_TRUE(ValidateGraph(store_, schema_).ok());
}

TEST_F(ValidatorTest, KeyViolationDetected) {
  Person("a", "same");
  Person("b", "same");
  ValidationReport report = ValidateGraph(store_, schema_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kKeyViolation);
}

TEST_F(ValidatorTest, StrictRejectsUnknownLabels) {
  store_.CreateNode({store_.InternLabel("Stranger")}, {});
  ValidationReport report = ValidateGraph(store_, schema_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kUntypedNode);
}

TEST_F(ValidatorTest, LooseModeSkipsUnknowns) {
  schema_.strict = false;
  store_.CreateNode({store_.InternLabel("Stranger")}, {});
  EXPECT_TRUE(ValidateGraph(store_, schema_).ok());
}

TEST_F(ValidatorTest, SubtypeInstanceCarriesChainLabels) {
  // Student instance: both labels, all required props.
  store_.CreateNode(
      {store_.InternLabel("Person"), store_.InternLabel("Student")},
      {{store_.InternPropKey("name"), Value::String("s")},
       {store_.InternPropKey("ssn"), Value::String("3")},
       {store_.InternPropKey("school"), Value::String("PoliMi")}});
  EXPECT_TRUE(ValidateGraph(store_, schema_).ok());
  // Student label without the Person parent label is untyped in STRICT.
  store_.CreateNode({store_.InternLabel("Student")},
                    {{store_.InternPropKey("school"), Value::String("x")}});
  EXPECT_FALSE(ValidateGraph(store_, schema_).ok());
}

TEST_F(ValidatorTest, EdgeEndpointTypesEnforced) {
  NodeId p = Person("p", "1");
  NodeId note = store_.CreateNode(
      {store_.InternLabel("Note")},
      {{store_.InternPropKey("text"), Value::String("t")}});
  ASSERT_TRUE(
      store_.CreateRel(p, store_.InternRelType("Knows"), note, {}).ok());
  ValidationReport report = ValidateGraph(store_, schema_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kBadEndpoint);
}

TEST_F(ValidatorTest, UndeclaredEdgeTypeInStrictMode) {
  NodeId a = Person("a", "1");
  NodeId b = Person("b", "2");
  ASSERT_TRUE(
      store_.CreateRel(a, store_.InternRelType("Mystery"), b, {}).ok());
  ValidationReport report = ValidateGraph(store_, schema_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kUntypedEdge);
}

TEST(CovidSchemaTest, BuildsAndChecks) {
  SchemaDef s = covid::BuildCovidSchema();
  EXPECT_TRUE(s.Check().ok());
  EXPECT_EQ(s.node_types.size(), 11u);
  EXPECT_EQ(s.edge_types.size(), 9u);
  // The IcuPatient chain is three levels deep (Figure 4).
  const NodeTypeSpec* icu = s.FindNodeType("IcuPatientType");
  ASSERT_NE(icu, nullptr);
  auto labels = s.EffectiveLabels(*icu);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 3u);
  EXPECT_TRUE(s.FindNodeType("AlertType")->open);
}

TEST(CovidSchemaTest, DdlRoundTrips) {
  auto parsed = ParseSchemaDdl(covid::CovidSchemaDdl());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToDdl(), covid::BuildCovidSchema().ToDdl());
}

}  // namespace
}  // namespace pgt::schema
