// Cross-product matrix tests: every (action time x event x granularity)
// combination fires exactly once for one matching event and never for a
// non-matching one. This is the Section 4.2 semantics lattice exercised
// exhaustively via parameterized gtest.

#include <gtest/gtest.h>

#include "src/trigger/database.h"

namespace pgt {
namespace {

struct MatrixCase {
  const char* time;         // AFTER | ONCOMMIT | DETACHED
  const char* event;        // CREATE | DELETE | SET | REMOVE
  const char* granularity;  // EACH | ALL
  const char* item;         // NODE | RELATIONSHIP
};

class TriggerMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {
 protected:
  static MatrixCase Case(const std::tuple<int, int, int, int>& p) {
    static const char* kTimes[] = {"AFTER", "ONCOMMIT", "DETACHED"};
    static const char* kEvents[] = {"CREATE", "DELETE", "SET", "REMOVE"};
    static const char* kGrans[] = {"EACH", "ALL"};
    static const char* kItems[] = {"NODE", "RELATIONSHIP"};
    return {kTimes[std::get<0>(p)], kEvents[std::get<1>(p)],
            kGrans[std::get<2>(p)], kItems[std::get<3>(p)]};
  }

  void Exec(Database& db, const std::string& q) {
    auto r = db.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  int64_t Count(Database& db, const std::string& q) {
    auto r = db.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }
};

TEST_P(TriggerMatrix, FiresOnceForOneMatchingEvent) {
  const MatrixCase c = Case(GetParam());
  const bool is_node = std::string(c.item) == "NODE";
  const bool is_mutation =
      std::string(c.event) == "SET" || std::string(c.event) == "REMOVE";
  Database db;

  // Seed graph: one monitored item (node :T or rel :T) with property p,
  // plus an unrelated decoy.
  Exec(db, "CREATE (:T {p: 1}), (:Decoy {p: 1})");
  Exec(db, "CREATE (:EndA)-[:T {p: 1}]->(:EndB)");
  Exec(db, "CREATE (:EndA)-[:Decoy {p: 1}]->(:EndB)");

  // Build the trigger. Label events only exist for nodes, so SET/REMOVE
  // on relationships monitor the property.
  std::string on = "'T'";
  if (is_mutation) on += ".'p'";
  const std::string items =
      std::string(c.item) + (std::string(c.granularity) == "ALL" ? "S" : "");
  const std::string ddl = std::string("CREATE TRIGGER M ") + c.time + " " +
                          c.event + " ON " + on + " FOR " + c.granularity +
                          " " + items + " BEGIN CREATE (:Fired) END";
  Exec(db, ddl);

  // One matching event.
  std::string matching;
  if (std::string(c.event) == "CREATE") {
    matching = is_node ? "CREATE (:T)"
                       : "MATCH (a:EndA), (b:EndB) WITH a, b LIMIT 1 "
                         "CREATE (a)-[:T]->(b)";
  } else if (std::string(c.event) == "DELETE") {
    matching = is_node ? "MATCH (t:T) DETACH DELETE t"
                       : "MATCH ()-[r:T]->() DELETE r";
  } else if (std::string(c.event) == "SET") {
    matching = is_node ? "MATCH (t:T) SET t.p = 2"
                       : "MATCH ()-[r:T]->() SET r.p = 2";
  } else {
    matching = is_node ? "MATCH (t:T) REMOVE t.p"
                       : "MATCH ()-[r:T]->() REMOVE r.p";
  }
  Exec(db, matching);
  EXPECT_EQ(Count(db, "MATCH (f:Fired) RETURN COUNT(*) AS c"), 1)
      << ddl << "\nevent: " << matching;

  // A non-matching event (same shape, decoy label/type) must not fire.
  std::string decoy;
  if (std::string(c.event) == "CREATE") {
    decoy = is_node ? "CREATE (:Decoy)"
                    : "MATCH (a:EndA), (b:EndB) WITH a, b LIMIT 1 "
                      "CREATE (a)-[:Decoy]->(b)";
  } else if (std::string(c.event) == "DELETE") {
    decoy = is_node ? "MATCH (d:Decoy) DETACH DELETE d"
                    : "MATCH ()-[r:Decoy]->() DELETE r";
  } else if (std::string(c.event) == "SET") {
    decoy = is_node ? "MATCH (d:Decoy) SET d.p = 2"
                    : "MATCH ()-[r:Decoy]->() SET r.p = 2";
  } else {
    decoy = is_node ? "MATCH (d:Decoy) REMOVE d.p"
                    : "MATCH ()-[r:Decoy]->() REMOVE r.p";
  }
  Exec(db, decoy);
  EXPECT_EQ(Count(db, "MATCH (f:Fired) RETURN COUNT(*) AS c"), 1)
      << ddl << "\ndecoy fired: " << decoy;
}

TEST_P(TriggerMatrix, AllGranularityBatchesIntoOneActivation) {
  const MatrixCase c = Case(GetParam());
  if (std::string(c.granularity) != "ALL" ||
      std::string(c.event) != "CREATE" || std::string(c.item) != "NODE") {
    GTEST_SKIP() << "batch sub-case applies to CREATE/ALL/NODE";
  }
  Database db;
  const std::string ddl = std::string("CREATE TRIGGER M ") + c.time +
                          " CREATE ON 'T' FOR ALL NODES "
                          "BEGIN CREATE (:Fired {n: SIZE(NEWNODES)}) END";
  Exec(db, ddl);
  Exec(db, "UNWIND RANGE(1, 7) AS i CREATE (:T)");
  EXPECT_EQ(Count(db, "MATCH (f:Fired) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count(db, "MATCH (f:Fired) RETURN f.n AS n"), 7);
}

INSTANTIATE_TEST_SUITE_P(Section42Lattice, TriggerMatrix,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 4),
                                            ::testing::Range(0, 2),
                                            ::testing::Range(0, 2)));

}  // namespace
}  // namespace pgt
