// Fault containment & resource governance (docs/robustness.md):
// execution budgets (statement_timeout_ms / max_plan_steps) with clean
// rollback under both the compiled-plan and interpreter paths, the
// per-trigger circuit breaker (auto-quarantine, DETACHED half-open
// backoff probes, SHOW TRIGGER STATUS), the unified fault-point registry,
// and WAL-poison read-only degraded mode (SHOW HEALTH).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/trigger/async_executor.h"
#include "src/trigger/database.h"
#include "src/wal/fault_fs.h"

namespace pgt {
namespace {

/// Every test disarms the global registry on both ends: faults armed by a
/// failing test must never leak into the next one.
class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }

  static void Exec(Database& db, const std::string& q) {
    auto r = db.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  static int64_t Count(Database& db, const std::string& q) {
    auto r = db.Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? r.value().rows[0][0].int_value() : -1;
  }
};

// --- Execution budgets -------------------------------------------------------

EngineOptions StepBudget(int64_t steps, bool compiled) {
  EngineOptions o;
  o.max_plan_steps = steps;
  o.use_compiled_plans = compiled;
  return o;
}

/// A statement whose work is quadratic in the seeded node count — big
/// enough to blow a small step budget deterministically, small enough to
/// finish instantly when the budget check itself is under test.
constexpr char kHeavy[] = "MATCH (a:N), (b:N) RETURN COUNT(*) AS c";

void SeedNodes(Database& db, int n) {
  ASSERT_TRUE(
      db.Execute("UNWIND RANGE(1, " + std::to_string(n) + ") AS i "
                 "CREATE (:N {i: i})")
          .ok());
}

TEST_F(RobustnessTest, StepBudgetAbortsBothExecutionPaths) {
  for (bool compiled : {true, false}) {
    Database db(StepBudget(500, compiled));
    SeedNodes(db, 100);  // 100 x 100 candidate pairs >> 500 steps
    auto r = db.Execute(kHeavy);
    ASSERT_FALSE(r.ok()) << "compiled=" << compiled;
    EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
    EXPECT_NE(r.status().message().find("max_plan_steps"), std::string::npos)
        << r.status();
    // The budget is per statement: the next (cheap) statement succeeds.
    EXPECT_EQ(Count(db, "MATCH (n:N) RETURN COUNT(*) AS c"), 100);
  }
}

TEST_F(RobustnessTest, TimeoutAbortsLongStatement) {
  EngineOptions o;
  o.statement_timeout_ms = 50;
  Database db(o);
  SeedNodes(db, 150);
  // 150^3 = 3.4M candidate triples: far past 50ms on any machine, yet
  // bounded if cancellation were broken.
  auto r = db.Execute("MATCH (a:N), (b:N), (c:N) RETURN COUNT(*) AS c");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
  EXPECT_NE(r.status().message().find("statement_timeout_ms"),
            std::string::npos)
      << r.status();
}

TEST_F(RobustnessTest, BudgetAbortRollsBackCleanly) {
  for (bool compiled : {true, false}) {
    Database db(StepBudget(500, compiled));
    SeedNodes(db, 100);
    // The write statement blows its budget mid-flight: nothing of it (or
    // of any trigger it would have fired) may survive.
    Exec(db, "CREATE TRIGGER T AFTER CREATE ON 'X' FOR EACH NODE "
             "BEGIN CREATE (:Log) END");
    auto r = db.Execute("MATCH (a:N), (b:N) CREATE (:X {u: a.i})");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
    EXPECT_EQ(Count(db, "MATCH (x:X) RETURN COUNT(*) AS c"), 0);
    EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 0);
    EXPECT_EQ(Count(db, "MATCH (n:N) RETURN COUNT(*) AS c"), 100);
  }
}

TEST_F(RobustnessTest, BudgetAbortNamesTheTrigger) {
  for (bool compiled : {true, false}) {
    Database db(StepBudget(2000, compiled));
    SeedNodes(db, 100);
    // The top-level statement is cheap; the trigger's action is the hog.
    Exec(db, "CREATE TRIGGER Hog AFTER CREATE ON 'X' FOR EACH NODE "
             "BEGIN MATCH (a:N), (b:N) CREATE (:Pair) END");
    auto r = db.Execute("CREATE (:X)");
    ASSERT_FALSE(r.ok()) << "compiled=" << compiled;
    EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
    EXPECT_NE(r.status().message().find("trigger 'Hog'"), std::string::npos)
        << r.status();
    EXPECT_EQ(Count(db, "MATCH (x:X) RETURN COUNT(*) AS c"), 0);
  }
}

TEST_F(RobustnessTest, CascadesSpendTheStatementsBudget) {
  // Two triggers, each individually affordable; together they exceed the
  // budget — proof that BEFORE/AFTER cascades inherit rather than re-arm.
  Database solo(StepBudget(4000, true));
  SeedNodes(solo, 50);
  Exec(solo, "CREATE TRIGGER A AFTER CREATE ON 'X' FOR EACH NODE "
             "BEGIN MATCH (a:N), (b:N) WITH COUNT(*) AS c CREATE (:La) END");
  ASSERT_TRUE(solo.Execute("CREATE (:X)").ok());

  Database both(StepBudget(4000, true));
  SeedNodes(both, 50);
  Exec(both, "CREATE TRIGGER A AFTER CREATE ON 'X' FOR EACH NODE "
             "BEGIN MATCH (a:N), (b:N) WITH COUNT(*) AS c CREATE (:La) END");
  Exec(both, "CREATE TRIGGER B AFTER CREATE ON 'X' FOR EACH NODE "
             "BEGIN MATCH (a:N), (b:N) WITH COUNT(*) AS c CREATE (:Lb) END");
  auto r = both.Execute("CREATE (:X)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
}

TEST_F(RobustnessTest, RepeatedBudgetAbortsLeakNothing) {
  // Leak regression (run under ASan in CI): aborting mid-firing over and
  // over must not leak pooled frames/envs or corrupt engine state.
  Database db(StepBudget(2000, true));
  SeedNodes(db, 100);
  Exec(db, "CREATE TRIGGER Hog AFTER CREATE ON 'X' FOR EACH NODE "
           "BEGIN MATCH (a:N), (b:N) CREATE (:Pair) END");
  for (int i = 0; i < 50; ++i) {
    auto r = db.Execute("CREATE (:X)");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
  }
  EXPECT_EQ(Count(db, "MATCH (x:X) RETURN COUNT(*) AS c"), 0);
  // The engine is still fully live once the hog is gone.
  Exec(db, "DROP TRIGGER Hog");
  Exec(db, "CREATE (:X)");
  EXPECT_EQ(Count(db, "MATCH (x:X) RETURN COUNT(*) AS c"), 1);
}

// --- Circuit breaker ---------------------------------------------------------

EngineOptions Breaker(int threshold, int backoff_base = 4) {
  EngineOptions o;
  o.quarantine_threshold = threshold;
  o.quarantine_backoff_base = backoff_base;
  return o;
}

TEST_F(RobustnessTest, StatementTriggerQuarantinedAfterThreshold) {
  Database db(Breaker(3));
  Exec(db, "CREATE TRIGGER Flaky AFTER CREATE ON 'P' FOR EACH NODE "
           "BEGIN CREATE (:Log) END");
  // Fail the trigger's next three firings through the chaos hook.
  FaultRegistry::Global().Arm("engine.activation", [] {
    FaultRegistry::FaultSpec s;
    s.trigger_count = 3;
    s.message = "injected activation failure";
    return s;
  }());

  for (int i = 0; i < 3; ++i) {
    auto r = db.Execute("CREATE (:P)");
    ASSERT_FALSE(r.ok()) << "firing " << i;
  }
  // Threshold reached: the trigger is quarantined (disabled), so the next
  // commit sails through even though the statement still creates :P nodes.
  const TriggerHealth* h = db.catalog().Health("Flaky");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->quarantined);
  EXPECT_EQ(h->consecutive_failures, 3u);
  EXPECT_NE(h->reason.find("injected activation failure"), std::string::npos);
  EXPECT_FALSE(db.catalog().Find("Flaky")->enabled);

  Exec(db, "CREATE (:P)");
  EXPECT_EQ(Count(db, "MATCH (p:P) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 0);

  // SHOW TRIGGER STATUS surfaces the quarantine with its reason.
  auto status = db.Execute("SHOW TRIGGER STATUS");
  ASSERT_TRUE(status.ok()) << status.status();
  ASSERT_EQ(status->rows.size(), 1u);
  size_t name_col = 0, quar_col = 0, reason_col = 0;
  for (size_t c = 0; c < status->columns.size(); ++c) {
    if (status->columns[c] == "name") name_col = c;
    if (status->columns[c] == "quarantined") quar_col = c;
    if (status->columns[c] == "reason") reason_col = c;
  }
  EXPECT_EQ(status->rows[0][name_col].string_value(), "Flaky");
  EXPECT_TRUE(status->rows[0][quar_col].bool_value());
  EXPECT_NE(std::string(status->rows[0][reason_col].string_value())
                .find("injected activation failure"),
            std::string::npos);

  // Manual ENABLE is the only way back for a statement-time trigger, and
  // it resets the breaker to a fresh start.
  Exec(db, "ALTER TRIGGER Flaky ENABLE");
  Exec(db, "CREATE (:P)");
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(db.catalog().Health("Flaky"), nullptr);
}

TEST_F(RobustnessTest, DetachedTriggerRecoversViaBackoffProbe) {
  Database db(Breaker(/*threshold=*/2, /*backoff_base=*/1));
  Exec(db, "CREATE TRIGGER D DETACHED CREATE ON 'P' FOR EACH NODE "
           "BEGIN CREATE (:Log) END");
  FaultRegistry::Global().Arm("engine.activation", [] {
    FaultRegistry::FaultSpec s;
    s.trigger_count = 2;
    s.message = "injected detached failure";
    return s;
  }());

  // DETACHED failures are contained: the activating commits succeed.
  Exec(db, "CREATE (:P)");
  Exec(db, "CREATE (:P)");
  const TriggerHealth* h = db.catalog().Health("D");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->quarantined);

  // The fault has passed. Opportunity 1 is skipped (backoff window of 1),
  // opportunity 2 runs as the half-open probe and succeeds -> recovered.
  Exec(db, "CREATE (:P)");  // skipped
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 0);
  Exec(db, "CREATE (:P)");  // probe
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
  h = db.catalog().Health("D");
  ASSERT_NE(h, nullptr);
  EXPECT_FALSE(h->quarantined);
  EXPECT_EQ(h->probes, 1u);
  EXPECT_EQ(h->skipped, 1u);

  Exec(db, "CREATE (:P)");  // back to normal service
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 2);
}

TEST_F(RobustnessTest, FailedProbeDoublesTheBackoff) {
  Database db(Breaker(/*threshold=*/1, /*backoff_base=*/1));
  Exec(db, "CREATE TRIGGER D DETACHED CREATE ON 'P' FOR EACH NODE "
           "BEGIN CREATE (:Log) END");
  // Fail the first firing AND the first probe (hits 1 and 2).
  FaultRegistry::Global().Arm("engine.activation", [] {
    FaultRegistry::FaultSpec s;
    s.trigger_count = 2;
    return s;
  }());

  Exec(db, "CREATE (:P)");  // failure -> quarantined, backoff 1
  Exec(db, "CREATE (:P)");  // skipped
  Exec(db, "CREATE (:P)");  // probe -> fails -> backoff 2
  const TriggerHealth* h = db.catalog().Health("D");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->quarantined);
  EXPECT_EQ(h->backoff, 2u);
  EXPECT_EQ(h->quarantines, 2u);

  Exec(db, "CREATE (:P)");  // skipped (1/2)
  Exec(db, "CREATE (:P)");  // skipped (2/2)
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 0);
  Exec(db, "CREATE (:P)");  // probe -> succeeds -> recovered
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
  EXPECT_FALSE(db.catalog().Health("D")->quarantined);
}

// --- Degraded read-only mode -------------------------------------------------

TEST_F(RobustnessTest, WalPoisonEntersReadOnlyDegradedMode) {
  wal::MemVfs vfs;
  wal::WalOptions wo;
  wo.dir = "/db";
  wo.vfs = &vfs;
  wo.fsync = true;
  wo.group_size = 1;
  auto opened = Database::Open(wo);
  ASSERT_TRUE(opened.ok()) << opened.status();
  Database& db = **opened;
  Exec(db, "CREATE (:P {i: 1})");

  // The next log append fails -> the WAL is poisoned.
  FaultRegistry::Global().ArmNthHit("wal.append", 1);
  auto failed = db.Execute("CREATE (:P {i: 2})");
  ASSERT_FALSE(failed.ok());
  ASSERT_TRUE(db.degraded());

  // Writes are refused fast, citing the poison cause...
  auto write = db.Execute("CREATE (:P {i: 3})");
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(write.status().message().find("degraded"), std::string::npos);
  EXPECT_NE(write.status().message().find("wal append failed"),
            std::string::npos)
      << write.status();
  // ... and so is trigger/index DDL.
  EXPECT_FALSE(db.Execute("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH "
                          "NODE BEGIN CREATE (:L) END")
                   .ok());
  EXPECT_FALSE(db.Execute("CREATE INDEX ON :P(i)").ok());

  // Reads still work; the refused commit never half-applied.
  EXPECT_EQ(Count(db, "MATCH (p:P) RETURN COUNT(*) AS c"), 1);

  // SHOW HEALTH reports the mode and the cause.
  auto health = db.Execute("SHOW HEALTH");
  ASSERT_TRUE(health.ok()) << health.status();
  ASSERT_EQ(health->rows.size(), 1u);
  size_t mode_col = 0, cause_col = 0;
  for (size_t c = 0; c < health->columns.size(); ++c) {
    if (health->columns[c] == "mode") mode_col = c;
    if (health->columns[c] == "wal_poison_cause") cause_col = c;
  }
  EXPECT_EQ(health->rows[0][mode_col].string_value(), "degraded-read-only");
  EXPECT_NE(std::string(health->rows[0][cause_col].string_value())
                .find("wal append failed"),
            std::string::npos);

  // Reopening recovers to the last durable state: the poisoned-away
  // commits were refused in memory too, so nothing diverges.
  FaultRegistry::Global().DisarmAll();
  ASSERT_FALSE(db.Close().ok());  // close flushes into the poisoned log
  auto reopened = Database::Open(wo);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE((*reopened)->degraded());
  EXPECT_EQ(Count(**reopened, "MATCH (p:P) RETURN COUNT(*) AS c"), 1);
  Exec(**reopened, "CREATE (:P {i: 9})");
  EXPECT_EQ(Count(**reopened, "MATCH (p:P) RETURN COUNT(*) AS c"), 2);
}

// A statement that fails *after* allocating ids rolls back and burns those
// ids forever (ids are dense and never reused) — but a rollback appends no
// WAL record, so the log's id sequence legitimately runs ahead of a fresh
// replay's. Recovery must re-burn the gap as tombstones, not refuse the
// open with a divergence error. Found by the chaos suite (seed 2).
TEST_F(RobustnessTest, RolledBackIdBurnsDoNotDesyncWalReplay) {
  wal::MemVfs vfs;
  wal::WalOptions wo;
  wo.dir = "/db";
  wo.vfs = &vfs;
  wo.fsync = true;
  wo.group_size = 1;
  auto opened = Database::Open(wo);
  ASSERT_TRUE(opened.ok()) << opened.status();
  Database& db = **opened;
  Exec(db, "CREATE (:P {i: 1})");
  Exec(db,
       "CREATE TRIGGER Boom AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:L) END");

  // The statement allocates one node id and one rel id, then its AFTER
  // trigger fails by injection -> full rollback, both ids burned unlogged.
  FaultRegistry::Global().ArmNthHit("engine.activation", 1);
  auto failed =
      db.Execute("MATCH (a:P {i: 1}) CREATE (a)-[:R]->(:P {i: 2})");
  ASSERT_FALSE(failed.ok());
  FaultRegistry::Global().DisarmAll();
  EXPECT_FALSE(db.degraded());

  // The next successful commit logs creates that start past the hole.
  Exec(db, "MATCH (a:P {i: 1}) CREATE (a)-[:R]->(:P {i: 4})");
  ASSERT_TRUE(db.Close().ok());

  auto reopened = Database::Open(wo);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  Database& rdb = **reopened;
  EXPECT_EQ(Count(rdb, "MATCH (p:P) RETURN COUNT(*) AS c"), 2);
  EXPECT_EQ(Count(rdb, "MATCH (:P)-[r:R]->(:P) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count(rdb, "MATCH (l:L) RETURN COUNT(*) AS c"), 1);
  // The recovered id space includes the burned holes: appending resumes
  // exactly where the log left off, so a further close/reopen also works.
  Exec(rdb, "CREATE (:P {i: 9})");
  ASSERT_TRUE(rdb.Close().ok());
  auto again = Database::Open(wo);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(Count(**again, "MATCH (p:P) RETURN COUNT(*) AS c"), 3);
}

TEST_F(RobustnessTest, HealthSurfacesViaShowAndProcedure) {
  Database db;
  auto show = db.Execute("SHOW HEALTH");
  ASSERT_TRUE(show.ok()) << show.status();
  auto call = db.Execute(
      "CALL pgt.health() YIELD mode, quarantined_count, armed_fault_points "
      "RETURN mode, quarantined_count, armed_fault_points");
  ASSERT_TRUE(call.ok()) << call.status();
  ASSERT_EQ(show->rows.size(), 1u);
  ASSERT_EQ(call->rows.size(), 1u);
  EXPECT_EQ(show->rows[0][0].string_value(), "ok");
  EXPECT_EQ(call->rows[0][0].string_value(), "ok");
  EXPECT_EQ(call->rows[0][1].int_value(), 0);
  EXPECT_EQ(call->rows[0][2].int_value(), 0);

  auto status = db.Execute("SHOW TRIGGER STATUS");
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_TRUE(status->rows.empty());  // no triggers installed
}

// --- Fault registry semantics ------------------------------------------------

TEST_F(RobustnessTest, RegistryNthHitAndCounters) {
  auto& reg = FaultRegistry::Global();
  reg.ArmNthHit("test.point", 3);
  EXPECT_TRUE(reg.Hit("test.point").ok());
  EXPECT_TRUE(reg.Hit("test.point").ok());
  EXPECT_FALSE(reg.Hit("test.point").ok());
  EXPECT_TRUE(reg.Hit("test.point").ok());  // one-shot
  EXPECT_EQ(reg.HitCount("test.point"), 4u);
  EXPECT_EQ(reg.FailureCount("test.point"), 1u);
  EXPECT_EQ(reg.ArmedPoints().size(), 1u);
  reg.DisarmAll();
  EXPECT_TRUE(reg.ArmedPoints().empty());
}

TEST_F(RobustnessTest, RegistryProbabilisticIsSeedDeterministic) {
  auto& reg = FaultRegistry::Global();
  auto run = [&](uint64_t seed) {
    reg.ArmProbabilistic("test.p", 0.3, seed);
    std::vector<bool> fails;
    for (int i = 0; i < 64; ++i) fails.push_back(!reg.Hit("test.p").ok());
    reg.Disarm("test.p");
    return fails;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST_F(RobustnessTest, RegistryUnitBudgetShortWrite) {
  auto& reg = FaultRegistry::Global();
  FaultRegistry::FaultSpec s;
  s.unit_budget = 10;
  reg.Arm("test.bytes", std::move(s));
  uint64_t accepted = 7;
  EXPECT_TRUE(reg.Hit("test.bytes", 7, &accepted).ok());
  EXPECT_EQ(accepted, 7u);  // untouched on success
  accepted = 99;
  EXPECT_FALSE(reg.Hit("test.bytes", 7, &accepted).ok());
  EXPECT_EQ(accepted, 3u);  // short write: 3 of 7 fit
  reg.DisarmAll();
}

// --- Async pool fault containment --------------------------------------------

EngineOptions AsyncPool(int workers) {
  EngineOptions o;
  o.async_pool_size = workers;
  o.async_queue_capacity = 4;
  o.async_backpressure = AsyncBackpressure::kBlock;
  return o;
}

TEST_F(RobustnessTest, DeadAsyncWorkerDoesNotStallTheApplyChain) {
  Database db(AsyncPool(2));
  Exec(db, "CREATE TRIGGER D DETACHED CREATE ON 'P' FOR EACH NODE "
           "BEGIN CREATE (:Log) END");
  // Kill both workers on their next claims. The claimed items must still
  // be published (unevaluated) so the FIFO drain never stalls, and the
  // pool must hand future commits back to the serial inline path.
  FaultRegistry::Global().Arm("async.worker", [] {
    FaultRegistry::FaultSpec s;
    s.trigger_count = 2;
    return s;
  }());

  for (int i = 0; i < 6; ++i) Exec(db, "CREATE (:P)");
  db.DrainAsync();
  FaultRegistry::Global().DisarmAll();
  EXPECT_EQ(db.async()->Stats().worker_deaths, 2u);

  // Every activation still ran exactly once, dead workers or not.
  for (int i = 0; i < 4; ++i) Exec(db, "CREATE (:P)");
  db.DrainAsync();
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 10);
}

TEST_F(RobustnessTest, InjectedEnqueueAndApplyFailuresShed) {
  Database db(AsyncPool(1));
  Exec(db, "CREATE TRIGGER D DETACHED CREATE ON 'P' FOR EACH NODE "
           "BEGIN CREATE (:Log) END");
  FaultRegistry::Global().ArmNthHit("async.enqueue", 1);
  Exec(db, "CREATE (:P)");  // shed at hand-off
  Exec(db, "CREATE (:P)");  // enqueued normally
  db.DrainAsync();
  FaultRegistry::Global().ArmNthHit("async.apply", 1);
  Exec(db, "CREATE (:P)");  // shed at apply
  db.DrainAsync();
  FaultRegistry::Global().DisarmAll();

  AsyncPoolStats s = db.async()->Stats();
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
  // The pool is healthy: subsequent activations flow normally.
  Exec(db, "CREATE (:P)");
  db.DrainAsync();
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN COUNT(*) AS c"), 2);
}

}  // namespace
}  // namespace pgt
