// Property test of the dispatch path: for random trigger sets and random
// creation workloads, every trigger's fired count must equal the count an
// independent oracle computes from the workload alone. Exercises label
// dispatch, granularity batching, and statement boundaries together.

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

class DispatchProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DispatchProperty, FiredCountsMatchOracle) {
  Rng rng(GetParam());
  Database db;

  const std::vector<std::string> labels = {"A", "B", "C", "D"};

  // Random trigger set: per label, maybe an EACH and maybe an ALL trigger
  // (AFTER CREATE; counting side effects on distinct log labels).
  struct Spec {
    std::string name;
    std::string label;
    bool each;
  };
  std::vector<Spec> specs;
  for (const std::string& label : labels) {
    if (rng.NextBool(0.7)) {
      specs.push_back({"Each" + label, label, true});
    }
    if (rng.NextBool(0.7)) {
      specs.push_back({"All" + label, label, false});
    }
  }
  for (const Spec& s : specs) {
    std::string ddl = "CREATE TRIGGER " + s.name + " AFTER CREATE ON '" +
                      s.label + "' FOR " +
                      (s.each ? "EACH NODE" : "ALL NODES") +
                      " BEGIN CREATE (:Log" + s.name + ") END";
    ASSERT_TRUE(db.Execute(ddl).ok()) << ddl;
  }

  // Random workload: statements creating random multisets of labels.
  // Oracle: EACH fires once per created node of its label; ALL fires once
  // per statement that created >= 1 node of its label.
  std::map<std::string, int64_t> expected;  // trigger name -> fires
  for (const Spec& s : specs) expected[s.name] = 0;

  const int statements = 30;
  for (int stmt = 0; stmt < statements; ++stmt) {
    std::map<std::string, int> created;
    std::string query = "CREATE ";
    const int k = static_cast<int>(rng.NextInRange(1, 5));
    for (int i = 0; i < k; ++i) {
      const std::string& label = labels[rng.NextBelow(labels.size())];
      ++created[label];
      if (i > 0) query += ", ";
      query += "(:" + label + ")";
    }
    ASSERT_TRUE(db.Execute(query).ok()) << query;
    for (const Spec& s : specs) {
      auto it = created.find(s.label);
      if (it == created.end()) continue;
      expected[s.name] += s.each ? it->second : 1;
    }
  }

  for (const Spec& s : specs) {
    const TriggerStats& stats = db.stats().per_trigger[s.name];
    EXPECT_EQ(static_cast<int64_t>(stats.fired), expected[s.name])
        << s.name << " (seed " << GetParam() << ")";
    // Unconditional triggers: fired == considered.
    EXPECT_EQ(stats.fired, stats.considered) << s.name;
    // The side-effect count agrees too.
    auto r = db.Execute("MATCH (l:Log" + s.name +
                        ") RETURN COUNT(*) AS c");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_value(), expected[s.name]) << s.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

// Second invariant: under a mixed EACH/ALL + condition set, `considered`
// counts activations and `fired <= considered` always holds, and a
// condition that is identically false never fires.
class ConditionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConditionProperty, FiredNeverExceedsConsidered) {
  Rng rng(GetParam());
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TRIGGER Half AFTER CREATE ON 'A' "
                         "FOR EACH NODE WHEN NEW.v % 2 = 0 "
                         "BEGIN CREATE (:LogHalf) END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TRIGGER Never AFTER CREATE ON 'A' "
                         "FOR EACH NODE WHEN false "
                         "BEGIN CREATE (:LogNever) END")
                  .ok());
  int64_t even = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    const int64_t v = rng.NextInRange(0, 99);
    Params params;
    params["v"] = Value::Int(v);
    ASSERT_TRUE(db.Execute("CREATE (:A {v: $v})", params).ok());
    ++total;
    if (v % 2 == 0) ++even;
  }
  const TriggerStats& half = db.stats().per_trigger["Half"];
  const TriggerStats& never = db.stats().per_trigger["Never"];
  EXPECT_EQ(static_cast<int64_t>(half.considered), total);
  EXPECT_EQ(static_cast<int64_t>(half.fired), even);
  EXPECT_EQ(static_cast<int64_t>(never.considered), total);
  EXPECT_EQ(never.fired, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace pgt
