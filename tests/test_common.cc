// Unit tests for Status/Result, interning, string utilities, clock, rng.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/interner.h"
#include "src/common/macros.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/str_util.h"

namespace pgt {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::SyntaxError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kSyntaxError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "SyntaxError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Doubler(Result<int> in) {
  PGT_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(MacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  Result<int> err = Doubler(Status::Aborted("x"));
  EXPECT_EQ(err.status().code(), StatusCode::kAborted);
}

Status FailWhenNegative(int v) {
  auto check = [](int x) -> Status {
    if (x < 0) return Status::InvalidArgument("negative");
    return Status::OK();
  };
  PGT_RETURN_IF_ERROR(check(v));
  return Status::OK();
}

TEST(MacrosTest, ReturnIfError) {
  EXPECT_TRUE(FailWhenNegative(1).ok());
  EXPECT_EQ(FailWhenNegative(-1).code(), StatusCode::kInvalidArgument);
}

TEST(InternerTest, AssignsDenseIdsInFirstSeenOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.name(1), "b");
}

TEST(InternerTest, LookupWithoutInterning) {
  StringInterner interner;
  interner.Intern("x");
  EXPECT_EQ(interner.Lookup("x").value(), 0u);
  EXPECT_FALSE(interner.Lookup("y").has_value());
  EXPECT_EQ(interner.size(), 1u);  // Lookup must not intern
}

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToUpper("MiXeD_1"), "MIXED_1");
  EXPECT_EQ(ToLower("MiXeD_1"), "mixed_1");
  EXPECT_TRUE(EqualsIgnoreCase("match", "MATCH"));
  EXPECT_FALSE(EqualsIgnoreCase("match", "matches"));
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y \n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, EscapeSingleQuoted) {
  EXPECT_EQ(EscapeSingleQuoted("it's"), "it\\'s");
  EXPECT_EQ(EscapeSingleQuoted("a\\b"), "a\\\\b");
}

TEST(StrUtilTest, Indent) {
  EXPECT_EQ(Indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(Indent("a\n\nb", 2), "  a\n\n  b");  // blank lines unpadded
}

TEST(ClockTest, MonotoneAndDeterministic) {
  LogicalClock clock(100);
  EXPECT_EQ(clock.NextMicros(), 100);
  EXPECT_EQ(clock.NextMicros(), 101);
  EXPECT_EQ(clock.PeekMicros(), 102);
  clock.AdvanceMicros(10);
  EXPECT_EQ(clock.NextMicros(), 112);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, RangesRespectBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace pgt
