// Listing-level conformance: every Section 6.2 trigger parses, round-trips
// through the canonical DDL unparser, survives catalog validation, and
// (where an APOC/Memgraph counterpart exists) produces translation output
// whose inner statement is itself parseable Cypher — i.e., the generated
// code in Figures 2/3 style is well-formed, not just textual.

#include <gtest/gtest.h>

#include "src/covid/triggers.h"
#include "src/cypher/parser.h"
#include "src/translate/apoc_translator.h"
#include "src/translate/memgraph_translator.h"
#include "src/trigger/catalog.h"
#include "src/trigger/trigger_parser.h"

namespace pgt {
namespace {

class PaperListing : public ::testing::TestWithParam<int> {
 protected:
  static TriggerDef Get(int index) {
    auto ddl = covid::PaperTriggerDdl();
    auto r = TriggerDdlParser::ParseCreate(ddl[static_cast<size_t>(index)]);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }
};

TEST_P(PaperListing, ParsesWithExpectedShape) {
  TriggerDef def = Get(GetParam());
  EXPECT_EQ(def.name, covid::PaperTriggerNames()[GetParam()]);
  EXPECT_EQ(def.time, ActionTime::kAfter);  // all §6.2 triggers are AFTER
  EXPECT_FALSE(def.statement.clauses.empty());
}

TEST_P(PaperListing, RoundTripsThroughCanonicalDdl) {
  TriggerDef def = Get(GetParam());
  auto r = TriggerDdlParser::ParseCreate(def.ToDdl());
  ASSERT_TRUE(r.ok()) << def.ToDdl() << "\n-> " << r.status();
  EXPECT_EQ(r->ToDdl(), def.ToDdl());
}

TEST_P(PaperListing, PassesCatalogValidation) {
  EngineOptions options;
  TriggerCatalog catalog(&options);
  EXPECT_TRUE(catalog.Install(Get(GetParam())).ok());
}

TEST_P(PaperListing, ApocTranslationStatementIsValidCypher) {
  TriggerDef def = Get(GetParam());
  auto apoc = translate::TranslateToApoc(def);
  ASSERT_TRUE(apoc.ok()) << apoc.status();
  auto parsed = cypher::Parser::ParseQuery(apoc->statement);
  EXPECT_TRUE(parsed.ok()) << apoc->statement << "\n-> " << parsed.status();
  // The scheme's fixed parts (Figure 2).
  EXPECT_NE(apoc->statement.find("CALL apoc.do.when("), std::string::npos);
  EXPECT_NE(apoc->statement.find("YIELD value RETURN *"),
            std::string::npos);
}

TEST_P(PaperListing, MemgraphTranslationStatementIsValidCypher) {
  TriggerDef def = Get(GetParam());
  auto mg = translate::TranslateToMemgraph(def);
  ASSERT_TRUE(mg.ok()) << mg.status();
  auto parsed = cypher::Parser::ParseQuery(mg->statement);
  EXPECT_TRUE(parsed.ok()) << mg->statement << "\n-> " << parsed.status();
  EXPECT_NE(mg->statement.find("WHERE flag IS NOT NULL"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(SectionSixTwo, PaperListing,
                         ::testing::Range(0, 7));

TEST(PaperListingExtra, UnguardedRelocationParsesAndValidates) {
  auto r = TriggerDdlParser::ParseCreate(covid::UnguardedMoveTriggerDdl());
  ASSERT_TRUE(r.ok()) << r.status();
  EngineOptions options;
  TriggerCatalog catalog(&options);
  EXPECT_TRUE(catalog.Install(std::move(r).value()).ok());
}

TEST(PaperListingExtra, NamesAlignWithDdlList) {
  EXPECT_EQ(covid::PaperTriggerDdl().size(),
            covid::PaperTriggerNames().size());
}

}  // namespace
}  // namespace pgt
