// Tests for the transaction layer: delta capture, undo-log rollback, delta
// scopes, and ghost reads (src/tx).

#include "src/tx/transaction.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace pgt {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  GraphStore store_;
  TransactionManager manager_{&store_};

  std::unique_ptr<Transaction> Begin() {
    auto tx = manager_.Begin();
    EXPECT_TRUE(tx.ok());
    return std::move(tx).value();
  }
  void Finish(std::unique_ptr<Transaction> tx, bool commit) {
    if (commit) {
      EXPECT_TRUE(tx->Commit().ok());
    } else {
      EXPECT_TRUE(tx->Rollback().ok());
    }
    manager_.Release(tx.get());
  }
};

TEST_F(TransactionTest, SingleWriterEnforced) {
  auto tx = Begin();
  EXPECT_EQ(manager_.Begin().status().code(),
            StatusCode::kFailedPrecondition);
  Finish(std::move(tx), true);
  EXPECT_TRUE(manager_.Begin().ok());
}

TEST_F(TransactionTest, CreateNodeCapturedInDelta) {
  auto tx = Begin();
  NodeId id = tx->CreateNode({store_.InternLabel("A")}, {}).value();
  ASSERT_EQ(tx->AccumulatedDelta().created_nodes.size(), 1u);
  EXPECT_EQ(tx->AccumulatedDelta().created_nodes[0], id);
  Finish(std::move(tx), true);
}

TEST_F(TransactionTest, RollbackRemovesCreatedNode) {
  auto tx = Begin();
  NodeId id = tx->CreateNode({store_.InternLabel("A")}, {}).value();
  Finish(std::move(tx), false);
  EXPECT_FALSE(store_.NodeAlive(id));
  EXPECT_EQ(store_.NodeCount(), 0u);
}

TEST_F(TransactionTest, RollbackRestoresDeletedNodeWithProps) {
  const PropKeyId k = store_.InternPropKey("x");
  const LabelId a = store_.InternLabel("A");
  NodeId id = store_.CreateNode({a}, {{k, Value::Int(9)}});
  auto tx = Begin();
  ASSERT_TRUE(tx->DeleteNode(id, /*detach=*/false).ok());
  EXPECT_FALSE(store_.NodeAlive(id));
  Finish(std::move(tx), false);
  ASSERT_TRUE(store_.NodeAlive(id));
  EXPECT_EQ(store_.GetNodeProp(id, k).int_value(), 9);
  EXPECT_EQ(store_.NodesByLabel(a).size(), 1u);
}

TEST_F(TransactionTest, DetachDeleteRecordsRelImages) {
  const RelTypeId t = store_.InternRelType("R");
  NodeId a = store_.CreateNode({store_.InternLabel("A")}, {});
  NodeId b = store_.CreateNode({store_.InternLabel("B")}, {});
  ASSERT_TRUE(store_.CreateRel(a, t, b, {}).ok());
  auto tx = Begin();
  ASSERT_TRUE(tx->DeleteNode(a, /*detach=*/true).ok());
  EXPECT_EQ(tx->AccumulatedDelta().deleted_rels.size(), 1u);
  EXPECT_EQ(tx->AccumulatedDelta().deleted_nodes.size(), 1u);
  Finish(std::move(tx), false);
  // Rollback revives node first, then the relationship.
  EXPECT_TRUE(store_.NodeAlive(a));
  EXPECT_EQ(store_.RelsOf(a, Direction::kBoth, std::nullopt).size(), 1u);
}

TEST_F(TransactionTest, PropChangeRecordsOldAndNew) {
  const PropKeyId k = store_.InternPropKey("x");
  NodeId id = store_.CreateNode({store_.InternLabel("A")},
                                {{k, Value::Int(1)}});
  auto tx = Begin();
  ASSERT_TRUE(tx->SetNodeProp(id, k, Value::Int(2)).ok());
  const auto& changes = tx->AccumulatedDelta().assigned_node_props;
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].old_value.int_value(), 1);
  EXPECT_EQ(changes[0].new_value.int_value(), 2);
  Finish(std::move(tx), false);
  EXPECT_EQ(store_.GetNodeProp(id, k).int_value(), 1);  // rolled back
}

TEST_F(TransactionTest, SetNullActsAsRemoval) {
  const PropKeyId k = store_.InternPropKey("x");
  NodeId id = store_.CreateNode({store_.InternLabel("A")},
                                {{k, Value::Int(1)}});
  auto tx = Begin();
  ASSERT_TRUE(tx->SetNodeProp(id, k, Value::Null()).ok());
  EXPECT_TRUE(tx->AccumulatedDelta().assigned_node_props.empty());
  ASSERT_EQ(tx->AccumulatedDelta().removed_node_props.size(), 1u);
  Finish(std::move(tx), true);
  EXPECT_TRUE(store_.GetNodeProp(id, k).is_null());
}

TEST_F(TransactionTest, RemovingAbsentPropertyIsNoEvent) {
  const PropKeyId k = store_.InternPropKey("x");
  NodeId id = store_.CreateNode({store_.InternLabel("A")}, {});
  auto tx = Begin();
  ASSERT_TRUE(tx->RemoveNodeProp(id, k).ok());
  EXPECT_TRUE(tx->AccumulatedDelta().Empty());
  Finish(std::move(tx), true);
}

TEST_F(TransactionTest, LabelChangesCaptured) {
  const LabelId extra = store_.InternLabel("Extra");
  NodeId id = store_.CreateNode({store_.InternLabel("A")}, {});
  auto tx = Begin();
  ASSERT_TRUE(tx->AddLabel(id, extra).ok());
  ASSERT_TRUE(tx->RemoveLabel(id, extra).ok());
  EXPECT_EQ(tx->AccumulatedDelta().assigned_labels.size(), 1u);
  EXPECT_EQ(tx->AccumulatedDelta().removed_labels.size(), 1u);
  // Re-adding an already-present label is not an event.
  ASSERT_TRUE(tx->AddLabel(id, store_.InternLabel("A")).ok());
  EXPECT_EQ(tx->AccumulatedDelta().assigned_labels.size(), 1u);
  Finish(std::move(tx), false);
  const NodeRecord* n = store_.GetNode(id);
  EXPECT_EQ(n->labels.size(), 1u);
}

TEST_F(TransactionTest, GhostReadsAfterDelete) {
  const PropKeyId k = store_.InternPropKey("x");
  const LabelId a = store_.InternLabel("A");
  NodeId id = store_.CreateNode({a}, {{k, Value::String("keep")}});
  auto tx = Begin();
  ASSERT_TRUE(tx->DeleteNode(id, false).ok());
  EXPECT_EQ(tx->ReadNodeProp(id, k).string_value(), "keep");
  std::vector<LabelId> labels = tx->ReadNodeLabels(id);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], a);
  Finish(std::move(tx), true);
}

TEST_F(TransactionTest, DeltaScopesFoldIntoParent) {
  auto tx = Begin();
  ASSERT_TRUE(tx->CreateNode({store_.InternLabel("A")}, {}).ok());
  tx->PushDeltaScope();
  ASSERT_TRUE(tx->CreateNode({store_.InternLabel("B")}, {}).ok());
  GraphDelta inner = tx->PopDeltaScope();
  EXPECT_EQ(inner.created_nodes.size(), 1u);
  EXPECT_EQ(tx->AccumulatedDelta().created_nodes.size(), 2u);
  Finish(std::move(tx), true);
}

TEST_F(TransactionTest, CommitWithOpenScopeIsInternalError) {
  auto tx = Begin();
  tx->PushDeltaScope();
  EXPECT_EQ(tx->Commit().code(), StatusCode::kInternal);
  tx->PopDeltaScope();
  Finish(std::move(tx), true);
}

TEST_F(TransactionTest, OperationsAfterCommitFail) {
  auto tx = Begin();
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_FALSE(tx->CreateNode({}, {}).ok());
  EXPECT_FALSE(tx->Rollback().ok());
  manager_.Release(tx.get());
}

TEST(DeltaTest, MergeAndSummary) {
  GraphDelta a, b;
  a.created_nodes.push_back(NodeId{1});
  b.created_nodes.push_back(NodeId{2});
  b.assigned_labels.push_back(LabelChange{NodeId{2}, 0});
  a.MergeFrom(b);
  EXPECT_EQ(a.created_nodes.size(), 2u);
  EXPECT_EQ(a.ChangeCount(), 3u);
  EXPECT_FALSE(a.Empty());
  EXPECT_NE(a.Summary().find("+2n"), std::string::npos);
  a.Clear();
  EXPECT_TRUE(a.Empty());
}

// Property test: a random interleaving of mutations must roll back to the
// exact pre-transaction state (node/rel liveness, labels, properties).
class RollbackProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RollbackProperty, RandomMutationsUndoExactly) {
  GraphStore store;
  TransactionManager manager(&store);
  Rng rng(GetParam());
  const LabelId labels[] = {store.InternLabel("A"), store.InternLabel("B"),
                            store.InternLabel("C")};
  const PropKeyId keys[] = {store.InternPropKey("p"),
                            store.InternPropKey("q")};
  const RelTypeId type = store.InternRelType("R");

  // Base graph.
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) {
    nodes.push_back(store.CreateNode(
        {labels[i % 3]}, {{keys[0], Value::Int(i)}}));
  }
  std::vector<RelId> rels;
  for (int i = 0; i < 8; ++i) {
    rels.push_back(store
                       .CreateRel(nodes[rng.NextBelow(10)], type,
                                  nodes[rng.NextBelow(10)], {})
                       .value());
  }

  // Snapshot.
  auto snapshot = [&]() {
    std::string s;
    for (NodeId n : store.AllNodes()) {
      const NodeRecord* rec = store.GetNode(n);
      s += "n" + std::to_string(n.value) + "[";
      for (LabelId l : rec->labels) s += store.LabelName(l) + ",";
      s += "]{";
      for (const auto& [k, v] : rec->props) {
        s += store.PropKeyName(k) + "=" + v.ToString() + ",";
      }
      s += "} ";
    }
    for (RelId r : store.AllRels()) {
      const RelRecord* rec = store.GetRel(r);
      s += "r" + std::to_string(r.value) + "(" +
           std::to_string(rec->src.value) + "->" +
           std::to_string(rec->dst.value) + "){";
      for (const auto& [k, v] : rec->props) {
        s += store.PropKeyName(k) + "=" + v.ToString() + ",";
      }
      s += "} ";
    }
    return s;
  };
  const std::string before = snapshot();

  auto tx = std::move(manager.Begin()).value();
  for (int step = 0; step < 60; ++step) {
    switch (rng.NextBelow(8)) {
      case 0:
        ASSERT_TRUE(
            tx->CreateNode({labels[rng.NextBelow(3)]}, {}).ok());
        break;
      case 1: {
        NodeId n = nodes[rng.NextBelow(nodes.size())];
        if (store.NodeAlive(n)) {
          ASSERT_TRUE(tx->DeleteNode(n, /*detach=*/true).ok());
        }
        break;
      }
      case 2: {
        NodeId a = nodes[rng.NextBelow(nodes.size())];
        NodeId b = nodes[rng.NextBelow(nodes.size())];
        if (store.NodeAlive(a) && store.NodeAlive(b)) {
          ASSERT_TRUE(tx->CreateRel(a, type, b, {}).ok());
        }
        break;
      }
      case 3: {
        RelId r = rels[rng.NextBelow(rels.size())];
        if (store.RelAlive(r)) {
          ASSERT_TRUE(tx->DeleteRel(r).ok());
        }
        break;
      }
      case 4: {
        NodeId n = nodes[rng.NextBelow(nodes.size())];
        if (store.NodeAlive(n)) {
          ASSERT_TRUE(tx->SetNodeProp(n, keys[rng.NextBelow(2)],
                                      Value::Int(rng.NextInRange(0, 99)))
                          .ok());
        }
        break;
      }
      case 5: {
        NodeId n = nodes[rng.NextBelow(nodes.size())];
        if (store.NodeAlive(n)) {
          ASSERT_TRUE(tx->RemoveNodeProp(n, keys[rng.NextBelow(2)]).ok());
        }
        break;
      }
      case 6: {
        NodeId n = nodes[rng.NextBelow(nodes.size())];
        if (store.NodeAlive(n)) {
          ASSERT_TRUE(tx->AddLabel(n, labels[rng.NextBelow(3)]).ok());
        }
        break;
      }
      case 7: {
        RelId r = rels[rng.NextBelow(rels.size())];
        if (store.RelAlive(r)) {
          ASSERT_TRUE(tx->SetRelProp(r, keys[rng.NextBelow(2)],
                                     Value::String("w"))
                          .ok());
        }
        break;
      }
    }
  }
  ASSERT_TRUE(tx->Rollback().ok());
  manager.Release(tx.get());
  EXPECT_EQ(snapshot(), before) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace pgt
