// Realistic query corpus over a fixed social-graph fixture: end-to-end
// checks of query results (not just row counts) across joins, optional
// matches, variable-length paths, aggregation pipelines, and shaping.

#include <gtest/gtest.h>

#include "src/trigger/database.h"

namespace pgt {
namespace {

class QueryCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // People and friendships (diamond + a loner), employers, cities.
    Run("CREATE (:Person {name: 'ann', age: 34}), "
        "(:Person {name: 'bob', age: 28}), "
        "(:Person {name: 'cat', age: 41}), "
        "(:Person {name: 'dan', age: 23}), "
        "(:Person {name: 'eve', age: 51})");
    Run("MATCH (a:Person {name: 'ann'}), (b:Person {name: 'bob'}) "
        "CREATE (a)-[:Knows {since: 2015}]->(b)");
    Run("MATCH (a:Person {name: 'ann'}), (c:Person {name: 'cat'}) "
        "CREATE (a)-[:Knows {since: 2018}]->(c)");
    Run("MATCH (b:Person {name: 'bob'}), (d:Person {name: 'dan'}) "
        "CREATE (b)-[:Knows {since: 2020}]->(d)");
    Run("MATCH (c:Person {name: 'cat'}), (d:Person {name: 'dan'}) "
        "CREATE (c)-[:Knows {since: 2021}]->(d)");
    Run("CREATE (:Company {name: 'Initech'}), (:Company {name: 'Hooli'})");
    Run("MATCH (p:Person), (co:Company {name: 'Initech'}) "
        "WHERE p.name IN ['ann', 'bob'] CREATE (p)-[:WorksAt]->(co)");
    Run("MATCH (p:Person {name: 'cat'}), (co:Company {name: 'Hooli'}) "
        "CREATE (p)-[:WorksAt]->(co)");
  }

  cypher::QueryResult Run(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? std::move(r).value() : cypher::QueryResult{};
  }

  Database db_;
};

TEST_F(QueryCorpusTest, FriendsOfFriends) {
  cypher::QueryResult r = Run(
      "MATCH (a:Person {name: 'ann'})-[:Knows]->()-[:Knows]->(fof) "
      "RETURN DISTINCT fof.name AS name ORDER BY name");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "dan");
}

TEST_F(QueryCorpusTest, VariableLengthReachability) {
  cypher::QueryResult r = Run(
      "MATCH (a:Person {name: 'ann'})-[:Knows*1..3]->(p) "
      "RETURN DISTINCT p.name AS name ORDER BY name");
  ASSERT_EQ(r.rows.size(), 3u);  // bob, cat, dan
  EXPECT_EQ(r.rows[2][0].string_value(), "dan");
}

TEST_F(QueryCorpusTest, PathCountsPerEndpoint) {
  // dan is reachable from ann via two distinct paths (bob and cat).
  cypher::QueryResult r = Run(
      "MATCH (a:Person {name: 'ann'})-[:Knows*2]->(p) "
      "RETURN p.name AS name, COUNT(*) AS paths");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].int_value(), 2);
}

TEST_F(QueryCorpusTest, OptionalMatchKeepsLoners) {
  cypher::QueryResult r = Run(
      "MATCH (p:Person) OPTIONAL MATCH (p)-[:WorksAt]->(co:Company) "
      "RETURN p.name AS name, co.name AS employer ORDER BY name");
  ASSERT_EQ(r.rows.size(), 5u);
  // dan and eve have no employer -> null.
  EXPECT_TRUE(r.rows[3][1].is_null());
  EXPECT_TRUE(r.rows[4][1].is_null());
  EXPECT_EQ(r.rows[0][1].string_value(), "Initech");
}

TEST_F(QueryCorpusTest, GroupedAggregationWithHaving) {
  cypher::QueryResult r = Run(
      "MATCH (p:Person)-[:WorksAt]->(co:Company) "
      "WITH co.name AS employer, COUNT(p) AS headcount, "
      "AVG(p.age) AS avg_age "
      "WHERE headcount >= 2 "
      "RETURN employer, headcount, avg_age");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "Initech");
  EXPECT_EQ(r.rows[0][1].int_value(), 2);
  EXPECT_DOUBLE_EQ(r.rows[0][2].double_value(), 31.0);
}

TEST_F(QueryCorpusTest, CollectAndComprehension) {
  cypher::QueryResult r = Run(
      "MATCH (a:Person {name: 'ann'})-[:Knows]->(f) "
      "WITH COLLECT(f) AS friends "
      "RETURN [x IN friends WHERE x.age > 30 | x.name] AS seniors");
  ASSERT_EQ(r.rows.size(), 1u);
  const auto& list = r.rows[0][0].list_value();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].string_value(), "cat");
}

TEST_F(QueryCorpusTest, CaseBucketing) {
  cypher::QueryResult r = Run(
      "MATCH (p:Person) "
      "RETURN CASE WHEN p.age < 30 THEN 'young' "
      "WHEN p.age < 50 THEN 'mid' ELSE 'senior' END AS bucket, "
      "COUNT(*) AS n ORDER BY bucket");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].string_value(), "mid");
  EXPECT_EQ(r.rows[0][1].int_value(), 2);
  EXPECT_EQ(r.rows[1][0].string_value(), "senior");
  EXPECT_EQ(r.rows[2][0].string_value(), "young");
  EXPECT_EQ(r.rows[2][1].int_value(), 2);
}

TEST_F(QueryCorpusTest, ExistsAntiJoin) {
  cypher::QueryResult r = Run(
      "MATCH (p:Person) "
      "WHERE NOT EXISTS { MATCH (p)-[:Knows]->() } "
      "AND NOT EXISTS { MATCH ()-[:Knows]->(p) } "
      "RETURN p.name AS loner");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "eve");
}

TEST_F(QueryCorpusTest, RelationshipPropertyFilterOnPattern) {
  cypher::QueryResult r = Run(
      "MATCH (a)-[k:Knows]->(b) WHERE k.since >= 2020 "
      "RETURN a.name + '->' + b.name AS edge ORDER BY edge");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "bob->dan");
  EXPECT_EQ(r.rows[1][0].string_value(), "cat->dan");
}

TEST_F(QueryCorpusTest, UnwindCollectRoundTrip) {
  cypher::QueryResult r = Run(
      "MATCH (p:Person) WITH COLLECT(p.name) AS names "
      "UNWIND names AS n WITH n ORDER BY n DESC LIMIT 2 "
      "RETURN COLLECT(n) AS top");
  const auto& list = r.rows[0][0].list_value();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].string_value(), "eve");
  EXPECT_EQ(list[1].string_value(), "dan");
}

TEST_F(QueryCorpusTest, MergeIsIdempotentAcrossRuns) {
  for (int i = 0; i < 3; ++i) {
    Run("MERGE (c:City {name: 'Milan'}) ON CREATE SET c.fresh = true");
  }
  cypher::QueryResult r =
      Run("MATCH (c:City) RETURN COUNT(*) AS n, COLLECT(c.fresh) AS f");
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
  EXPECT_EQ(r.rows[0][1].list_value().size(), 1u);
}

TEST_F(QueryCorpusTest, UpdatePipelineWithForeach) {
  Run("MATCH (p:Person)-[:Knows]->(f) WITH p, COLLECT(f) AS friends "
      "FOREACH (x IN friends | SET x.popular = true)");
  cypher::QueryResult r = Run(
      "MATCH (p:Person {popular: true}) RETURN p.name AS name ORDER BY "
      "name");
  ASSERT_EQ(r.rows.size(), 3u);  // bob, cat, dan
}

TEST_F(QueryCorpusTest, ChainedWithStagesKeepScope) {
  cypher::QueryResult r = Run(
      "MATCH (p:Person) WITH p ORDER BY p.age DESC LIMIT 3 "
      "WITH COLLECT(p.name) AS oldest "
      "RETURN SIZE(oldest) AS n, oldest[0] AS first");
  EXPECT_EQ(r.rows[0][0].int_value(), 3);
  EXPECT_EQ(r.rows[0][1].string_value(), "eve");
}

TEST_F(QueryCorpusTest, UndirectedTraversalSeesBothDirections) {
  cypher::QueryResult r = Run(
      "MATCH (d:Person {name: 'dan'})-[:Knows]-(n) "
      "RETURN COUNT(n) AS degree");
  EXPECT_EQ(r.rows[0][0].int_value(), 2);  // bob and cat point at dan
}

}  // namespace
}  // namespace pgt
