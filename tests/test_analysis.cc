// Static-analysis subsystem tests (src/analysis, docs/analysis.md): the
// plan-grounded triggering graph, predicate pruning with the interference
// check, incremental-vs-rebuild equivalence, schema narrowing, the
// registration-time termination policy, SHOW TRIGGER ANALYSIS, the
// pgt.analyzeTriggers procedure, and recovery interaction.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "src/schema/pg_schema.h"
#include "src/trigger/database.h"
#include "src/wal/fault_fs.h"

namespace pgt {
namespace {

using EdgeSet = std::set<std::pair<std::string, std::string>>;

EngineOptions WarnOptions() {
  EngineOptions o;
  o.termination_policy = TerminationPolicy::kWarn;
  return o;
}

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() : db_(WarnOptions()) {}

  void Exec(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  Status ExecError(const std::string& q) { return db_.Execute(q).status(); }

  // Syncs the graph (Analyze calls EnsureSynced) and returns the edges.
  EdgeSet Edges() {
    (void)db_.AnalyzeTriggers();
    return db_.analyzer().Edges();
  }
  EdgeSet Pruned() {
    (void)db_.AnalyzeTriggers();
    return db_.analyzer().PrunedEdges();
  }

  Database db_;
};

// --- Plan-grounded edge derivation ----------------------------------------

TEST_F(AnalysisTest, EdgesFollowInferredWriteSets) {
  Exec("CREATE TRIGGER A AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  Exec("CREATE TRIGGER B AFTER CREATE ON 'Q' FOR EACH NODE "
       "BEGIN CREATE (:X) END");
  Exec("CREATE TRIGGER C AFTER CREATE ON 'Z' FOR EACH NODE "
       "BEGIN CREATE (:X) END");
  EdgeSet e = Edges();
  EXPECT_TRUE(e.count({"A", "B"}));
  EXPECT_FALSE(e.count({"B", "A"}));
  EXPECT_FALSE(e.count({"A", "C"}));
  EXPECT_FALSE(e.count({"B", "C"}));
}

TEST_F(AnalysisTest, SetNullIsRemovalNotSet) {
  // SET n.q = null removes the property: it must raise REMOVE, not SET.
  Exec("CREATE TRIGGER W AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.q = null END");
  Exec("CREATE TRIGGER OnSet AFTER SET ON 'L'.'q' FOR EACH NODE "
       "BEGIN CREATE (:X) END");
  Exec("CREATE TRIGGER OnRemove AFTER REMOVE ON 'L'.'q' FOR EACH NODE "
       "BEGIN CREATE (:X) END");
  EdgeSet e = Edges();
  EXPECT_TRUE(e.count({"W", "OnRemove"}));
  EXPECT_FALSE(e.count({"W", "OnSet"}));
}

TEST_F(AnalysisTest, NonLiteralSetMayAlsoRemove) {
  // SET n.q = NEW.x can install null (a removal) when x is absent.
  Exec("CREATE TRIGGER W AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.q = NEW.x END");
  Exec("CREATE TRIGGER OnSet AFTER SET ON 'L'.'q' FOR EACH NODE "
       "BEGIN CREATE (:X) END");
  Exec("CREATE TRIGGER OnRemove AFTER REMOVE ON 'L'.'q' FOR EACH NODE "
       "BEGIN CREATE (:X) END");
  EdgeSet e = Edges();
  EXPECT_TRUE(e.count({"W", "OnSet"}));
  EXPECT_TRUE(e.count({"W", "OnRemove"}));
}

TEST_F(AnalysisTest, BeforeWritesOnlyReachCommitTimeMonitors) {
  // BEFORE-trigger writes fold into the statement delta without
  // statement-level reprocessing; they surface only at the commit point.
  Exec("CREATE TRIGGER B1 BEFORE CREATE ON 'P' FOR EACH NODE "
       "BEGIN SET NEW.x = 1 END");
  Exec("CREATE TRIGGER Aft AFTER SET ON 'P'.'x' FOR EACH NODE "
       "BEGIN CREATE (:Y) END");
  Exec("CREATE TRIGGER Onc ONCOMMIT SET ON 'P'.'x' FOR EACH NODE "
       "BEGIN MATCH (n:Dummy) SET n.z = 1 END");
  EdgeSet e = Edges();
  EdgeSet p = Pruned();
  EXPECT_FALSE(e.count({"B1", "Aft"}));
  EXPECT_FALSE(p.count({"B1", "Aft"}));
  EXPECT_TRUE(e.count({"B1", "Onc"}));
}

// --- Predicate pruning and interference -----------------------------------

TEST_F(AnalysisTest, ConstantWriteRefutingGuardIsPruned) {
  Exec("CREATE TRIGGER A AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.v = 1 END");
  Exec("CREATE TRIGGER G AFTER SET ON 'L'.'v' FOR EACH NODE "
       "WHEN NEW.v > 10 BEGIN CREATE (:Y) END");
  EXPECT_FALSE(Edges().count({"A", "G"}));
  EXPECT_TRUE(Pruned().count({"A", "G"}));
}

TEST_F(AnalysisTest, SatisfyingConstantIsNotPruned) {
  Exec("CREATE TRIGGER A AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.v = 99 END");
  Exec("CREATE TRIGGER G AFTER SET ON 'L'.'v' FOR EACH NODE "
       "WHEN NEW.v > 10 BEGIN CREATE (:Y) END");
  EXPECT_TRUE(Edges().count({"A", "G"}));
}

TEST_F(AnalysisTest, InterferingWriterResurrectsPrunedEdge) {
  Exec("CREATE TRIGGER A AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.v = 1 END");
  Exec("CREATE TRIGGER G AFTER SET ON 'L'.'v' FOR EACH NODE "
       "WHEN NEW.v > 10 BEGIN CREATE (:Y) END");
  EXPECT_TRUE(Pruned().count({"A", "G"}));

  // C writes a statically-unknown value into L.v: another trigger may now
  // flip the property to a guard-satisfying value before G's WHEN runs, so
  // pruning A -> G is no longer sound.
  Exec("CREATE TRIGGER C AFTER CREATE ON 'P2' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.v = NEW.seed END");
  EXPECT_TRUE(Edges().count({"A", "G"}));
  EXPECT_TRUE(Edges().count({"C", "G"}));

  // Removing the interferer re-prunes; disabling it must too.
  Exec("DROP TRIGGER C");
  EXPECT_TRUE(Pruned().count({"A", "G"}));
  Exec("CREATE TRIGGER C AFTER CREATE ON 'P2' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.v = NEW.seed END");
  EXPECT_TRUE(Edges().count({"A", "G"}));
  Exec("ALTER TRIGGER C DISABLE");
  EXPECT_TRUE(Pruned().count({"A", "G"}));
  Exec("ALTER TRIGGER C ENABLE");
  EXPECT_TRUE(Edges().count({"A", "G"}));
}

TEST_F(AnalysisTest, SelfRefutingGuardDowngradesSelfLoop) {
  // The action installs a constant that refutes its own WHEN: the self-loop
  // is pruned and the set is reported terminating.
  Exec("CREATE TRIGGER Loop AFTER SET ON 'P'.'v' FOR EACH NODE "
       "WHEN NEW.v > 10 BEGIN SET NEW.v = 0 END");
  EXPECT_TRUE(Pruned().count({"Loop", "Loop"}));
  auto report = db_.AnalyzeTriggers();
  EXPECT_TRUE(report.guaranteed_termination) << report.ToString();
}

TEST_F(AnalysisTest, UnguardedCycleReported) {
  Exec("CREATE TRIGGER Ping AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  Exec("CREATE TRIGGER Pong AFTER CREATE ON 'Q' FOR EACH NODE "
       "BEGIN CREATE (:P) END");
  auto report = db_.AnalyzeTriggers();
  EXPECT_FALSE(report.guaranteed_termination);
  ASSERT_EQ(report.cycles.size(), 1u);
  EXPECT_FALSE(report.cycles[0].second);  // unguarded
  // Edge-order path closing back on the smallest member: A -> B -> A.
  ASSERT_EQ(report.cycles[0].first.size(), 3u);
  EXPECT_EQ(report.cycles[0].first.front(), report.cycles[0].first.back());
}

// --- Incremental maintenance ≡ full rebuild --------------------------------

TEST_F(AnalysisTest, IncrementalMaintenanceMatchesRebuild) {
  // Drive a DDL sequence that exercises create/drop/disable/enable plus
  // pruning and interference transitions; the incrementally-maintained
  // graph must equal a from-scratch rebuild at the end.
  Exec("CREATE TRIGGER A AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  Exec("CREATE TRIGGER B AFTER CREATE ON 'Q' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.v = 1 END");
  Exec("CREATE TRIGGER G AFTER SET ON 'L'.'v' FOR EACH NODE "
       "WHEN NEW.v > 10 BEGIN CREATE (:P) END");
  Exec("CREATE TRIGGER I AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN MATCH (n:L) SET n.v = NEW.seed END");
  Exec("CREATE TRIGGER D AFTER DELETE ON 'Q' FOR EACH NODE "
       "BEGIN CREATE (:P) END");
  Exec("DROP TRIGGER D");
  Exec("ALTER TRIGGER I DISABLE");
  Exec("ALTER TRIGGER B ENABLE");  // no-op enable of an enabled trigger
  Exec("CREATE TRIGGER E ONCOMMIT CREATE ON 'Q' FOR EACH NODE "
       "BEGIN MATCH (x:Q) DETACH DELETE x END");

  EdgeSet inc_edges = Edges();
  EdgeSet inc_pruned = Pruned();
  EXPECT_TRUE(inc_pruned.count({"B", "G"}));  // interferer disabled

  db_.analyzer().Invalidate();  // force a from-scratch rebuild
  EXPECT_EQ(Edges(), inc_edges);
  EXPECT_EQ(Pruned(), inc_pruned);
}

// --- Schema narrowing ------------------------------------------------------

TEST_F(AnalysisTest, StrictSchemaNarrowsWildcardWrites) {
  Exec("CREATE TRIGGER Sweep AFTER CREATE ON 'Tick' FOR EACH NODE "
       "BEGIN MATCH (x) DETACH DELETE x END");
  Exec("CREATE TRIGGER OnPerson AFTER DELETE ON 'Person' FOR EACH NODE "
       "BEGIN MATCH (n:Tick) SET n.z = 1 END");
  Exec("CREATE TRIGGER OnGhost AFTER DELETE ON 'Ghost' FOR EACH NODE "
       "BEGIN MATCH (n:Tick) SET n.z = 1 END");
  // Unconstrained: the wildcard delete may hit anything.
  EdgeSet e = Edges();
  EXPECT_TRUE(e.count({"Sweep", "OnPerson"}));
  EXPECT_TRUE(e.count({"Sweep", "OnGhost"}));

  auto schema = schema::ParseSchemaDdl(R"(
      CREATE GRAPH TYPE Tiny STRICT {
        (PersonType : Person {name STRING})
      })");
  ASSERT_TRUE(schema.ok()) << schema.status();
  db_.AttachSchema(std::move(schema).value());
  // STRICT: only declared labels exist, so the delete narrows to Person.
  e = Edges();
  EXPECT_TRUE(e.count({"Sweep", "OnPerson"}));
  EXPECT_FALSE(e.count({"Sweep", "OnGhost"}));

  db_.AttachSchema(std::nullopt);
  EXPECT_TRUE(Edges().count({"Sweep", "OnGhost"}));
}

// --- Termination policy ----------------------------------------------------

TEST(AnalysisPolicyTest, RejectBlocksUnguardedCycleNamingIt) {
  EngineOptions o;
  o.termination_policy = TerminationPolicy::kReject;
  Database db(o);
  ASSERT_TRUE(db.Execute("CREATE TRIGGER Ping AFTER CREATE ON 'P' "
                         "FOR EACH NODE BEGIN CREATE (:Q) END")
                  .ok());
  Status st = db.Execute("CREATE TRIGGER Pong AFTER CREATE ON 'Q' "
                         "FOR EACH NODE BEGIN CREATE (:P) END")
                  .status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unguarded triggering cycle"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("Pong -> Ping -> Pong"), std::string::npos)
      << st.message();
  // The offending trigger was rolled back: the catalog holds Ping only and
  // the cascade cannot loop.
  EXPECT_EQ(db.catalog().All().size(), 1u);
  ASSERT_TRUE(db.Execute("CREATE (:P)").ok());
}

TEST(AnalysisPolicyTest, RejectBlocksSelfLoop) {
  EngineOptions o;
  o.termination_policy = TerminationPolicy::kReject;
  Database db(o);
  Status st = db.Execute("CREATE TRIGGER Loop AFTER CREATE ON 'P' "
                         "FOR EACH NODE BEGIN CREATE (:P) END")
                  .status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Loop -> Loop"), std::string::npos)
      << st.message();
}

TEST(AnalysisPolicyTest, RejectAllowsGuardedCycle) {
  // Guarded cycles may converge (the paper's bed-availability example):
  // reject only fires when a cycle member lacks a WHEN guard.
  EngineOptions o;
  o.termination_policy = TerminationPolicy::kReject;
  Database db(o);
  ASSERT_TRUE(db.Execute("CREATE TRIGGER Ping AFTER CREATE ON 'P' "
                         "FOR EACH NODE WHEN NEW.v > 0 "
                         "BEGIN CREATE (:Q {v: NEW.v - 1}) END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TRIGGER Pong AFTER CREATE ON 'Q' "
                         "FOR EACH NODE WHEN NEW.v > 0 "
                         "BEGIN CREATE (:P {v: NEW.v - 1}) END")
                  .ok());
  EXPECT_EQ(db.catalog().All().size(), 2u);
}

TEST(AnalysisPolicyTest, RejectAllowsPrunedCycle) {
  // The cycle-closing edge is provably dead (constant refutes the guard):
  // no enabled cycle remains, so the CREATE is accepted.
  EngineOptions o;
  o.termination_policy = TerminationPolicy::kReject;
  Database db(o);
  ASSERT_TRUE(db.Execute("CREATE TRIGGER Damp AFTER SET ON 'P'.'v' "
                         "FOR EACH NODE WHEN NEW.v > 10 "
                         "BEGIN SET NEW.v = 0 END")
                  .ok());
  EXPECT_EQ(db.catalog().All().size(), 1u);
}

TEST(AnalysisPolicyTest, OffIsDefaultAndDoesNotEnforce) {
  Database db;  // termination_policy defaults to kOff
  ASSERT_TRUE(db.Execute("CREATE TRIGGER Loop AFTER CREATE ON 'P' "
                         "FOR EACH NODE BEGIN CREATE (:P) END")
                  .ok());
  // The cascade abort message stays byte-identical to the pre-analysis
  // engine: no static-analysis citation under kOff.
  Status st = db.Execute("CREATE (:P)").status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCascadeLimitExceeded);
  EXPECT_EQ(st.message().find("static analysis"), std::string::npos)
      << st.message();
}

TEST(AnalysisPolicyTest, WarnCascadeAbortCitesStaticCycle) {
  EngineOptions o;
  o.termination_policy = TerminationPolicy::kWarn;
  o.max_cascade_depth = 5;
  Database db(o);
  ASSERT_TRUE(db.Execute("CREATE TRIGGER Loop AFTER CREATE ON 'P' "
                         "FOR EACH NODE BEGIN CREATE (:P) END")
                  .ok());
  Status st = db.Execute("CREATE (:P)").status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCascadeLimitExceeded);
  EXPECT_NE(
      st.message().find("static analysis found triggering cycle Loop -> "
                        "Loop"),
      std::string::npos)
      << st.message();
}

// --- Surfaces: SHOW TRIGGER ANALYSIS and pgt.analyzeTriggers ---------------

TEST_F(AnalysisTest, ShowAnalysisIsDeterministicAndNameSorted) {
  Exec("CREATE TRIGGER Zeta AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  Exec("CREATE TRIGGER Alpha AFTER CREATE ON 'Q' FOR EACH NODE "
       "BEGIN CREATE (:P) END");
  Exec("CREATE TRIGGER Mid AFTER CREATE ON 'R' FOR EACH NODE "
       "WHEN NEW.v > 1 BEGIN CREATE (:S) END");
  auto r1 = db_.Execute("SHOW TRIGGER ANALYSIS");
  auto r2 = db_.Execute("SHOW TRIGGER ANALYSIS;");
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_EQ(r1.value().rows.size(), 3u);
  EXPECT_EQ(r1.value().rows[0][0].ToString(),
            r2.value().rows[0][0].ToString());
  EXPECT_EQ(r1.value().rows[0][0].string_value(), "Alpha");
  EXPECT_EQ(r1.value().rows[1][0].string_value(), "Mid");
  EXPECT_EQ(r1.value().rows[2][0].string_value(), "Zeta");
  // Verdict column reports the unguarded Alpha/Zeta cycle.
  const std::string verdict(r1.value().rows[0][8].string_value());
  EXPECT_NE(verdict.find("unguarded: 1"), std::string::npos) << verdict;
  // wakes column lists out-edges.
  EXPECT_EQ(r1.value().rows[0][6].string_value(), "Zeta");
}

TEST_F(AnalysisTest, AnalyzeTriggersProcedure) {
  Exec("CREATE TRIGGER A AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  auto r = db_.Execute("CALL pgt.analyzeTriggers() YIELD line RETURN line");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_FALSE(r.value().rows.empty());
  EXPECT_NE(r.value().rows[0][0].string_value().find("TRIGGER ANALYSIS"),
            std::string::npos);
}

// --- Recovery --------------------------------------------------------------

TEST(AnalysisRecoveryTest, RecoveryReplaysDdlPastRejectPolicy) {
  // A cycle installed under kOff must recover verbatim even when the
  // database reopens under kReject; only fresh CREATEs are policed.
  wal::MemVfs vfs;
  wal::WalOptions w;
  w.dir = "/db";
  w.vfs = &vfs;
  w.fsync = true;
  {
    auto db = Database::Open(w, EngineOptions{});
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Execute("CREATE TRIGGER Ping AFTER CREATE ON 'P' "
                               "FOR EACH NODE BEGIN CREATE (:Q) END")
                    .ok());
    ASSERT_TRUE((*db)->Execute("CREATE TRIGGER Pong AFTER CREATE ON 'Q' "
                               "FOR EACH NODE BEGIN CREATE (:P) END")
                    .ok());
  }
  EngineOptions strict;
  strict.termination_policy = TerminationPolicy::kReject;
  auto db = Database::Open(w, strict);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->catalog().All().size(), 2u);
  // The policy still applies to post-recovery DDL.
  Status st = (*db)->Execute("CREATE TRIGGER Loop AFTER CREATE ON 'R' "
                             "FOR EACH NODE BEGIN CREATE (:R) END")
                  .status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unguarded triggering cycle"),
            std::string::npos);
}

}  // namespace
}  // namespace pgt
