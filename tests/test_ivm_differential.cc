// Differential suite for the incremental WHEN-maintenance subsystem
// (src/ivm, docs/ivm.md): with EngineOptions::use_ivm on, supported
// single-MATCH WHEN pipelines are served from materialized per-trigger
// match state; off, every firing runs the full re-match. The two modes
// must produce byte-identical query results, firing order, per-trigger
// stats, and final graph state — across randomized CRUD + DDL workloads,
// rollbacks (staged maintenance must rewind with the undo log), epoch
// invalidation, and lifecycle transitions (disable / quarantine drop
// state). IvmManager::VerifyAgainstStore is the per-statement exactness
// oracle. Mirrors tests/test_plan_differential.cc.
//
// Deliberately uses default EngineOptions (budgets off): IVM-served
// firings skip the WHEN pipeline's per-row budget ticks, a documented
// divergence (docs/ivm.md).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/ivm/ivm_manager.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

EngineOptions Options(bool use_ivm) {
  EngineOptions opts;
  opts.use_ivm = use_ivm;
  return opts;
}

std::vector<std::string> FiringLog(Database& db) {
  std::vector<std::string> out;
  auto r = db.Execute("MATCH (l:Log) RETURN l.t");
  EXPECT_TRUE(r.ok()) << r.status();
  for (const auto& row : r->rows) out.emplace_back(row[0].string_value());
  return out;
}

/// Canonical dump of the whole graph, byte-compared across modes (same
/// shape as tests/test_plan_differential.cc).
std::string DumpGraph(Database& db) {
  std::ostringstream os;
  const GraphStore& store = db.store();
  for (NodeId id : store.AllNodes()) {
    const NodeRecord* n = store.GetNode(id);
    os << "n" << id.value << "[";
    for (LabelId l : n->labels) os << store.LabelName(l) << ",";
    os << "]{";
    for (const auto& [k, v] : n->props) {
      os << store.PropKeyName(k) << "=" << v.ToString() << ",";
    }
    os << "}\n";
  }
  for (RelId id : store.AllRels()) {
    const RelRecord* r = store.GetRel(id);
    os << "r" << id.value << ":" << store.RelTypeName(r->type) << " "
       << r->src.value << "->" << r->dst.value << "{";
    for (const auto& [k, v] : r->props) {
      os << store.PropKeyName(k) << "=" << v.ToString() << ",";
    }
    os << "}\n";
  }
  return os.str();
}

void ExpectSameStats(Database& a, Database& b) {
  const EngineStats& sa = a.stats();
  const EngineStats& sb = b.stats();
  ASSERT_EQ(sa.per_trigger.size(), sb.per_trigger.size());
  for (const auto& [name, ts] : sa.per_trigger) {
    auto it = sb.per_trigger.find(name);
    ASSERT_NE(it, sb.per_trigger.end()) << name;
    EXPECT_EQ(ts.considered, it->second.considered) << name;
    EXPECT_EQ(ts.fired, it->second.fired) << name;
    EXPECT_EQ(ts.action_rows, it->second.action_rows) << name;
    EXPECT_EQ(ts.errors, it->second.errors) << name;
  }
  EXPECT_EQ(sa.statements, sb.statements);
  EXPECT_EQ(sa.detached_runs, sb.detached_runs);
}

/// Runs one statement on both databases and asserts identical outcomes,
/// then checks the IVM database's maintained state against a full store
/// scan (the exactness oracle).
void Step(Database& on, Database& off, const std::string& stmt) {
  auto ron = on.Execute(stmt);
  auto roff = off.Execute(stmt);
  ASSERT_EQ(ron.ok(), roff.ok())
      << stmt << " -> " << ron.status() << " vs " << roff.status();
  if (ron.ok()) {
    EXPECT_EQ(ron->ToTable(), roff->ToTable()) << stmt;
  } else {
    EXPECT_EQ(ron.status().message(), roff.status().message()) << stmt;
  }
  Status oracle = on.ivm().VerifyAgainstStore();
  ASSERT_TRUE(oracle.ok()) << "after: " << stmt << " -> " << oracle;
}

// ---------------------------------------------------------------------------
// Trigger corpus: every supported IVM shape (label-only, constant
// predicates under both equality families, keyed equality against a
// transition expression, residual conjuncts) plus deliberately
// unsupported shapes that must take the permanent re-match fallback.

const char* kTriggerCorpus[] = {
    // Label-only membership.
    "CREATE TRIGGER TlabelOnly AFTER CREATE ON 'Probe' FOR EACH NODE "
    "WHEN MATCH (p:Person) "
    "BEGIN CREATE (:Log {t: 'lbl', n: p.score}) END",
    // Constant range predicate (WHERE comparison, both orientations).
    "CREATE TRIGGER Trange AFTER SET ON 'Person'.'score' FOR EACH NODE "
    "WHEN MATCH (p:Person) WHERE p.score > 50 AND 100 >= p.score "
    "BEGIN CREATE (:Log {t: 'rng', n: p.score}) END",
    // Inline literal property (Value::Equals family).
    "CREATE TRIGGER Tinline AFTER CREATE ON 'Probe' FOR EACH NODE "
    "WHEN MATCH (v:Person {tier: 'gold'}) "
    "BEGIN CREATE (:Log {t: 'inl', n: v.score}) END",
    // Keyed: equality against a NEW-derived expression (delta-join probe).
    "CREATE TRIGGER Tkeyed AFTER CREATE ON 'Order' FOR EACH NODE "
    "WHEN MATCH (c:Person {pid: NEW.owner}) "
    "BEGIN CREATE (:Log {t: 'key', n: c.score}) END",
    // Residual conjunct (x-free, evaluated once per firing).
    "CREATE TRIGGER Tresid AFTER CREATE ON 'Order' FOR EACH NODE "
    "WHEN MATCH (p:Person) WHERE p.score >= 0 AND NEW.amt > 10 "
    "BEGIN CREATE (:Log {t: 'res', n: p.score + NEW.amt}) END",
    // Unsupported: relationship chain — permanent fallback, must still be
    // byte-identical through the re-match path.
    "CREATE TRIGGER Tchain AFTER CREATE ON 'Order' FOR EACH NODE "
    "WHEN MATCH (a:Person)-[:KNOWS]->(b:Person) "
    "BEGIN CREATE (:Log {t: 'chn', n: a.score + b.score}) END",
    // Unsupported: aggregate pipeline.
    "CREATE TRIGGER Tagg ONCOMMIT CREATE ON 'Person' FOR ALL NODES "
    "WHEN MATCH (p:Person) WITH COUNT(*) AS n WHERE n >= 3 "
    "BEGIN CREATE (:Log {t: 'agg', n: n}) END",
};

void InstallCorpus(Database& db) {
  for (const char* ddl : kTriggerCorpus) {
    auto r = db.Execute(ddl);
    ASSERT_TRUE(r.ok()) << ddl << " -> " << r.status();
  }
}

TEST(IvmDifferential, CorpusMaintainedAndByteIdentical) {
  Database on(Options(true));
  Database off(Options(false));
  InstallCorpus(on);
  InstallCorpus(off);

  const char* kWorkload[] = {
      "CREATE (:Person {pid: 1, score: 60, tier: 'gold'})",
      "CREATE (:Person {pid: 2, score: 150, tier: 'silver'})",
      "CREATE (:Person {pid: 3, score: 75, tier: 'gold'})",
      "CREATE (:Probe)",  // fires label-only + inline triggers
      "CREATE (:Order {owner: 2, amt: 20})",
      "MATCH (p:Person {pid: 1}) SET p.score = 40",  // leaves Trange set
      "CREATE (:Probe)",
      "MATCH (p:Person {pid: 3}) SET p.score = 90",
      "CREATE (:Order {owner: 3, amt: 5})",  // residual false: no 'res' fire
      "MATCH (p:Person {pid: 2}) REMOVE p.score",  // null: out of every set
      "CREATE (:Order {owner: 99, amt: 50})",      // keyed probe misses
      "MATCH (p:Person {pid: 1}) DELETE p",
      "CREATE (:Probe)",
      "MATCH (a:Person {pid: 3}), (b:Person {pid: 2}) "
      "CREATE (a)-[:KNOWS]->(b)",
      "CREATE (:Order {owner: 3, amt: 11})",
  };
  for (const char* stmt : kWorkload) Step(on, off, stmt);

  const std::vector<std::string> log_on = FiringLog(on);
  EXPECT_FALSE(log_on.empty());
  EXPECT_EQ(log_on, FiringLog(off));
  ExpectSameStats(on, off);
  EXPECT_EQ(DumpGraph(on), DumpGraph(off));

  // The subsystem must actually be doing the work: supported shapes
  // reached kMaintained and served firings from state; unsupported shapes
  // are in permanent fallback with a reason.
  uint64_t total_served = 0;
  size_t maintained = 0;
  for (const ivm::TriggerIvmState* st : on.ivm().States()) {
    if (st->mode() == ivm::IvmMode::kMaintained) ++maintained;
    total_served += st->served();
  }
  EXPECT_GE(maintained, 4u);
  EXPECT_GT(total_served, 0u);
  const ivm::TriggerIvmState* chain = on.ivm().Find("Tchain");
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->mode(), ivm::IvmMode::kFallback);
  EXPECT_FALSE(chain->reason().empty());
  // The differential twin maintained nothing.
  EXPECT_TRUE(off.ivm().States().empty());
}

// ---------------------------------------------------------------------------
// Randomized CRUD + DDL. Statements are generated from templates with
// seeded random operands, so both databases see the exact same stream and
// every divergence is reproducible from the seed.

std::string RandomStatement(Rng& rng) {
  const int pid = static_cast<int>(rng.NextInRange(1, 8));
  const int score = static_cast<int>(rng.NextInRange(-20, 120));
  const char* tier = rng.NextBool(0.5) ? "gold" : "silver";
  std::ostringstream os;
  switch (rng.NextBelow(12)) {
    case 0:
      os << "CREATE (:Person {pid: " << pid << ", score: " << score
         << ", tier: '" << tier << "'})";
      break;
    case 1:
      os << "MATCH (p:Person {pid: " << pid << "}) SET p.score = " << score;
      break;
    case 2:
      // Cross-family numeric: double score exercises banded keys and the
      // Equals-vs-`=` recheck split.
      os << "MATCH (p:Person {pid: " << pid << "}) SET p.score = " << score
         << ".5";
      break;
    case 3:
      os << "MATCH (p:Person {pid: " << pid << "}) REMOVE p.score";
      break;
    case 4:
      os << "MATCH (p:Person {pid: " << pid << "}) SET p.pid = "
         << static_cast<int>(rng.NextInRange(1, 8));
      break;
    case 5:
      os << "MATCH (p:Person {pid: " << pid << "}) DELETE p";
      break;
    case 6:
      os << "MATCH (p:Person {pid: " << pid << "}) SET p:Vip";
      break;
    case 7:
      os << "MATCH (p:Vip {pid: " << pid << "}) REMOVE p:Vip";
      break;
    case 8:
      os << "CREATE (:Order {owner: " << pid << ", amt: "
         << static_cast<int>(rng.NextInRange(0, 30)) << "})";
      break;
    case 9:
      os << "CREATE (:Probe)";
      break;
    case 10:
      os << "MATCH (o:Order) WHERE o.amt < 5 DELETE o";
      break;
    default:
      os << "MATCH (p:Person) RETURN COUNT(*)";
      break;
  }
  return os.str();
}

TEST(IvmDifferential, RandomizedCrudAndDdlByteIdentical) {
  Database on(Options(true));
  Database off(Options(false));
  InstallCorpus(on);
  InstallCorpus(off);

  Rng rng(0xC0FFEE);
  for (int i = 0; i < 400; ++i) {
    Step(on, off, RandomStatement(rng));
    if (i % 50 == 17) {
      // Index DDL bumps the plan epoch mid-stream: compiled trigger plans
      // recompile and IVM states revalidate (same shape -> plan swap).
      const bool create = (i / 50) % 2 == 0;
      Step(on, off,
           create ? "CREATE INDEX ON :Person(score)"
                  : "DROP INDEX ON :Person(score)");
    }
    if (i % 90 == 33) {
      // Trigger DDL: disable/enable drops and lazily rebuilds state.
      Step(on, off, "ALTER TRIGGER Trange DISABLE");
      EXPECT_EQ(on.ivm().Find("Trange"), nullptr);
      Step(on, off, "ALTER TRIGGER Trange ENABLE");
    }
  }

  EXPECT_EQ(FiringLog(on), FiringLog(off));
  ExpectSameStats(on, off);
  EXPECT_EQ(DumpGraph(on), DumpGraph(off));

  // Epoch churn was observed and counted, not silently absorbed.
  auto stats = on.Execute(
      "CALL pgt.ivmStats() YIELD trigger_plan_compiles, "
      "trigger_plan_recompiles, adhoc_plan_recompiles, maintained "
      "RETURN trigger_plan_compiles, trigger_plan_recompiles, "
      "adhoc_plan_recompiles, maintained");
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->rows.size(), 1u);
  EXPECT_GT(stats->rows[0][0].int_value(), 0);  // compiles
  EXPECT_GT(stats->rows[0][1].int_value(), 0);  // epoch recompiles
  EXPECT_GT(stats->rows[0][2].int_value(), 0);  // ad-hoc cache recompiles
  EXPECT_GT(stats->rows[0][3].int_value(), 0);  // maintained states
}

TEST(IvmDifferential, RollbackDiscardsStagedMaintenance) {
  Database on(Options(true));
  Database off(Options(false));
  InstallCorpus(on);
  InstallCorpus(off);

  Step(on, off, "CREATE (:Person {pid: 1, score: 60, tier: 'gold'})");
  Step(on, off, "CREATE (:Probe)");  // builds + serves maintained state
  const std::string before_on = DumpGraph(on);

  // The transaction mutates watched state, then fails: the undo replay
  // must rewind the maintained sets alongside the graph.
  const std::vector<std::string> doomed = {
      "CREATE (:Person {pid: 2, score: 80, tier: 'gold'})",
      "MATCH (p:Person {pid: 1}) SET p.score = 10",
      "MATCH (p:Person {pid: 1}) REMOVE p:Person",
      "RETURN 1 / 0",
  };
  auto ron = on.ExecuteTx(doomed);
  auto roff = off.ExecuteTx(doomed);
  ASSERT_FALSE(ron.ok());
  ASSERT_FALSE(roff.ok());
  EXPECT_EQ(ron.status().message(), roff.status().message());

  Status oracle = on.ivm().VerifyAgainstStore();
  EXPECT_TRUE(oracle.ok()) << oracle;
  EXPECT_EQ(DumpGraph(on), before_on);
  EXPECT_EQ(DumpGraph(on), DumpGraph(off));

  // And the subsequent firings still agree.
  Step(on, off, "CREATE (:Probe)");
  Step(on, off, "CREATE (:Order {owner: 1, amt: 20})");
  EXPECT_EQ(FiringLog(on), FiringLog(off));
  ExpectSameStats(on, off);
}

TEST(IvmDifferential, QuarantineDropsStateAndStopsMaintenance) {
  EngineOptions opts;
  opts.use_ivm = true;
  opts.quarantine_threshold = 2;
  Database db(opts);

  // IVM-shaped WHEN, action that always fails at runtime.
  auto r = db.Execute(
      "CREATE TRIGGER Flaky AFTER CREATE ON 'Probe' FOR EACH NODE "
      "WHEN MATCH (p:Person) "
      "BEGIN CREATE (:Boom {v: 1 / 0}) END");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(db.Execute("CREATE (:Person {pid: 1})").ok());

  // Each failing firing fails its statement; the breaker counts anyway.
  for (int i = 0; i < 2; ++i) {
    auto probe = db.Execute("CREATE (:Probe)");
    EXPECT_FALSE(probe.ok());
  }
  const TriggerDef* def = db.catalog().Find("Flaky");
  ASSERT_NE(def, nullptr);
  EXPECT_FALSE(def->enabled);  // statement-time quarantine disables

  // Quarantine dropped the maintained state, and further mutations must
  // not maintain it (no stale watchers left behind).
  EXPECT_EQ(db.ivm().Find("Flaky"), nullptr);
  const uint64_t ops_before = db.ivm().counters().maintain_ops;
  ASSERT_TRUE(db.Execute("CREATE (:Person {pid: 2})").ok());
  EXPECT_EQ(db.ivm().counters().maintain_ops, ops_before);

  // Manual re-enable: the state rebuilds lazily at the next firing.
  ASSERT_TRUE(db.Execute("ALTER TRIGGER Flaky ENABLE").ok());
  EXPECT_EQ(db.ivm().Find("Flaky"), nullptr);
  EXPECT_FALSE(db.Execute("CREATE (:Probe)").ok());  // fires (and fails)
  const ivm::TriggerIvmState* st = db.ivm().Find("Flaky");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->mode(), ivm::IvmMode::kMaintained);
  EXPECT_EQ(st->tuples(), 2u);
}

TEST(IvmDifferential, StateCapDegradesInsteadOfGrowing) {
  EngineOptions opts;
  opts.use_ivm = true;
  opts.max_ivm_state_bytes = 64;  // a handful of unkeyed entries
  Database capped(opts);
  Database off(Options(false));
  InstallCorpus(capped);
  InstallCorpus(off);

  for (int i = 1; i <= 32; ++i) {
    std::ostringstream os;
    os << "CREATE (:Person {pid: " << i << ", score: " << 40 + i
       << ", tier: 'gold'})";
    Step(capped, off, os.str());
    if (i % 8 == 0) Step(capped, off, "CREATE (:Probe)");
  }

  // At least one state blew the cap and degraded to re-match; results
  // stayed identical throughout (Step checks per statement).
  EXPECT_GT(capped.ivm().counters().degradations, 0u);
  bool saw_degraded = false;
  for (const ivm::TriggerIvmState* st : capped.ivm().States()) {
    if (st->mode() == ivm::IvmMode::kDegraded) {
      saw_degraded = true;
      EXPECT_EQ(st->tuples(), 0u);  // containers dropped, not kept
      EXPECT_FALSE(st->reason().empty());
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_EQ(FiringLog(capped), FiringLog(off));
  EXPECT_EQ(DumpGraph(capped), DumpGraph(off));
}

TEST(IvmDifferential, DropTriggerUnregistersState) {
  Database db(Options(true));
  InstallCorpus(db);
  ASSERT_TRUE(db.Execute("CREATE (:Person {pid: 1, score: 60})").ok());
  ASSERT_TRUE(db.Execute("CREATE (:Probe)").ok());
  ASSERT_NE(db.ivm().Find("TlabelOnly"), nullptr);
  ASSERT_TRUE(db.Execute("DROP TRIGGER TlabelOnly").ok());
  EXPECT_EQ(db.ivm().Find("TlabelOnly"), nullptr);
  Status oracle = db.ivm().VerifyAgainstStore();
  EXPECT_TRUE(oracle.ok()) << oracle;
}

}  // namespace
}  // namespace pgt
