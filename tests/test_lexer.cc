// Tests for the Cypher lexer.

#include "src/cypher/lexer.h"

#include <gtest/gtest.h>

namespace pgt::cypher {
namespace {

std::vector<Token> Lex(const std::string& text) {
  auto r = Lexer::Tokenize(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  std::vector<Token> toks = Lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywordsAreIdents) {
  std::vector<Token> toks = Lex("MATCH foo _bar Baz9");
  ASSERT_EQ(toks.size(), 5u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(toks[i].type, TokenType::kIdent);
  EXPECT_EQ(toks[0].text, "MATCH");
  EXPECT_EQ(toks[2].text, "_bar");
}

TEST(LexerTest, SingleAndDoubleQuotedStrings) {
  std::vector<Token> toks = Lex("'abc' \"def\"");
  EXPECT_EQ(toks[0].type, TokenType::kString);
  EXPECT_EQ(toks[0].text, "abc");
  EXPECT_EQ(toks[1].text, "def");
}

TEST(LexerTest, StringEscapes) {
  std::vector<Token> toks = Lex(R"('it\'s a \\ test\n')");
  EXPECT_EQ(toks[0].text, "it's a \\ test\n");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(Lexer::Tokenize("'abc").status().code(),
            StatusCode::kSyntaxError);
}

TEST(LexerTest, BacktickIdentifiers) {
  std::vector<Token> toks = Lex("`weird name`");
  EXPECT_EQ(toks[0].type, TokenType::kIdent);
  EXPECT_EQ(toks[0].text, "weird name");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  std::vector<Token> toks = Lex("42 3.25 1e3 2E-2");
  EXPECT_EQ(toks[0].type, TokenType::kInt);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.25);
  EXPECT_EQ(toks[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 0.02);
}

TEST(LexerTest, RangeDotsDoNotEatIntoFloats) {
  // "1..3" must lex as INT DOTDOT INT (variable-length bounds).
  std::vector<Token> toks = Lex("1..3");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].type, TokenType::kInt);
  EXPECT_EQ(toks[1].type, TokenType::kDotDot);
  EXPECT_EQ(toks[2].type, TokenType::kInt);
}

TEST(LexerTest, Parameters) {
  std::vector<Token> toks = Lex("$name $x2");
  EXPECT_EQ(toks[0].type, TokenType::kParam);
  EXPECT_EQ(toks[0].text, "name");
  EXPECT_EQ(toks[1].text, "x2");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  std::vector<Token> toks =
      Lex("( ) [ ] { } , : ; . .. | + - * / % ^ = <> < <= > >= +=");
  std::vector<TokenType> expect = {
      TokenType::kLParen,  TokenType::kRParen,    TokenType::kLBracket,
      TokenType::kRBracket, TokenType::kLBrace,   TokenType::kRBrace,
      TokenType::kComma,   TokenType::kColon,     TokenType::kSemicolon,
      TokenType::kDot,     TokenType::kDotDot,    TokenType::kPipe,
      TokenType::kPlus,    TokenType::kMinus,     TokenType::kStar,
      TokenType::kSlash,   TokenType::kPercent,   TokenType::kCaret,
      TokenType::kEq,      TokenType::kNeq,       TokenType::kLt,
      TokenType::kLe,      TokenType::kGt,        TokenType::kGe,
      TokenType::kPlusEq,  TokenType::kEnd};
  ASSERT_EQ(toks.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(toks[i].type, expect[i]) << "token " << i;
  }
}

TEST(LexerTest, ArrowsStaySplit) {
  // "<-" and "->" are not fused; the parser decides by context.
  std::vector<Token> toks = Lex("(a)-[:R]->(b)<-[:S]-(c)");
  int lt = 0, gt = 0, minus = 0;
  for (const Token& t : toks) {
    if (t.type == TokenType::kLt) ++lt;
    if (t.type == TokenType::kGt) ++gt;
    if (t.type == TokenType::kMinus) ++minus;
  }
  EXPECT_EQ(lt, 1);
  EXPECT_EQ(gt, 1);
  EXPECT_EQ(minus, 4);
}

TEST(LexerTest, LineComments) {
  std::vector<Token> toks = Lex("a // comment\n b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, BlockComments) {
  std::vector<Token> toks = Lex("a /* multi\nline */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Lexer::Tokenize("a /* oops").ok());
}

TEST(LexerTest, PositionsTrackLinesAndColumns) {
  std::vector<Token> toks = Lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto st = Lexer::Tokenize("a ? b").status();
  EXPECT_EQ(st.code(), StatusCode::kSyntaxError);
  EXPECT_NE(st.message().find("1:3"), std::string::npos);
}

}  // namespace
}  // namespace pgt::cypher
