// Cross-module integration tests: mixed trigger sets over realistic flows,
// runtime swapping, survey registry, and whole-pipeline sanity.

#include <gtest/gtest.h>

#include "src/covid/generator.h"
#include "src/covid/triggers.h"
#include "src/covid/workload.h"
#include "src/emul/apoc_emulator.h"
#include "src/survey/capability_registry.h"
#include "src/termination/triggering_graph.h"
#include "src/translate/apoc_translator.h"

namespace pgt {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void Exec(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  int64_t Count(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  Database db_;
};

TEST_F(IntegrationTest, MixedActionTimesOnOneEvent) {
  Exec("CREATE TRIGGER B BEFORE CREATE ON 'P' FOR EACH NODE "
       "WHEN NEW.v IS NULL BEGIN SET NEW.v = 0 END");
  Exec("CREATE TRIGGER A AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:AfterMark {v: NEW.v}) END");
  Exec("CREATE TRIGGER C ONCOMMIT CREATE ON 'P' FOR ALL NODES "
       "BEGIN CREATE (:CommitMark {n: SIZE(NEWNODES)}) END");
  Exec("CREATE TRIGGER D DETACHED CREATE ON 'P' FOR ALL NODES "
       "BEGIN CREATE (:DetachedMark) END");
  Exec("CREATE (:P), (:P {v: 9})");
  // BEFORE conditioned the NEW state; AFTER saw the conditioned value.
  EXPECT_EQ(Count("MATCH (m:AfterMark {v: 0}) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (m:AfterMark {v: 9}) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (m:CommitMark {n: 2}) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (m:DetachedMark) RETURN COUNT(*) AS c"), 1);
}

TEST_F(IntegrationTest, CascadeAcrossActionTimes) {
  // AFTER creates Q; ONCOMMIT on Q creates R; DETACHED on R logs.
  Exec("CREATE TRIGGER S1 AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  Exec("CREATE TRIGGER S2 ONCOMMIT CREATE ON 'Q' FOR EACH NODE "
       "BEGIN CREATE (:R) END");
  Exec("CREATE TRIGGER S3 DETACHED CREATE ON 'R' FOR EACH NODE "
       "BEGIN CREATE (:Audit) END");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (q:Q) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (r:R) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (a:Audit) RETURN COUNT(*) AS c"), 1);
}

TEST_F(IntegrationTest, InferencePathChainCascades) {
  // The Section 5.1 motivation: "inferring properties of paths of
  // arbitrary length" needs correct cascading. Reachability propagation:
  // setting reach on a node propagates to its successors, transitively.
  Exec("CREATE (:N {id: 1})-[:E]->(:N {id: 2})");
  Exec("MATCH (b:N {id: 2}) CREATE (b)-[:E]->(:N {id: 3})");
  Exec("MATCH (c:N {id: 3}) CREATE (c)-[:E]->(:N {id: 4})");
  Exec("CREATE TRIGGER Propagate AFTER SET ON 'N'.'reach' FOR EACH NODE "
       "WHEN MATCH (NEW)-[:E]->(next:N) WHERE next.reach IS NULL "
       "BEGIN SET next.reach = true END");
  Exec("MATCH (n:N {id: 1}) SET n.reach = true");
  EXPECT_EQ(Count("MATCH (n:N) WHERE n.reach = true RETURN COUNT(*) AS c"),
            4);
}

TEST_F(IntegrationTest, NativeVersusApocOnInferenceChain) {
  // The same chain under APOC emulation stops after one step (cascade
  // blocked), reproducing the Section 5.1 limitation.
  Database apoc_db;
  auto owner = std::make_unique<emul::ApocEmulator>(&apoc_db);
  emul::ApocEmulator* apoc = owner.get();
  apoc_db.SetRuntime(std::move(owner));
  ASSERT_TRUE(apoc_db
                  .Execute("CREATE (:N {id: 1})-[:E]->(:N {id: 2})")
                  .ok());
  ASSERT_TRUE(apoc_db
                  .Execute("MATCH (b:N {id: 2}) CREATE (b)-[:E]->"
                           "(:N {id: 3})")
                  .ok());
  ASSERT_TRUE(
      apoc
          ->Install("propagate",
                    "UNWIND keys($assignedNodeProperties) AS k "
                    "UNWIND $assignedNodeProperties[k] AS aProp "
                    "WITH aProp.node AS n "
                    "MATCH (n)-[:E]->(next:N) WHERE next.reach IS NULL "
                    "SET next.reach = true",
                    "afterAsync")
          .ok());
  ASSERT_TRUE(
      apoc_db.Execute("MATCH (n:N {id: 1}) SET n.reach = true").ok());
  auto r = apoc_db.Execute(
      "MATCH (n:N) WHERE n.reach = true RETURN COUNT(*) AS c");
  ASSERT_TRUE(r.ok());
  // One step only: node 1 (user) + node 2 (trigger); node 3 never marked
  // because trigger transactions never re-activate triggers.
  EXPECT_EQ(r->rows[0][0].int_value(), 2);
}

TEST_F(IntegrationTest, RuntimeSwapRestoresNativeEngine) {
  auto owner = std::make_unique<emul::ApocEmulator>(&db_);
  db_.SetRuntime(std::move(owner));
  EXPECT_STREQ(db_.runtime().name(), "apoc-emulation");
  db_.SetRuntime(nullptr);
  EXPECT_STREQ(db_.runtime().name(), "pg-triggers");
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Log) END");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
}

TEST_F(IntegrationTest, TerminationAnalysisOverInstalledCatalog) {
  Exec("CREATE TRIGGER Ping AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  Exec("CREATE TRIGGER Pong AFTER CREATE ON 'Q' FOR EACH NODE "
       "BEGIN CREATE (:P) END");
  termination::TriggeringGraph g =
      termination::TriggeringGraph::Build(db_.catalog().All());
  auto report = g.Analyze();
  EXPECT_FALSE(report.guaranteed_termination);
  ASSERT_EQ(report.cycles.size(), 1u);
  // And the runtime backstop catches the actual runaway.
  db_.options().max_cascade_depth = 10;
  auto st = db_.Execute("CREATE (:P)");
  EXPECT_EQ(st.status().code(), StatusCode::kCascadeLimitExceeded);
}

TEST_F(IntegrationTest, Table1RegistryMatchesPaper) {
  const auto& systems = survey::Table1Systems();
  EXPECT_EQ(systems.size(), 15u);
  int graph_triggers = 0, relational_triggers = 0, listeners = 0;
  for (const auto& s : systems) {
    if (s.triggers_graph != survey::Support::kNone) ++graph_triggers;
    if (s.triggers_relational != survey::Support::kNone) {
      ++relational_triggers;
    }
    if (s.event_listener != survey::Support::kNone) ++listeners;
  }
  // Paper Table 1: only Neo4j and Memgraph have graph triggers; the three
  // mixed-relational systems have relational triggers; seven systems
  // expose event listeners (JanusGraph, Dgraph, Neptune, Stardog,
  // Cosmos DB, OrientDB, ArangoDB).
  EXPECT_EQ(graph_triggers, 2);
  EXPECT_EQ(relational_triggers, 3);
  EXPECT_EQ(listeners, 7);
  std::string table = survey::RenderTable1();
  EXPECT_NE(table.find("Neo4j"), std::string::npos);
  EXPECT_NE(table.find("ArangoDB"), std::string::npos);
}

TEST_F(IntegrationTest, CovidScenarioWithTranslatedTriggersUnderApoc) {
  // Full pipeline: generate data, translate two paper triggers to APOC,
  // run a surveillance slice under the APOC emulator.
  Database apoc_db;
  covid::GenerateCovidData(apoc_db.store());
  auto owner = std::make_unique<emul::ApocEmulator>(&apoc_db);
  emul::ApocEmulator* apoc = owner.get();
  apoc_db.SetRuntime(std::move(owner));
  for (const std::string& ddl : covid::PaperTriggerDdl()) {
    auto def = TriggerDdlParser::ParseCreate(ddl);
    ASSERT_TRUE(def.ok());
    if (def->name != "NewCriticalMutation" &&
        def->name != "WhoDesignationChange") {
      continue;
    }
    auto translated = translate::TranslateToApoc(def.value());
    ASSERT_TRUE(translated.ok()) << translated.status();
    ASSERT_TRUE(apoc->Install(*translated).ok());
  }
  ASSERT_TRUE(
      covid::RegisterMutation(apoc_db, "Spike:Z1", "Spike", true).ok());
  ASSERT_TRUE(covid::ChangeWhoDesignation(apoc_db, "B.1.1", "Kappa").ok());
  ASSERT_TRUE(covid::ChangeWhoDesignation(apoc_db, "B.1.1", "Delta").ok());
  auto alerts = covid::CountAlerts(apoc_db);
  ASSERT_TRUE(alerts.ok());
  // One critical-mutation alert plus one or two designation-change alerts
  // (the generator may have pre-assigned a designation to B.1.1, in which
  // case the first change also fires).
  EXPECT_GE(*alerts, 2);
  EXPECT_LE(*alerts, 3);
}

TEST_F(IntegrationTest, StressManyTriggersManyStatements) {
  for (int i = 0; i < 16; ++i) {
    Exec("CREATE TRIGGER T" + std::to_string(i) +
         " AFTER CREATE ON 'P" + std::to_string(i % 4) +
         "' FOR EACH NODE BEGIN CREATE (:Log {t: " + std::to_string(i) +
         "}) END");
  }
  for (int i = 0; i < 20; ++i) {
    Exec("CREATE (:P" + std::to_string(i % 4) + ")");
  }
  // 4 triggers per label x 20 statements / 4 labels = 5 events each.
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 16 * 5);
}

}  // namespace
}  // namespace pgt
