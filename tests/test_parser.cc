// Tests for the Cypher parser: clause structure, patterns, expressions,
// unparse round-trips, and error reporting.

#include "src/cypher/parser.h"

#include <gtest/gtest.h>

namespace pgt::cypher {
namespace {

Query Parse(const std::string& text) {
  auto r = Parser::ParseQuery(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return std::move(r).value();
}

ExprPtr ParseExpr(const std::string& text) {
  auto r = Parser::ParseExpressionText(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return std::move(r).value();
}

TEST(ParserTest, SimpleMatchReturn) {
  Query q = Parse("MATCH (n:Person) RETURN n");
  ASSERT_EQ(q.clauses.size(), 2u);
  EXPECT_EQ(q.clauses[0]->kind, Clause::Kind::kMatch);
  EXPECT_EQ(q.clauses[1]->kind, Clause::Kind::kReturn);
  const NodePattern& np = q.clauses[0]->pattern.parts[0].first;
  EXPECT_EQ(np.var, "n");
  ASSERT_EQ(np.labels.size(), 1u);
  EXPECT_EQ(np.labels[0], "Person");
}

TEST(ParserTest, MultiLabelAndProps) {
  Query q = Parse("MATCH (p:A:B {x: 1, y: 'z'}) RETURN p");
  const NodePattern& np = q.clauses[0]->pattern.parts[0].first;
  EXPECT_EQ(np.labels.size(), 2u);
  EXPECT_EQ(np.props.size(), 2u);
  EXPECT_EQ(np.props[0].first, "x");
}

TEST(ParserTest, RelationshipDirections) {
  Query q = Parse("MATCH (a)-[r:R]->(b)<-[:S]-(c)--(d) RETURN a");
  const auto& chain = q.clauses[0]->pattern.parts[0].chain;
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].first.direction, PatternDirection::kLeftToRight);
  EXPECT_EQ(chain[0].first.var, "r");
  EXPECT_EQ(chain[1].first.direction, PatternDirection::kRightToLeft);
  EXPECT_EQ(chain[2].first.direction, PatternDirection::kUndirected);
  EXPECT_TRUE(chain[2].first.types.empty());
}

TEST(ParserTest, RelationshipTypeAlternatives) {
  Query q = Parse("MATCH (a)-[r:R1|R2|R3]-(b) RETURN r");
  EXPECT_EQ(q.clauses[0]->pattern.parts[0].chain[0].first.types.size(), 3u);
}

TEST(ParserTest, VariableLengthForms) {
  Query q = Parse("MATCH (a)-[:R*]->(b), (c)-[:R*2]->(d), (e)-[:R*1..3]->(f),"
                  " (g)-[:R*..4]->(h) RETURN a");
  const Pattern& p = q.clauses[0]->pattern;
  ASSERT_EQ(p.parts.size(), 4u);
  const RelPattern& any = p.parts[0].chain[0].first;
  EXPECT_TRUE(any.var_length);
  EXPECT_EQ(any.min_hops, 1);
  EXPECT_EQ(any.max_hops, kMaxHopsUnbounded);
  const RelPattern& exact = p.parts[1].chain[0].first;
  EXPECT_EQ(exact.min_hops, 2);
  EXPECT_EQ(exact.max_hops, 2);
  const RelPattern& range = p.parts[2].chain[0].first;
  EXPECT_EQ(range.min_hops, 1);
  EXPECT_EQ(range.max_hops, 3);
  const RelPattern& capped = p.parts[3].chain[0].first;
  EXPECT_EQ(capped.min_hops, 1);
  EXPECT_EQ(capped.max_hops, 4);
}

TEST(ParserTest, WhereAttachesToMatch) {
  Query q = Parse("MATCH (n) WHERE n.age > 18 RETURN n");
  EXPECT_NE(q.clauses[0]->where, nullptr);
}

TEST(ParserTest, OptionalMatch) {
  Query q = Parse("OPTIONAL MATCH (n:A) RETURN n");
  EXPECT_TRUE(q.clauses[0]->optional_match);
}

TEST(ParserTest, WithAggregationOrderSkipLimitWhere) {
  Query q = Parse(
      "MATCH (n) WITH n.dept AS dept, COUNT(*) AS c "
      "ORDER BY c DESC SKIP 1 LIMIT 5 WHERE c > 2 RETURN dept");
  const Clause& with = *q.clauses[1];
  EXPECT_EQ(with.kind, Clause::Kind::kWith);
  ASSERT_EQ(with.items.size(), 2u);
  EXPECT_EQ(with.items[0].alias, "dept");
  ASSERT_EQ(with.order_by.size(), 1u);
  EXPECT_FALSE(with.order_by[0].ascending);
  EXPECT_NE(with.skip, nullptr);
  EXPECT_NE(with.limit, nullptr);
  EXPECT_NE(with.where, nullptr);
}

TEST(ParserTest, ReturnStarAndDistinct) {
  EXPECT_TRUE(Parse("MATCH (n) RETURN *").clauses[1]->return_star);
  EXPECT_TRUE(Parse("MATCH (n) RETURN DISTINCT n").clauses[1]->distinct);
}

TEST(ParserTest, DefaultAliasIsExpressionText) {
  Query q = Parse("MATCH (n) RETURN n.age");
  EXPECT_EQ(q.clauses[1]->items[0].alias, "n.age");
}

TEST(ParserTest, CreateMergeDeleteSetRemove) {
  Query q = Parse(
      "MATCH (a:A), (b:B) "
      "CREATE (a)-[:R {w: 1}]->(b) "
      "MERGE (c:C {k: 1}) ON CREATE SET c.fresh = true ON MATCH SET "
      "c.seen = true "
      "SET a.x = 1, b:Extra "
      "REMOVE a.x, b:Extra "
      "DETACH DELETE a, b");
  ASSERT_EQ(q.clauses.size(), 6u);
  EXPECT_EQ(q.clauses[1]->kind, Clause::Kind::kCreate);
  const Clause& merge = *q.clauses[2];
  EXPECT_EQ(merge.kind, Clause::Kind::kMerge);
  EXPECT_EQ(merge.on_create.size(), 1u);
  EXPECT_EQ(merge.on_match.size(), 1u);
  const Clause& set = *q.clauses[3];
  ASSERT_EQ(set.set_items.size(), 2u);
  EXPECT_EQ(set.set_items[0].kind, SetItem::Kind::kProperty);
  EXPECT_EQ(set.set_items[1].kind, SetItem::Kind::kLabels);
  const Clause& rem = *q.clauses[4];
  ASSERT_EQ(rem.remove_items.size(), 2u);
  EXPECT_EQ(rem.remove_items[0].kind, RemoveItem::Kind::kProperty);
  EXPECT_EQ(rem.remove_items[1].kind, RemoveItem::Kind::kLabels);
  EXPECT_TRUE(q.clauses[5]->detach);
}

TEST(ParserTest, UnwindAndForeach) {
  Query q = Parse(
      "UNWIND [1, 2, 3] AS x "
      "FOREACH (y IN [x] | CREATE (:N {v: y}) SET y.seen = true)");
  EXPECT_EQ(q.clauses[0]->kind, Clause::Kind::kUnwind);
  EXPECT_EQ(q.clauses[0]->unwind_var, "x");
  const Clause& fe = *q.clauses[1];
  EXPECT_EQ(fe.kind, Clause::Kind::kForeach);
  EXPECT_EQ(fe.foreach_var, "y");
  EXPECT_EQ(fe.foreach_body.size(), 2u);
}

TEST(ParserTest, CallWithYield) {
  Query q = Parse(
      "CALL apoc.do.when(true, 'RETURN 1', '', {x: 1}) YIELD value "
      "RETURN *");
  const Clause& call = *q.clauses[0];
  EXPECT_EQ(call.kind, Clause::Kind::kCall);
  EXPECT_EQ(call.call_proc, "apoc.do.when");
  EXPECT_EQ(call.call_args.size(), 4u);
  ASSERT_EQ(call.call_yield.size(), 1u);
  EXPECT_EQ(call.call_yield[0], "value");
}

TEST(ParserTest, OperatorPrecedence) {
  ExprPtr e = ParseExpr("1 + 2 * 3 = 7 AND NOT false");
  EXPECT_EQ(e->kind, Expr::Kind::kBinary);
  EXPECT_EQ(e->bin_op, BinOp::kAnd);
  const Expr& cmp = *e->a;
  EXPECT_EQ(cmp.bin_op, BinOp::kEq);
  const Expr& add = *cmp.a;
  EXPECT_EQ(add.bin_op, BinOp::kAdd);
  EXPECT_EQ(add.b->bin_op, BinOp::kMul);
}

TEST(ParserTest, ComparisonChainsFoldToAnd) {
  ExprPtr e = ParseExpr("1 < 2 < 3");
  EXPECT_EQ(e->bin_op, BinOp::kAnd);
  EXPECT_EQ(e->a->bin_op, BinOp::kLt);
  EXPECT_EQ(e->b->bin_op, BinOp::kLt);
}

TEST(ParserTest, StringPredicatesAndIn) {
  EXPECT_EQ(ParseExpr("a STARTS WITH 'x'")->bin_op, BinOp::kStartsWith);
  EXPECT_EQ(ParseExpr("a ENDS WITH 'x'")->bin_op, BinOp::kEndsWith);
  EXPECT_EQ(ParseExpr("a CONTAINS 'x'")->bin_op, BinOp::kContains);
  EXPECT_EQ(ParseExpr("a IN [1, 2]")->bin_op, BinOp::kIn);
}

TEST(ParserTest, IsNullForms) {
  EXPECT_EQ(ParseExpr("a IS NULL")->un_op, UnOp::kIsNull);
  EXPECT_EQ(ParseExpr("a IS NOT NULL")->un_op, UnOp::kIsNotNull);
}

TEST(ParserTest, LabelTestExpression) {
  ExprPtr e = ParseExpr("n:Person:Employee AND n.age > 1");
  EXPECT_EQ(e->bin_op, BinOp::kAnd);
  EXPECT_EQ(e->a->kind, Expr::Kind::kLabelTest);
  EXPECT_EQ(e->a->labels.size(), 2u);
}

TEST(ParserTest, CaseExpressions) {
  ExprPtr simple = ParseExpr("CASE x WHEN 1 THEN 'a' ELSE 'b' END");
  EXPECT_EQ(simple->kind, Expr::Kind::kCase);
  EXPECT_NE(simple->a, nullptr);
  ExprPtr searched = ParseExpr("CASE WHEN x > 1 THEN 'a' END");
  EXPECT_EQ(searched->a, nullptr);
  EXPECT_EQ(searched->whens.size(), 1u);
  EXPECT_EQ(searched->c, nullptr);
}

TEST(ParserTest, ExistsSubquery) {
  ExprPtr e = ParseExpr("EXISTS { MATCH (a)-[:R]->(b) WHERE b.x = 1 }");
  EXPECT_EQ(e->kind, Expr::Kind::kExists);
  ASSERT_NE(e->pattern, nullptr);
  EXPECT_NE(e->pattern_where, nullptr);
}

TEST(ParserTest, ExistsPatternArgument) {
  // The paper's form: WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect).
  ExprPtr e = ParseExpr("EXISTS (NEW)-[:Risk]-(:CriticalEffect)");
  EXPECT_EQ(e->kind, Expr::Kind::kExists);
  EXPECT_EQ(e->pattern->parts[0].chain.size(), 1u);
}

TEST(ParserTest, ExistsLegacyPropertyForm) {
  ExprPtr e = ParseExpr("EXISTS(n.prop)");
  EXPECT_EQ(e->kind, Expr::Kind::kFunc);
  EXPECT_EQ(e->name, "exists");
}

TEST(ParserTest, PatternPredicateInWhere) {
  Query q = Parse("MATCH (a) WHERE (a)-[:R]->(:B) RETURN a");
  EXPECT_EQ(q.clauses[0]->where->kind, Expr::Kind::kExists);
}

TEST(ParserTest, ParenthesizedExprNotMistakenForPattern) {
  ExprPtr e = ParseExpr("(1 + 2) * 3");
  EXPECT_EQ(e->bin_op, BinOp::kMul);
}

TEST(ParserTest, CountStar) {
  ExprPtr e = ParseExpr("COUNT(*)");
  EXPECT_EQ(e->kind, Expr::Kind::kCountStar);
}

TEST(ParserTest, FunctionWithDistinct) {
  ExprPtr e = ParseExpr("COUNT(DISTINCT n.x)");
  EXPECT_EQ(e->kind, Expr::Kind::kFunc);
  EXPECT_TRUE(e->distinct);
}

TEST(ParserTest, ListIndexAndMapLiteral) {
  ExprPtr e = ParseExpr("{a: [1, 2][0], b: $p}");
  EXPECT_EQ(e->kind, Expr::Kind::kMap);
  EXPECT_EQ(e->map_entries[0].second->kind, Expr::Kind::kIndex);
  EXPECT_EQ(e->map_entries[1].second->kind, Expr::Kind::kParam);
}

TEST(ParserTest, QuotedPropertyAccess) {
  // ON 'Lineage'.'whoDesignation' style postfix access.
  ExprPtr e = ParseExpr("OLD.'whoDesignation'");
  EXPECT_EQ(e->kind, Expr::Kind::kProp);
  EXPECT_EQ(e->name, "whoDesignation");
}

TEST(ParserTest, ReturnMustBeLast) {
  EXPECT_FALSE(Parser::ParseQuery("RETURN 1 MATCH (n)").ok());
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto st = Parser::ParseQuery("MATCH (n RETURN n").status();
  EXPECT_EQ(st.code(), StatusCode::kSyntaxError);
  EXPECT_NE(st.message().find(":"), std::string::npos);
}

TEST(ParserTest, RejectsBidirectionalArrow) {
  EXPECT_FALSE(Parser::ParseQuery("MATCH (a)<-[:R]->(b) RETURN a").ok());
}

TEST(ParserTest, RejectsEmptyQuery) {
  EXPECT_FALSE(Parser::ParseQuery("").ok());
  EXPECT_FALSE(Parser::ParseQuery("  ;").ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parser::ParseQuery("MATCH (n) RETURN n 42").ok());
}

// Unparse round-trip: parse -> print -> parse -> print must be stable.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ParsePrintParsePrint) {
  auto q1 = Parser::ParseQuery(GetParam());
  ASSERT_TRUE(q1.ok()) << GetParam() << ": " << q1.status();
  std::string text1 = QueryToString(q1.value());
  auto q2 = Parser::ParseQuery(text1);
  ASSERT_TRUE(q2.ok()) << text1 << ": " << q2.status();
  EXPECT_EQ(QueryToString(q2.value()), text1);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        "MATCH (n:Person) RETURN n",
        "MATCH (a:A)-[r:R {w: 1}]->(b) WHERE a.x > 1 RETURN a, r, b",
        "MATCH (a)-[:R*1..3]->(b) RETURN b",
        "CREATE (a:A {x: 1})-[:R]->(b:B)",
        "MERGE (c:C {k: 1}) ON CREATE SET c.fresh = true",
        "MATCH (n) WITH n.d AS d, COUNT(*) AS c ORDER BY c DESC LIMIT 3 "
        "WHERE c > 1 RETURN d",
        "UNWIND [1, 2] AS x RETURN x",
        "MATCH (n) DETACH DELETE n",
        "MATCH (n) SET n.a = 1, n:L REMOVE n.b",
        "MATCH (n) FOREACH (x IN [1] | SET n.v = x)",
        "MATCH (n) WHERE n.x IS NOT NULL AND (n)-[:R]->(:B) RETURN n",
        "MATCH (n) RETURN CASE WHEN n.x > 1 THEN 'hi' ELSE 'lo' END AS c",
        "CALL apoc.do.when(true, 'x', '', {a: 1}) YIELD value RETURN *",
        "MATCH (n) RETURN COUNT(DISTINCT n.x) AS c, COLLECT(n.y) AS ys",
        "OPTIONAL MATCH (n:A) RETURN n"));

// Figure 1 conformance: every clause keyword must be recognized.
TEST(ParserTest, ClauseKeywordsCaseInsensitive) {
  EXPECT_TRUE(Parser::ParseQuery("match (n) return n").ok());
  EXPECT_TRUE(Parser::ParseQuery("Match (n) Return n").ok());
}

}  // namespace
}  // namespace pgt::cypher
