// Differential suite for the event-keyed dispatch subsystem: the
// DispatchIndex fast path must produce byte-identical activations and the
// same firing order / per-trigger stats as the legacy per-trigger linear
// scan, across all four action times, both trigger orderings, and both
// label-event semantics. Also holds the delta-lifetime regression tests:
// relationship events on rels deleted later in the same transaction, and
// DROP TRIGGER while DETACHED activations are queued.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/cypher/parser.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

// ---------------------------------------------------------------------------
// Helpers

TriggerDef ParseDef(const std::string& ddl) {
  auto r = TriggerDdlParser::ParseCreate(ddl);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

/// Canonical text form of an activation (trigger identity + full transition
/// environment), for byte-identical comparisons across dispatch modes.
std::string Describe(const Activation& act) {
  std::ostringstream os;
  os << act.trigger->name << "{";
  for (const auto& [var, v] : act.env.singles) {
    os << "s:" << cypher::TransVars::Name(var) << "=" << v.ToString() << ";";
  }
  for (const auto& [var, sb] : act.env.sets) {
    os << "S:" << cypher::TransVars::Name(var) << (sb.is_node ? ":n[" : ":r[");
    for (uint64_t id : sb.ids) os << id << ",";
    os << "];";
  }
  for (cypher::TransVarId var : act.env.old_view_vars) {
    os << "o:" << cypher::TransVars::Name(var) << ";";
  }
  // Sealed overlays are sorted by (item, key) already.
  auto overlay = [&os](const char* tag,
                       const std::vector<cypher::TransitionEnv::OldImage>& m) {
    uint64_t current = 0;
    bool open = false;
    for (const cypher::TransitionEnv::OldImage& e : m) {
      if (!open || e.item != current) {
        if (open) os << "};";
        os << tag << e.item << "{";
        current = e.item;
        open = true;
      }
      os << e.key << "=" << e.value.ToString() << ",";
    }
    if (open) os << "};";
  };
  overlay("On:", act.env.old_node_props);
  overlay("Or:", act.env.old_rel_props);
  os << "}";
  return os.str();
}

std::vector<std::string> DescribeAll(PgTriggerEngine& engine, ActionTime time,
                                     const GraphDelta& delta) {
  std::vector<std::string> out;
  for (const Activation& act : engine.MatchAll(time, delta)) {
    out.push_back(Describe(act));
  }
  return out;
}

/// Runs `statement` inside its own transaction and returns the raw
/// statement delta (commit still runs the full trigger pipeline).
GraphDelta RunAndCapture(Database& db, const std::string& statement) {
  auto tx = std::move(db.BeginTx()).value();
  tx->PushDeltaScope();
  auto q = cypher::Parser::ParseQuery(statement);
  EXPECT_TRUE(q.ok()) << q.status();
  cypher::EvalContext ctx = db.MakeEvalContext(tx.get(), nullptr, nullptr);
  cypher::Executor exec(ctx);
  auto res = exec.Run(q.value(), cypher::Row{});
  EXPECT_TRUE(res.ok()) << statement << " -> " << res.status();
  GraphDelta delta = tx->PopDeltaScope();
  EXPECT_TRUE(db.CommitWithTriggers(std::move(tx)).ok());
  return delta;
}

int64_t Count(Database& db, const std::string& query) {
  auto r = db.Execute(query);
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok() || r->rows.empty()) return -1;
  return r->rows[0][0].int_value();
}

/// The firing-order log: trigger actions append `CREATE (:Log {t: name})`;
/// Log nodes come back in id order, i.e. exactly the firing order.
std::vector<std::string> FiringLog(Database& db) {
  std::vector<std::string> out;
  auto r = db.Execute("MATCH (l:Log) RETURN l.t");
  EXPECT_TRUE(r.ok()) << r.status();
  for (const auto& row : r->rows) out.emplace_back(row[0].string_value());
  return out;
}

// ---------------------------------------------------------------------------
// End-to-end differential: identical firing order and stats in both modes.

struct ModeParams {
  TriggerOrdering ordering;
  LabelEventSemantics semantics;
};

class DispatchDifferential
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  EngineOptions Options(bool use_dispatch_index) const {
    EngineOptions opts;
    opts.trigger_ordering = std::get<0>(GetParam()) == 0
                                ? TriggerOrdering::kCreationTime
                                : TriggerOrdering::kName;
    opts.label_event_semantics = std::get<1>(GetParam()) == 0
                                     ? LabelEventSemantics::kMonitoredLabel
                                     : LabelEventSemantics::kTargetSetChange;
    opts.use_dispatch_index = use_dispatch_index;
    return opts;
  }

  /// Trigger set spanning all four action times, both granularities, both
  /// item kinds, property and label events. Names are chosen so that
  /// name order differs from creation order.
  void InstallTriggers(Database& db) {
    const std::vector<std::string> ddls = {
        "CREATE TRIGGER Zcreate AFTER CREATE ON 'M' FOR EACH NODE "
        "BEGIN CREATE (:Log {t: 'Zcreate'}) END",
        "CREATE TRIGGER Acreate AFTER CREATE ON 'M' FOR ALL NODES "
        "BEGIN CREATE (:Log {t: 'Acreate'}) END",
        "CREATE TRIGGER Ybefore BEFORE SET ON 'M'.'p' FOR EACH NODE "
        "BEGIN SET NEW.btag = 1 END",
        "CREATE TRIGGER Bset AFTER SET ON 'M'.'p' FOR EACH NODE "
        "BEGIN CREATE (:Log {t: 'Bset'}) END",
        "CREATE TRIGGER Xlabel AFTER SET ON 'Extra' FOR EACH NODE "
        "BEGIN CREATE (:Log {t: 'Xlabel'}) END",
        "CREATE TRIGGER Crem AFTER REMOVE ON 'Extra' FOR EACH NODE "
        "BEGIN CREATE (:Log {t: 'Crem'}) END",
        "CREATE TRIGGER Wrelset AFTER SET ON 'T'.'w' FOR EACH RELATIONSHIP "
        "BEGIN CREATE (:Log {t: 'Wrelset'}) END",
        "CREATE TRIGGER Dreldel AFTER DELETE ON 'T' FOR EACH RELATIONSHIP "
        "BEGIN CREATE (:Log {t: 'Dreldel'}) END",
        "CREATE TRIGGER Vcommit ONCOMMIT CREATE ON 'M' FOR ALL NODES "
        "BEGIN CREATE (:Log {t: 'Vcommit'}) END",
        "CREATE TRIGGER Edetach DETACHED DELETE ON 'N' FOR EACH NODE "
        "BEGIN CREATE (:Log {t: 'Edetach'}) END",
    };
    for (const std::string& ddl : ddls) {
      auto r = db.Execute(ddl);
      ASSERT_TRUE(r.ok()) << ddl << " -> " << r.status();
    }
  }

  void RunWorkload(Database& db) {
    const std::vector<std::string> statements = {
        "CREATE (:M {p: 1})",
        "CREATE (:M {p: 2}), (:N {q: 1})",
        "MATCH (m:M) SET m.p = 10",
        "MATCH (m:M {p: 10}) SET m:Extra",
        "MATCH (m:Extra) REMOVE m:Extra",
        "CREATE (:S1), (:S2)",
        "MATCH (a:S1), (b:S2) CREATE (a)-[:T {w: 1}]->(b)",
        "MATCH ()-[r:T]->() SET r.w = 2",
        "MATCH ()-[r:T]->() DELETE r",
        "MATCH (n:N) DELETE n",
    };
    for (const std::string& s : statements) {
      auto r = db.Execute(s);
      ASSERT_TRUE(r.ok()) << s << " -> " << r.status();
    }
  }
};

TEST_P(DispatchDifferential, FiringOrderAndStatsIdentical) {
  Database indexed(Options(/*use_dispatch_index=*/true));
  Database linear(Options(/*use_dispatch_index=*/false));
  InstallTriggers(indexed);
  InstallTriggers(linear);
  RunWorkload(indexed);
  RunWorkload(linear);

  const std::vector<std::string> log_indexed = FiringLog(indexed);
  const std::vector<std::string> log_linear = FiringLog(linear);
  EXPECT_FALSE(log_indexed.empty());
  EXPECT_EQ(log_indexed, log_linear);

  const EngineStats& si = indexed.stats();
  const EngineStats& sl = linear.stats();
  ASSERT_EQ(si.per_trigger.size(), sl.per_trigger.size());
  for (const auto& [name, ts] : si.per_trigger) {
    auto it = sl.per_trigger.find(name);
    ASSERT_NE(it, sl.per_trigger.end()) << name;
    EXPECT_EQ(ts.considered, it->second.considered) << name;
    EXPECT_EQ(ts.fired, it->second.fired) << name;
    EXPECT_EQ(ts.action_rows, it->second.action_rows) << name;
    EXPECT_EQ(ts.errors, it->second.errors) << name;
  }
  EXPECT_EQ(Count(indexed, "MATCH (n) RETURN COUNT(*) AS c"),
            Count(linear, "MATCH (n) RETURN COUNT(*) AS c"));
}

TEST_P(DispatchDifferential, MatchAllActivationsByteIdentical) {
  Database db(Options(/*use_dispatch_index=*/true));
  InstallTriggers(db);

  const std::vector<std::string> statements = {
      "CREATE (:M {p: 1}), (:M {p: 2}), (:N)",
      "MATCH (m:M) SET m.p = 20",
      "MATCH (m:M) SET m:Extra",
      "MATCH (m:Extra) REMOVE m:Extra",
      "CREATE (:S1), (:S2)",
      "MATCH (a:S1), (b:S2) CREATE (a)-[:T {w: 1}]->(b)",
      "MATCH ()-[r:T]->() SET r.w = 5",
      "MATCH ()-[r:T]->() DELETE r",
      "MATCH (n:N) DETACH DELETE n",
  };
  constexpr ActionTime kTimes[] = {ActionTime::kBefore, ActionTime::kAfter,
                                   ActionTime::kOnCommit,
                                   ActionTime::kDetached};
  for (const std::string& s : statements) {
    GraphDelta delta = RunAndCapture(db, s);
    for (ActionTime time : kTimes) {
      db.options().use_dispatch_index = true;
      const std::vector<std::string> fast =
          DescribeAll(db.engine(), time, delta);
      db.options().use_dispatch_index = false;
      const std::vector<std::string> slow =
          DescribeAll(db.engine(), time, delta);
      db.options().use_dispatch_index = true;
      EXPECT_EQ(fast, slow) << "statement: " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrderingsAndSemantics, DispatchDifferential,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "CreationTime"
                                                      : "NameOrder") +
             (std::get<1>(info.param) == 0 ? "MonitoredLabel"
                                           : "TargetSetChange");
    });

// ---------------------------------------------------------------------------
// Statement-level snapshot semantics (locked in by this PR): all triggers
// activated by the same statement are matched up front against one
// consistent snapshot of the statement's events (Section 4.2), so an
// earlier trigger's action cannot un-match a sibling trigger of the same
// statement. (Previously matching was lazy, per trigger, against the
// mutated store.)

TEST(SnapshotSemantics, EarlierTriggerCannotUnmatchSibling) {
  for (bool use_index : {true, false}) {
    EngineOptions opts;
    opts.use_dispatch_index = use_index;
    Database db(opts);
    // T1 runs first (creation order) and strips :B from the new node; T2
    // monitors CREATE on 'B' and must still fire on the snapshot.
    ASSERT_TRUE(db.Execute("CREATE TRIGGER T1 AFTER CREATE ON 'A' "
                           "FOR EACH NODE BEGIN REMOVE NEW:B END")
                    .ok());
    ASSERT_TRUE(db.Execute("CREATE TRIGGER T2 AFTER CREATE ON 'B' "
                           "FOR EACH NODE BEGIN CREATE (:SawB) END")
                    .ok());
    ASSERT_TRUE(db.Execute("CREATE (:A:B)").ok());
    EXPECT_EQ(Count(db, "MATCH (s:SawB) RETURN COUNT(*) AS c"), 1)
        << "use_dispatch_index=" << use_index;
    EXPECT_EQ(db.stats().per_trigger["T1"].fired, 1u);
    EXPECT_EQ(db.stats().per_trigger["T2"].fired, 1u);
  }
}

// ---------------------------------------------------------------------------
// DispatchIndex maintenance: install / drop / enable / disable, and late
// symbol interning.

TEST(DispatchIndexMaintenance, LateInternedLabelResolvesAndFires) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TRIGGER T AFTER CREATE ON 'NeverSeen' "
                         "FOR EACH NODE BEGIN CREATE (:Hit) END")
                  .ok());
  // The label is not interned at install time: the trigger sits pending.
  EXPECT_EQ(db.catalog().dispatch().pending_count(), 1u);
  EXPECT_EQ(db.catalog().dispatch().resolved_count(), 0u);

  // First use of the label interns it mid-statement; dispatch must pick it
  // up within the same statement's trigger round.
  ASSERT_TRUE(db.Execute("CREATE (:NeverSeen)").ok());
  EXPECT_EQ(Count(db, "MATCH (h:Hit) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(db.catalog().dispatch().pending_count(), 0u);
  EXPECT_EQ(db.catalog().dispatch().resolved_count(), 1u);
}

TEST(DispatchIndexMaintenance, DisableEnableDropMaintainIndex) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE (:A)").ok());  // intern 'A'
  ASSERT_TRUE(db.Execute("CREATE TRIGGER T AFTER CREATE ON 'A' "
                         "FOR EACH NODE BEGIN CREATE (:Hit) END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE (:A)").ok());
  EXPECT_EQ(Count(db, "MATCH (h:Hit) RETURN COUNT(*) AS c"), 1);

  ASSERT_TRUE(db.Execute("ALTER TRIGGER T DISABLE").ok());
  EXPECT_EQ(db.catalog().dispatch().resolved_count(), 0u);
  ASSERT_TRUE(db.Execute("CREATE (:A)").ok());
  EXPECT_EQ(Count(db, "MATCH (h:Hit) RETURN COUNT(*) AS c"), 1);

  ASSERT_TRUE(db.Execute("ALTER TRIGGER T ENABLE").ok());
  ASSERT_TRUE(db.Execute("CREATE (:A)").ok());
  EXPECT_EQ(Count(db, "MATCH (h:Hit) RETURN COUNT(*) AS c"), 2);

  ASSERT_TRUE(db.Execute("DROP TRIGGER T").ok());
  EXPECT_EQ(db.catalog().dispatch().resolved_count(), 0u);
  EXPECT_EQ(db.catalog().dispatch().pending_count(), 0u);
  ASSERT_TRUE(db.Execute("CREATE (:A)").ok());
  EXPECT_EQ(Count(db, "MATCH (h:Hit) RETURN COUNT(*) AS c"), 2);
}

// ---------------------------------------------------------------------------
// Regression: relationship events on rels deleted later in the same
// transaction. The type lookup must fall back to the delta's deleted-rel
// image (mirror of the node path's LabelsOf fallback) when the store has no
// record — e.g. a committed delta examined against a store that never
// materialized the rel, as in the translators' equivalence checks.

class RelDeltaLifetime : public ::testing::Test {
 protected:
  void SetUp() override {
    type_ = db_.store().InternRelType("T");
    key_ = db_.store().InternPropKey("w");
  }

  /// A delta whose relationship exists only as a deleted image: the rel id
  /// is beyond every record the store ever allocated.
  GraphDelta DeletedOnlyDelta() {
    GraphDelta delta;
    DeletedRelImage img;
    img.id = RelId{977};
    img.type = type_;
    delta.deleted_rels.push_back(img);
    return delta;
  }

  Database db_;
  RelTypeId type_ = 0;
  PropKeyId key_ = 0;
};

TEST_F(RelDeltaLifetime, CreateEventOnRelDeletedInSameDelta) {
  TriggerDef def = ParseDef(
      "CREATE TRIGGER R AFTER CREATE ON 'T' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = DeletedOnlyDelta();
  delta.created_rels.push_back(RelId{977});
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_NE(acts[0].env.FindSingle("NEW"), nullptr);
}

TEST_F(RelDeltaLifetime, SetEventOnRelDeletedInSameDelta) {
  TriggerDef def = ParseDef(
      "CREATE TRIGGER R AFTER SET ON 'T'.'w' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = DeletedOnlyDelta();
  delta.assigned_rel_props.push_back(
      RelPropChange{RelId{977}, key_, Value::Int(1), Value::Int(2)});
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  // OLD overlay carries the pre-statement value.
  ASSERT_EQ(acts[0].env.old_rel_props.size(), 1u);
}

TEST_F(RelDeltaLifetime, RemoveEventOnRelDeletedInSameDelta) {
  TriggerDef def = ParseDef(
      "CREATE TRIGGER R AFTER REMOVE ON 'T'.'w' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = DeletedOnlyDelta();
  delta.removed_rel_props.push_back(
      RelPropChange{RelId{977}, key_, Value::Int(1), Value::Null()});
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
}

TEST_F(RelDeltaLifetime, IndexedDispatchUsesSameFallback) {
  ASSERT_TRUE(db_.catalog()
                  .Install(ParseDef(
                      "CREATE TRIGGER R DETACHED SET ON 'T'.'w' FOR EACH "
                      "RELATIONSHIP BEGIN CREATE (:X) END"))
                  .ok());
  GraphDelta delta = DeletedOnlyDelta();
  delta.assigned_rel_props.push_back(
      RelPropChange{RelId{977}, key_, Value::Int(1), Value::Int(2)});
  db_.options().use_dispatch_index = true;
  EXPECT_EQ(db_.engine().MatchAll(ActionTime::kDetached, delta).size(), 1u);
  db_.options().use_dispatch_index = false;
  EXPECT_EQ(db_.engine().MatchAll(ActionTime::kDetached, delta).size(), 1u);
}

TEST_F(RelDeltaLifetime, OnCommitSetThenDeleteStillFires) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE (:A), (:B)").ok());
  ASSERT_TRUE(
      db.Execute("MATCH (a:A), (b:B) CREATE (a)-[:T {w: 1}]->(b)").ok());
  ASSERT_TRUE(db.Execute("CREATE TRIGGER OC ONCOMMIT SET ON 'T'.'w' "
                         "FOR EACH RELATIONSHIP BEGIN CREATE (:OcLog) END")
                  .ok());
  auto r = db.ExecuteTx({"MATCH ()-[r:T]->() SET r.w = 2",
                         "MATCH ()-[r:T]->() DELETE r"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(Count(db, "MATCH (l:OcLog) RETURN COUNT(*) AS c"), 1);
}

TEST_F(RelDeltaLifetime, DetachedSetThenDeleteStillFires) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE (:A), (:B)").ok());
  ASSERT_TRUE(
      db.Execute("MATCH (a:A), (b:B) CREATE (a)-[:T {w: 1}]->(b)").ok());
  ASSERT_TRUE(db.Execute("CREATE TRIGGER DT DETACHED SET ON 'T'.'w' "
                         "FOR EACH RELATIONSHIP BEGIN CREATE (:DtLog) END")
                  .ok());
  auto r = db.ExecuteTx({"MATCH ()-[r:T]->() SET r.w = 2",
                         "MATCH ()-[r:T]->() DELETE r"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(Count(db, "MATCH (l:DtLog) RETURN COUNT(*) AS c"), 1);
}

// ---------------------------------------------------------------------------
// Regression: DROP TRIGGER while DETACHED activations are queued. The
// queued activation shares ownership of the definition with the catalog,
// so the drop (here issued from an earlier detached trigger's own
// transaction, via a registered procedure) cannot dangle it.

TEST(DropWhileQueued, QueuedDetachedActivationSurvivesDrop) {
  Database db;
  db.procedures().Register(
      "test.dropb", {},
      [&db](cypher::EvalContext&, const std::vector<Value>&,
            const cypher::Row&) -> Result<std::vector<cypher::Row>> {
        PGT_RETURN_IF_ERROR(db.catalog().Drop("B"));
        return std::vector<cypher::Row>{};
      });
  // A runs first (creation order) and drops B while B's activation is
  // already sitting in the detached queue.
  ASSERT_TRUE(db.Execute("CREATE TRIGGER A DETACHED CREATE ON 'X' "
                         "FOR EACH NODE BEGIN CALL test.dropb() END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TRIGGER B DETACHED CREATE ON 'X' "
                         "FOR EACH NODE BEGIN CREATE (:FromB) END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE (:X)").ok());

  EXPECT_EQ(db.catalog().Find("B"), nullptr);  // the drop took effect
  // B's queued activation still ran on its owned definition.
  EXPECT_EQ(Count(db, "MATCH (n:FromB) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(db.stats().per_trigger["B"].fired, 1u);

  // B stays dropped: the next commit only activates A.
  ASSERT_TRUE(db.Execute("CREATE (:X)").ok());
  EXPECT_EQ(Count(db, "MATCH (n:FromB) RETURN COUNT(*) AS c"), 1);
}

// The same race under the ASYNC pool (docs/async.md): the drop is issued
// from trigger A's autonomous transaction while it runs on a pool thread
// holding the writer interlock, and B's activation is queued behind it.
// Shared ownership of the definition must hold off-writer too.
TEST(DropWhileQueued, PoolModeQueuedActivationSurvivesDrop) {
  EngineOptions opts;
  opts.async_pool_size = 2;
  opts.async_queue_capacity = 0;  // kBlock: drain at every boundary
  opts.async_backpressure = AsyncBackpressure::kBlock;
  Database db(opts);
  db.procedures().Register(
      "test.dropb", {},
      [&db](cypher::EvalContext&, const std::vector<Value>&,
            const cypher::Row&) -> Result<std::vector<cypher::Row>> {
        PGT_RETURN_IF_ERROR(db.catalog().Drop("B"));
        return std::vector<cypher::Row>{};
      });
  ASSERT_TRUE(db.Execute("CREATE TRIGGER A DETACHED CREATE ON 'X' "
                         "FOR EACH NODE BEGIN CALL test.dropb() END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TRIGGER B DETACHED CREATE ON 'X' "
                         "FOR EACH NODE BEGIN CREATE (:FromB) END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE (:X)").ok());

  EXPECT_EQ(db.catalog().Find("B"), nullptr);
  EXPECT_EQ(Count(db, "MATCH (n:FromB) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(db.stats().per_trigger["B"].fired, 1u);

  ASSERT_TRUE(db.Execute("CREATE (:X)").ok());
  EXPECT_EQ(Count(db, "MATCH (n:FromB) RETURN COUNT(*) AS c"), 1);
}

// One commit queues several DETACHED activations; they share one source
// delta, and each still reads OLD state through the re-injected ghosts.
TEST(DetachedQueue, SharedSourceDeltaKeepsOldReadable) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TRIGGER D1 DETACHED DELETE ON 'N' "
                         "FOR EACH NODE BEGIN CREATE (:G1 {v: OLD.q}) END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TRIGGER D2 DETACHED DELETE ON 'N' "
                         "FOR EACH NODE BEGIN CREATE (:G2 {v: OLD.q}) END")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE (:N {q: 7}), (:N {q: 8})").ok());
  ASSERT_TRUE(db.Execute("MATCH (n:N) DELETE n").ok());
  EXPECT_EQ(Count(db, "MATCH (g:G1) RETURN COUNT(*) AS c"), 2);
  EXPECT_EQ(Count(db, "MATCH (g:G2) RETURN COUNT(*) AS c"), 2);
  EXPECT_EQ(Count(db, "MATCH (g:G1) WHERE g.v = 7 RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count(db, "MATCH (g:G2) WHERE g.v = 8 RETURN COUNT(*) AS c"), 1);
}

}  // namespace
}  // namespace pgt
