// Representation-boundary tests for the compact SSO Value (docs/values.md):
// the observable semantics (Equals / TotalCompare / ToString) must be
// identical to the previous std::variant representation at every boundary
// the new layout introduces — the SSO threshold, the shared heap payloads,
// and the numeric edge cases the total order is defined over.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/value.h"

namespace pgt {
namespace {

// The whole point of the rewrite: a Value is a 16-byte payload + tag +
// inline length, never more.
static_assert(sizeof(Value) <= 24, "Value must stay a compact tagged union");
static_assert(Value::kSsoCapacity == 16, "SSO threshold documented as 16");

std::string StrOfLen(size_t n, char fill = 'x') {
  return std::string(n, fill);
}

TEST(ValueRep, SsoThresholdBoundaries) {
  // N-1 / N / N+1 around the inline capacity: all must round-trip bytes
  // exactly and compare as plain strings.
  for (size_t len : {size_t{0}, size_t{1}, Value::kSsoCapacity - 1,
                     Value::kSsoCapacity, Value::kSsoCapacity + 1,
                     size_t{100}}) {
    const std::string s = StrOfLen(len, 'a');
    const Value v = Value::String(s);
    ASSERT_TRUE(v.is_string()) << len;
    EXPECT_EQ(v.string_value(), s) << len;
    EXPECT_EQ(v.string_value().size(), len);
    EXPECT_EQ(v.ToString(), "'" + s + "'") << len;

    // Copies are equal and independent of the original's lifetime.
    Value copy = v;
    EXPECT_TRUE(copy.Equals(v));
    EXPECT_EQ(copy.TotalCompare(v), 0);
    EXPECT_EQ(copy.string_value(), s);
  }
}

TEST(ValueRep, SsoAndHeapStringsCompareIdentically) {
  // Comparison crosses the representation boundary: a 16-char inline
  // string against a 17-char heap string orders by content, not by rep.
  const Value inl = Value::String(StrOfLen(Value::kSsoCapacity, 'a'));
  const Value heap = Value::String(StrOfLen(Value::kSsoCapacity + 1, 'a'));
  EXPECT_LT(inl.TotalCompare(heap), 0);  // "aa..a" < "aa..aa"
  EXPECT_GT(heap.TotalCompare(inl), 0);
  EXPECT_FALSE(inl.Equals(heap));

  const Value heap2 = Value::String(StrOfLen(Value::kSsoCapacity + 1, 'a'));
  EXPECT_TRUE(heap.Equals(heap2));
  EXPECT_EQ(heap.TotalCompare(heap2), 0);
}

TEST(ValueRep, HeapStringsShareAfterCopy) {
  const Value v = Value::String(StrOfLen(40, 'q'));
  const Value copy = v;
  // Shared payload: same bytes, same address (refcount bump, no deep copy).
  EXPECT_EQ(copy.string_value().data(), v.string_value().data());
}

TEST(ValueRep, ListAndMapAliasAfterCopy) {
  Value::List items;
  items.push_back(Value::Int(1));
  items.push_back(Value::String("status-updated-ok"));
  const Value list = Value::MakeList(std::move(items));
  const Value list_copy = list;
  EXPECT_EQ(&list_copy.list_value(), &list.list_value());
  EXPECT_TRUE(list_copy.Equals(list));
  EXPECT_EQ(list_copy.TotalCompare(list), 0);

  Value::Map m;
  m["k"] = Value::Int(7);
  m["long-key-name"] = Value::String(StrOfLen(30));
  const Value map = Value::MakeMap(std::move(m));
  const Value map_copy = map;
  EXPECT_EQ(&map_copy.map_value(), &map.map_value());
  EXPECT_TRUE(map_copy.Equals(map));
  EXPECT_EQ(map_copy.ToString(), map.ToString());
}

TEST(ValueRep, MoveLeavesNull) {
  Value v = Value::String(StrOfLen(40));
  Value moved = std::move(v);
  EXPECT_TRUE(moved.is_string());
  EXPECT_TRUE(v.is_null());  // NOLINT(bugprone-use-after-move): asserted

  Value lv = Value::MakeList({Value::Int(1)});
  Value lmoved = std::move(lv);
  EXPECT_TRUE(lmoved.is_list());
  EXPECT_TRUE(lv.is_null());  // NOLINT(bugprone-use-after-move)
}

TEST(ValueRep, EqualsParityAcrossAllTypes) {
  // One representative per ValueType; pairwise Equals must be an equality
  // on (type modulo numeric coercion, payload).
  const std::vector<Value> values = {
      Value::Null(),
      Value::Bool(true),
      Value::Int(42),
      Value::Double(42.0),
      Value::String("answer"),
      Value::MakeList({Value::Int(1), Value::Int(2)}),
      Value::MakeMap({}),
      Value::MakeDate(19000),
      Value::MakeDateTime(1'000'000),
      Value::Node(NodeId{7}),
      Value::Rel(RelId{7}),
  };
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      const bool expect_equal =
          i == j || (values[i].is_numeric() && values[j].is_numeric() &&
                     values[i].as_double() == values[j].as_double());
      EXPECT_EQ(values[i].Equals(values[j]), expect_equal)
          << values[i].ToString() << " vs " << values[j].ToString();
      if (expect_equal) {
        EXPECT_EQ(values[i].TotalCompare(values[j]), 0);
      }
    }
  }
  // Node and relationship ids never compare equal across kinds.
  EXPECT_FALSE(Value::Node(NodeId{7}).Equals(Value::Rel(RelId{7})));
}

TEST(ValueRep, TotalOrderTypeRanks) {
  // bool < numeric < string < date < datetime < node < rel < list < map
  // < NULL (NULL sorts last) — byte-identical to the old TypeRank table.
  const std::vector<Value> ordered = {
      Value::Bool(false),
      Value::Int(5),
      Value::String("s"),
      Value::MakeDate(1),
      Value::MakeDateTime(1),
      Value::Node(NodeId{1}),
      Value::Rel(RelId{1}),
      Value::MakeList({}),
      Value::MakeMap({}),
      Value::Null(),
  };
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    EXPECT_LT(ordered[i].TotalCompare(ordered[i + 1]), 0)
        << ordered[i].ToString() << " !< " << ordered[i + 1].ToString();
    EXPECT_GT(ordered[i + 1].TotalCompare(ordered[i]), 0);
  }
}

TEST(ValueRep, NumericCoercionOrdering) {
  EXPECT_LT(Value::Int(1).TotalCompare(Value::Double(1.5)), 0);
  EXPECT_LT(Value::Double(1.5).TotalCompare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(3).TotalCompare(Value::Double(3.0)), 0);
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  // Huge int64 values compare exactly int-vs-int.
  EXPECT_LT(Value::Int((1LL << 62) + 0).TotalCompare(
                Value::Int((1LL << 62) + 1)),
            0);
}

TEST(ValueRep, NanAndSignedZeroSemantics) {
  const double nan = std::nan("");
  // NaN: unordered under CompareDoubles, which reports 0 — the historical
  // behavior the compiled IN-probe explicitly guards against (see
  // ProbeSafeScalar). Locked here so the rep change cannot shift it.
  EXPECT_EQ(Value::Double(nan).TotalCompare(Value::Double(nan)), 0);
  EXPECT_EQ(Value::Double(nan).TotalCompare(Value::Double(1.0)), 0);
  EXPECT_FALSE(Value::Double(nan).Equals(Value::Double(nan)));  // IEEE

  // Signed zero: +0.0 and -0.0 are the same value everywhere.
  EXPECT_TRUE(Value::Double(0.0).Equals(Value::Double(-0.0)));
  EXPECT_EQ(Value::Double(0.0).TotalCompare(Value::Double(-0.0)), 0);
  EXPECT_TRUE(Value::Int(0).Equals(Value::Double(-0.0)));
  EXPECT_EQ(Value::Double(-0.0).ToString(), "0.0");
}

TEST(ValueRep, ToStringParity) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::MakeDate(3).ToString(), "date(3)");
  EXPECT_EQ(Value::MakeDateTime(9).ToString(), "datetime(9)");
  EXPECT_EQ(Value::Node(NodeId{4}).ToString(), "#n4");
  EXPECT_EQ(Value::Rel(RelId{6}).ToString(), "#r6");
  EXPECT_EQ(
      Value::MakeList({Value::Int(1), Value::String("a")}).ToString(),
      "[1, 'a']");
  Value::Map m;
  m["a"] = Value::Int(1);
  m["b"] = Value::String("x");
  EXPECT_EQ(Value::MakeMap(std::move(m)).ToString(), "{a: 1, b: 'x'}");
}

TEST(ValueRep, AssignmentOverwritesEveryRepCombination) {
  // Assigning across representation classes must release/retain payloads
  // correctly (exercised further under ASan in CI).
  std::vector<Value> reps = {
      Value::Null(), Value::Int(1), Value::String("short"),
      Value::String(StrOfLen(40)), Value::MakeList({Value::Int(1)}),
      Value::MakeMap({})};
  for (const Value& a : reps) {
    for (const Value& b : reps) {
      Value x = a;
      x = b;  // copy-assign over a's rep
      EXPECT_TRUE(x.Equals(b));
      Value y = a;
      Value b2 = b;
      y = std::move(b2);  // move-assign over a's rep
      EXPECT_TRUE(y.Equals(b));
      // Self-assignment keeps the value intact.
      Value z = a;
      z = *&z;
      EXPECT_TRUE(z.Equals(a));
    }
  }
}

TEST(ValueRep, SelfAliasedAssignmentFromOwnPayload) {
  // Assigning a Value from within its own payload must not read freed
  // memory even when the assignment drops the last reference to the
  // container (caught by ASan in CI).
  Value outer = Value::MakeList({Value::MakeList({Value::Int(42)})});
  outer = outer.list_value()[0];
  ASSERT_TRUE(outer.is_list());
  EXPECT_EQ(outer.list_value()[0].int_value(), 42);

  Value::Map inner;
  inner["k"] = Value::String(StrOfLen(40, 'm'));
  Value m = Value::MakeMap({{"outer", Value::MakeMap(std::move(inner))}});
  m = m.map_value().at("outer");
  ASSERT_TRUE(m.is_map());
  EXPECT_EQ(m.map_value().at("k").string_value(), StrOfLen(40, 'm'));

  // Move-assign from own payload.
  Value lst = Value::MakeList({Value::String(StrOfLen(33, 'z'))});
  Value elem = lst.list_value()[0];
  lst = std::move(elem);
  EXPECT_EQ(lst.string_value(), StrOfLen(33, 'z'));
}

TEST(ValueRep, SharedPayloadNanListStillUnequal) {
  // Two Values sharing one list payload containing NaN compare element
  // wise: NaN != NaN, so the lists are not Equals — identical to the
  // pre-SSO representation (no pointer-equality shortcut).
  const Value l = Value::MakeList({Value::Double(std::nan(""))});
  const Value copy = l;
  ASSERT_EQ(&copy.list_value(), &l.list_value());  // shared payload
  EXPECT_FALSE(l.Equals(copy));
  EXPECT_FALSE(l.Equals(l));
}

TEST(ValueRep, MapTransparentLookup) {
  Value::Map m;
  m["key-one"] = Value::Int(1);
  const Value v = Value::MakeMap(std::move(m));
  // Heterogeneous find: a string_view key probes without materializing a
  // std::string (this is what map indexing through Value::string_value()
  // relies on).
  const std::string_view key = "key-one";
  auto it = v.map_value().find(key);
  ASSERT_NE(it, v.map_value().end());
  EXPECT_EQ(it->second.int_value(), 1);
}

}  // namespace
}  // namespace pgt
