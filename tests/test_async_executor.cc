// Unit tests for the off-writer ASYNC (DETACHED) execution pool
// (src/trigger/async_executor.*, docs/async.md): strict global FIFO apply
// order, snapshot-pinned WHEN pre-evaluation (prefilter vs deferred),
// the three backpressure policies, the DrainAsync barrier, drain-on-close,
// the chain valve for self-sustaining detached cascades, and the
// SHOW ASYNC STATUS / CALL pgt.asyncStats() introspection surface.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/trigger/async_executor.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

// ---------------------------------------------------------------------------
// Helpers

EngineOptions PoolOptions(int workers, size_t capacity,
                          AsyncBackpressure backpressure) {
  EngineOptions opts;
  opts.async_pool_size = workers;
  opts.async_queue_capacity = capacity;
  opts.async_backpressure = backpressure;
  return opts;
}

int64_t Count(Database& db, const std::string& query) {
  auto r = db.Execute(query);
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok() || r->rows.empty()) return -1;
  return r->rows[0][0].int_value();
}

/// Log nodes come back in id order, i.e. exactly the order the detached
/// actions were applied.
std::vector<int64_t> IntLog(Database& db) {
  std::vector<int64_t> out;
  auto r = db.Execute("MATCH (l:Log) RETURN l.i");
  EXPECT_TRUE(r.ok()) << r.status();
  for (const auto& row : r->rows) out.push_back(row[0].int_value());
  return out;
}

/// One pgt.asyncStats() row as a name -> value map.
std::map<std::string, int64_t> AsyncStats(Database& db) {
  auto r = db.Execute(
      "CALL pgt.asyncStats() YIELD workers, queue_depth, in_flight, "
      "enqueued, prefiltered, deferred, applied, spilled, rejected "
      "RETURN workers, queue_depth, in_flight, enqueued, prefiltered, "
      "deferred, applied, spilled, rejected");
  EXPECT_TRUE(r.ok()) << r.status();
  std::map<std::string, int64_t> out;
  if (!r.ok() || r->rows.empty()) return out;
  for (size_t i = 0; i < r->columns.size(); ++i) {
    out[r->columns[i]] = r->rows[0][i].int_value();
  }
  return out;
}

void Install(Database& db, const std::string& ddl) {
  auto r = db.Execute(ddl);
  ASSERT_TRUE(r.ok()) << ddl << " -> " << r.status();
}

void Exec(Database& db, const std::string& stmt) {
  auto r = db.Execute(stmt);
  ASSERT_TRUE(r.ok()) << stmt << " -> " << r.status();
}

// ---------------------------------------------------------------------------
// Introspection surface

TEST(AsyncStatus, QueryableWithPoolDisabled) {
  Database db;  // default options: async_pool_size = 0
  auto r = db.Execute("SHOW ASYNC STATUS");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 1u);
  ASSERT_EQ(r->columns.size(), 9u);
  EXPECT_EQ(r->columns[0], "workers");
  for (const Value& v : r->rows[0]) EXPECT_EQ(v.int_value(), 0);

  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["workers"], 0);
  EXPECT_EQ(stats["enqueued"], 0);
}

TEST(AsyncStatus, ReportsPoolShape) {
  Database db(PoolOptions(2, 64, AsyncBackpressure::kBlock));
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["workers"], 2);
  EXPECT_EQ(stats["queue_depth"], 0);
  db.DrainAsync();
}

// ---------------------------------------------------------------------------
// FIFO apply order

TEST(AsyncPool, AppliesInCommitOrder) {
  Database db(PoolOptions(2, 0, AsyncBackpressure::kBlock));
  Install(db,
          "CREATE TRIGGER Chrono DETACHED CREATE ON 'N' FOR EACH NODE "
          "BEGIN CREATE (:Log {i: NEW.i}) END");
  for (int i = 1; i <= 5; ++i) {
    Exec(db, "CREATE (:N {i: " + std::to_string(i) + "})");
  }
  EXPECT_EQ(IntLog(db), (std::vector<int64_t>{1, 2, 3, 4, 5}));
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["enqueued"], 5);
  EXPECT_EQ(stats["applied"], 5);
  EXPECT_EQ(stats["queue_depth"], 0);
  EXPECT_EQ(stats["rejected"], 0);
}

TEST(AsyncPool, BatchKeepsDeltaOrder) {
  Database db(PoolOptions(4, 0, AsyncBackpressure::kBlock));
  Install(db,
          "CREATE TRIGGER Chrono DETACHED CREATE ON 'N' FOR EACH NODE "
          "BEGIN CREATE (:Log {i: NEW.i}) END");
  // One commit, three activations: they must apply in delta order even
  // with four workers racing over the queue.
  Exec(db, "CREATE (:N {i: 1}), (:N {i: 2}), (:N {i: 3})");
  EXPECT_EQ(IntLog(db), (std::vector<int64_t>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Snapshot-pinned WHEN pre-evaluation

TEST(AsyncPool, StableEpochPrefiltersNoFireActivations) {
  Database db(PoolOptions(1, 0, AsyncBackpressure::kBlock));
  Install(db,
          "CREATE TRIGGER Guard DETACHED CREATE ON 'N' FOR EACH NODE "
          "WHEN NEW.q > 100 "
          "BEGIN CREATE (:Log {i: NEW.q}) END");

  // capacity 0 + kBlock drains at every statement boundary, so the pinned
  // epoch is still current when each verdict is applied: a false WHEN is
  // retired off-writer with no autonomous transaction at all.
  Exec(db, "CREATE (:N {q: 1})");
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["prefiltered"], 1);
  EXPECT_EQ(stats["deferred"], 0);
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN count(l)"), 0);

  // A passing WHEN is never prefiltered — the action needs the full
  // on-writer autonomous transaction.
  Exec(db, "CREATE (:N {q: 200})");
  stats = AsyncStats(db);
  EXPECT_EQ(stats["prefiltered"], 1);
  EXPECT_EQ(stats["deferred"], 1);
  EXPECT_EQ(IntLog(db), (std::vector<int64_t>{200}));

  // The fired action's commit moved the epoch, but the next hand-off pins
  // a fresh snapshot, so its verdict is exact again.
  Exec(db, "CREATE (:N {q: 2})");
  stats = AsyncStats(db);
  EXPECT_EQ(stats["prefiltered"], 2);
  EXPECT_EQ(stats["deferred"], 1);

  // Per-trigger parity with the serial path: every activation considered,
  // only the passing one fired.
  const TriggerStats& ts = db.stats().per_trigger["Guard"];
  EXPECT_EQ(ts.considered, 3u);
  EXPECT_EQ(ts.fired, 1u);
  EXPECT_EQ(ts.errors, 0u);
  EXPECT_EQ(db.stats().detached_runs, 3u);
}

TEST(AsyncPool, DeleteSourcesAlwaysDefer) {
  // Deleted-item images resolve through transaction ghosts a snapshot
  // cannot carry, so delete-sourced activations skip pre-evaluation and
  // take the full on-writer run (which re-injects the ghosts).
  Database db(PoolOptions(1, 0, AsyncBackpressure::kBlock));
  Install(db,
          "CREATE TRIGGER Tomb DETACHED DELETE ON 'N' FOR EACH NODE "
          "WHEN OLD.q = 1 "
          "BEGIN CREATE (:Log {i: OLD.q}) END");
  Exec(db, "CREATE (:N {q: 1})");
  Exec(db, "MATCH (n:N) DELETE n");
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["prefiltered"], 0);
  EXPECT_EQ(stats["deferred"], 1);
  EXPECT_EQ(IntLog(db), (std::vector<int64_t>{1}));
}

TEST(AsyncPool, OverlappedCommitsStayExact) {
  // With a deep queue the writer runs ahead of the pool; pre-evaluated
  // verdicts whose pinned epoch went stale must fall back to the full run.
  // Every activation is accounted for exactly once either way.
  Database db(PoolOptions(2, 1024, AsyncBackpressure::kBlock));
  Install(db,
          "CREATE TRIGGER Guard DETACHED CREATE ON 'N' FOR EACH NODE "
          "WHEN NEW.q % 2 = 0 "
          "BEGIN CREATE (:Log {i: NEW.q}) END");
  for (int i = 1; i <= 20; ++i) {
    Exec(db, "CREATE (:N {q: " + std::to_string(i) + "})");
  }
  db.DrainAsync();
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["enqueued"], 20);
  EXPECT_EQ(stats["applied"], 20);
  EXPECT_EQ(stats["prefiltered"] + stats["deferred"], 20);
  EXPECT_EQ(stats["queue_depth"], 0);
  // The WHEN depends only on the transition environment, so the firing set
  // is the same no matter when each verdict was computed.
  EXPECT_EQ(IntLog(db),
            (std::vector<int64_t>{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}));
  EXPECT_EQ(db.stats().per_trigger["Guard"].fired, 10u);
}

// ---------------------------------------------------------------------------
// Backpressure policies

TEST(AsyncPool, RejectDropsAtCapacity) {
  // capacity 0 + kReject: the queue is permanently "at capacity", so every
  // hand-off is dropped and counted — explicit lossy fire-and-forget mode.
  Database db(PoolOptions(1, 0, AsyncBackpressure::kReject));
  Install(db,
          "CREATE TRIGGER Lossy DETACHED CREATE ON 'N' FOR EACH NODE "
          "BEGIN CREATE (:Log {i: NEW.i}) END");
  for (int i = 1; i <= 3; ++i) {
    Exec(db, "CREATE (:N {i: " + std::to_string(i) + "})");
  }
  db.DrainAsync();
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["rejected"], 3);
  EXPECT_EQ(stats["enqueued"], 0);
  EXPECT_EQ(stats["applied"], 0);
  EXPECT_EQ(Count(db, "MATCH (l:Log) RETURN count(l)"), 0);
  EXPECT_EQ(Count(db, "MATCH (n:N) RETURN count(n)"), 3);
}

TEST(AsyncPool, SpillPreservesOrderAndState) {
  // capacity 0 + kSpill: the writer absorbs whatever the workers have not
  // applied by the statement boundary. Lossless and order-preserving.
  Database db(PoolOptions(1, 0, AsyncBackpressure::kSpill));
  Install(db,
          "CREATE TRIGGER Chrono DETACHED CREATE ON 'N' FOR EACH NODE "
          "BEGIN CREATE (:Log {i: NEW.i}) END");
  for (int i = 1; i <= 5; ++i) {
    Exec(db, "CREATE (:N {i: " + std::to_string(i) + "})");
  }
  EXPECT_EQ(IntLog(db), (std::vector<int64_t>{1, 2, 3, 4, 5}));
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["enqueued"], 5);
  EXPECT_EQ(stats["applied"], 5);
  EXPECT_EQ(stats["rejected"], 0);
  EXPECT_LE(stats["spilled"], 5);
}

// ---------------------------------------------------------------------------
// Barriers and shutdown

TEST(AsyncPool, DrainAsyncIsABarrier) {
  Database db(PoolOptions(1, 1024, AsyncBackpressure::kBlock));
  Install(db,
          "CREATE TRIGGER Chrono DETACHED CREATE ON 'N' FOR EACH NODE "
          "BEGIN CREATE (:Log {i: NEW.i}) END");
  for (int i = 1; i <= 10; ++i) {
    Exec(db, "CREATE (:N {i: " + std::to_string(i) + "})");
  }
  db.DrainAsync();
  ASSERT_NE(db.async(), nullptr);
  EXPECT_TRUE(db.async()->Idle());
  EXPECT_EQ(IntLog(db),
            (std::vector<int64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["applied"], 10);
  EXPECT_EQ(stats["queue_depth"], 0);
}

TEST(AsyncPool, DdlQuiescesQueuedWork) {
  // DROP TRIGGER fences on the pool: activations of the dropped trigger
  // that are already queued still apply, before the drop takes effect.
  Database db(PoolOptions(1, 1024, AsyncBackpressure::kBlock));
  Install(db,
          "CREATE TRIGGER Doomed DETACHED CREATE ON 'N' FOR EACH NODE "
          "BEGIN CREATE (:Log {i: NEW.i}) END");
  Exec(db, "CREATE (:N {i: 7})");
  Exec(db, "DROP TRIGGER Doomed");
  EXPECT_EQ(IntLog(db), (std::vector<int64_t>{7}));
  // And the trigger really is gone afterwards.
  Exec(db, "CREATE (:N {i: 8})");
  db.DrainAsync();
  EXPECT_EQ(IntLog(db), (std::vector<int64_t>{7}));
}

TEST(AsyncPool, CloseDrainsAndFallsBackToSerial) {
  Database db(PoolOptions(1, 1024, AsyncBackpressure::kBlock));
  Install(db,
          "CREATE TRIGGER Chrono DETACHED CREATE ON 'N' FOR EACH NODE "
          "BEGIN CREATE (:Log {i: NEW.i}) END");
  for (int i = 1; i <= 4; ++i) {
    Exec(db, "CREATE (:N {i: " + std::to_string(i) + "})");
  }
  // Close() drains the queue and stops the workers.
  ASSERT_TRUE(db.Close().ok());
  EXPECT_EQ(db.stats().detached_runs, 4u);
  // A stopped pool no longer accepts hand-offs; detached execution falls
  // back to the legacy on-writer serial drain — losslessly.
  Exec(db, "CREATE (:N {i: 5})");
  EXPECT_EQ(IntLog(db), (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

// ---------------------------------------------------------------------------
// Chain valve

TEST(AsyncPool, ChainValveCutsSelfSustainingCascade) {
  // A detached trigger on :A that creates another :A would re-activate
  // itself forever. The serial drain errors the activating committer; the
  // pool has no committer left to error to, so the valve drops the chain
  // at max_detached_queue applies and counts the drop.
  EngineOptions opts = PoolOptions(1, 0, AsyncBackpressure::kBlock);
  opts.max_detached_queue = 5;
  Database db(opts);
  Install(db,
          "CREATE TRIGGER Ouro DETACHED CREATE ON 'A' FOR EACH NODE "
          "BEGIN CREATE (:A) END");
  Exec(db, "CREATE (:A)");
  // Seed node + one node per allowed chain apply.
  EXPECT_EQ(Count(db, "MATCH (a:A) RETURN count(a)"), 6);
  std::map<std::string, int64_t> stats = AsyncStats(db);
  EXPECT_EQ(stats["rejected"], 1);
  EXPECT_EQ(stats["applied"], 5);
  EXPECT_EQ(stats["enqueued"], 6);
  // A fresh writer hand-off resets the valve: the next chain gets its own
  // full allowance.
  Exec(db, "CREATE (:A)");
  EXPECT_EQ(Count(db, "MATCH (a:A) RETURN count(a)"), 12);
  stats = AsyncStats(db);
  EXPECT_EQ(stats["rejected"], 2);
}

}  // namespace
}  // namespace pgt
