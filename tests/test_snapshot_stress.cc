// Multi-threaded snapshot reader stress: N reader threads run QueryAt
// against pinned snapshots while the single writer commits a mutation
// workload. Run under ASan/UBSan and TSan in CI (the TSan job exists for
// this suite: the reader hot path is lock-free by design and the sanitizer
// proves it race-free).
//
// Invariant checked by every reader on every snapshot: the writer only
// commits states where each Item node satisfies a + b == 100 (both
// properties are reassigned in one statement, i.e. one commit). A reader
// observing a mix of two commits — or a torn read — breaks the invariant.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/storage/snapshot.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

constexpr int kItems = 64;
constexpr int kWriterCommits = 120;
constexpr int kReaderThreads = 4;

class SnapshotStressTest : public ::testing::Test {
 protected:
  void Run(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }

  Database db_;
};

TEST_F(SnapshotStressTest, ConcurrentReadersWhileWriterCommits) {
  for (int i = 0; i < kItems; ++i) {
    Run("CREATE (:Item {k: " + std::to_string(i) + ", a: 100, b: 0})");
  }
  // Arm the substrate on the writer thread before any reader exists.
  ASSERT_TRUE(db_.OpenSnapshot().ok());

  std::atomic<bool> done{false};
  std::atomic<int> reader_errors{0};
  std::atomic<int> invariant_breaks{0};
  std::atomic<long> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&] {
      // Keep reading until the writer is done AND this reader performed a
      // minimum amount of work (on a loaded single-core host the writer
      // can otherwise finish before a reader gets scheduled at all).
      for (long my_reads = 0;
           !done.load(std::memory_order_acquire) || my_reads < 5;) {
        auto snap = db_.store().OpenSnapshot();
        if (snap == nullptr) {
          ++reader_errors;
          continue;
        }
        auto r = db_.QueryAt(
            *snap,
            "MATCH (i:Item) "
            "RETURN count(i) AS c, sum(i.a) AS sa, sum(i.b) AS sb");
        if (!r.ok()) {
          ++reader_errors;
          continue;
        }
        const auto& row = r.value().rows[0];
        const int64_t c = row[0].int_value();
        const int64_t total = row[1].int_value() + row[2].int_value();
        if (c != kItems || total != 100 * kItems) ++invariant_breaks;
        // Point reads through the same snapshot must agree with it too.
        auto one = db_.QueryAt(
            *snap, "MATCH (i:Item {k: 3}) RETURN i.a + i.b AS s");
        if (!one.ok() || one.value().rows.size() != 1 ||
            one.value().rows[0][0].int_value() != 100) {
          ++invariant_breaks;
        }
        ++my_reads;
        ++reads;
      }
    });
  }

  // Writer: rebalance a and b (one statement = one commit), with periodic
  // churn that creates and detach-deletes extra nodes and relationships so
  // creation, deletion, label-bucket, and adjacency publication are all
  // exercised under concurrency.
  for (int i = 0; i < kWriterCommits; ++i) {
    const int k = i % kItems;
    const int a = (i * 37) % 101;
    Run("MATCH (i:Item {k: " + std::to_string(k) + "}) SET i.a = " +
        std::to_string(a) + ", i.b = " + std::to_string(100 - a));
    if (i % 10 == 0) {
      Run("CREATE (:Scratch {round: " + std::to_string(i) + "})");
      Run("MATCH (s:Scratch), (i:Item {k: 1}) CREATE (s)-[:Touches]->(i)");
      Run("MATCH (s:Scratch) DETACH DELETE s");
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(invariant_breaks.load(), 0);
  EXPECT_GT(reads.load(), 0);

  // With every snapshot released, commit-time GC empties the sidecar.
  Run("MATCH (i:Item {k: 0}) SET i.a = 100, i.b = 0");
  EXPECT_EQ(db_.store().snapshots().SidecarVersions(), 0u);
}

TEST_F(SnapshotStressTest, ReadersPinningDistinctEpochsStayConsistent) {
  for (int i = 0; i < 8; ++i) {
    Run("CREATE (:Gen {v: 0})");
  }
  ASSERT_TRUE(db_.OpenSnapshot().ok());

  // Writer bumps a generation counter; readers grab snapshots at random
  // points and verify every node agrees on the generation within one
  // snapshot (all 8 are updated in a single commit).
  std::atomic<bool> done{false};
  std::atomic<int> breaks{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&] {
      std::vector<std::shared_ptr<const GraphSnapshot>> held;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = db_.store().OpenSnapshot();
        if (snap == nullptr) continue;
        auto r = db_.QueryAt(
            *snap, "MATCH (g:Gen) RETURN min(g.v) AS lo, max(g.v) AS hi");
        if (!r.ok() || r.value().rows[0][0].int_value() !=
                           r.value().rows[0][1].int_value()) {
          ++breaks;
        }
        // Hold a few snapshots to force multi-epoch sidecar chains.
        if (held.size() < 4) held.push_back(std::move(snap));
      }
      for (auto& s : held) {
        auto r = db_.QueryAt(
            *s, "MATCH (g:Gen) RETURN min(g.v) AS lo, max(g.v) AS hi");
        if (!r.ok() || r.value().rows[0][0].int_value() !=
                           r.value().rows[0][1].int_value()) {
          ++breaks;
        }
      }
    });
  }
  for (int i = 1; i <= 60; ++i) {
    Run("MATCH (g:Gen) SET g.v = " + std::to_string(i));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(breaks.load(), 0);
}

}  // namespace
}  // namespace pgt
