// Event-matching tests: MatchActivations over the ten Section 4.2 event
// kinds ({node, relationship} x {create, delete} + {label, node-property,
// relationship-property} x {set, remove}), both granularities, and the two
// label-event semantics (DESIGN.md D3).

#include <gtest/gtest.h>

#include "src/cypher/parser.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

class EngineEventsTest : public ::testing::Test {
 protected:
  TriggerDef Def(const std::string& ddl) {
    auto r = TriggerDdlParser::ParseCreate(ddl);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }

  /// Runs `statement` and captures the statement delta by re-deriving it
  /// from the accumulated transaction delta (single statement per tx).
  GraphDelta RunAndCapture(Database& db, const std::string& statement) {
    auto tx = std::move(db.BeginTx()).value();
    tx->PushDeltaScope();
    auto q = cypher::Parser::ParseQuery(statement);
    EXPECT_TRUE(q.ok()) << q.status();
    cypher::EvalContext ctx = db.MakeEvalContext(tx.get(), nullptr, nullptr);
    cypher::Executor exec(ctx);
    auto res = exec.Run(q.value(), cypher::Row{});
    EXPECT_TRUE(res.ok()) << statement << " -> " << res.status();
    GraphDelta delta = tx->PopDeltaScope();
    EXPECT_TRUE(db.CommitWithTriggers(std::move(tx)).ok());
    return delta;
  }

  Database db_;
};

TEST_F(EngineEventsTest, CreateNodeEvent) {
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER CREATE ON 'A' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "CREATE (:A), (:A), (:B)");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 2u);
  // NEW bound as single and as pseudo-set.
  EXPECT_NE(acts[0].env.FindSingle("NEW"), nullptr);
  EXPECT_NE(acts[0].env.FindSet("NEW"), nullptr);
  EXPECT_TRUE(acts[0].env.old_view_vars.empty());
}

TEST_F(EngineEventsTest, CreateNodeAllGranularityDedupes) {
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER CREATE ON 'A' FOR ALL NODES "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "CREATE (:A), (:A), (:A)");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  const auto* set = acts[0].env.FindSet("NEWNODES");
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->ids.size(), 3u);
  EXPECT_TRUE(set->is_node);
}

TEST_F(EngineEventsTest, DeleteNodeEventUsesImages) {
  RunAndCapture(db_, "CREATE (:A {k: 1}), (:A {k: 2})");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER DELETE ON 'A' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "MATCH (a:A) DELETE a");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_NE(acts[0].env.FindSingle("OLD"), nullptr);
  EXPECT_TRUE(acts[0].env.IsOldView("OLD"));
}

TEST_F(EngineEventsTest, CreateAndDeleteRelEvents) {
  RunAndCapture(db_, "CREATE (:A), (:B)");
  TriggerDef created = Def(
      "CREATE TRIGGER T1 AFTER CREATE ON 'R' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:X) END");
  TriggerDef deleted = Def(
      "CREATE TRIGGER T2 AFTER DELETE ON 'R' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:X) END");
  GraphDelta c =
      RunAndCapture(db_, "MATCH (a:A), (b:B) CREATE (a)-[:R]->(b)");
  EXPECT_EQ(db_.engine().MatchActivations(created, c).size(), 1u);
  EXPECT_TRUE(db_.engine().MatchActivations(deleted, c).empty());
  GraphDelta d = RunAndCapture(db_, "MATCH ()-[r:R]->() DELETE r");
  EXPECT_TRUE(db_.engine().MatchActivations(created, d).empty());
  EXPECT_EQ(db_.engine().MatchActivations(deleted, d).size(), 1u);
}

TEST_F(EngineEventsTest, RelTypeFilterDistinguishes) {
  RunAndCapture(db_, "CREATE (:A), (:B)");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER CREATE ON 'R' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(
      db_, "MATCH (a:A), (b:B) CREATE (a)-[:S]->(b) CREATE (a)-[:R]->(b)");
  EXPECT_EQ(db_.engine().MatchActivations(def, delta).size(), 1u);
}

TEST_F(EngineEventsTest, SetPropertyEventCarriesOldAndNew) {
  RunAndCapture(db_, "CREATE (:L {p: 1})");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER SET ON 'L'.'p' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "MATCH (n:L) SET n.p = 2");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_NE(acts[0].env.FindSingle("OLD"), nullptr);
  EXPECT_NE(acts[0].env.FindSingle("NEW"), nullptr);
  const auto& overlay = acts[0].env.old_node_props;
  ASSERT_EQ(overlay.size(), 1u);
  EXPECT_EQ(overlay.front().value.int_value(), 1);
}

TEST_F(EngineEventsTest, SetPropertyFiltersByKeyAndLabel) {
  RunAndCapture(db_, "CREATE (:L {p: 1, q: 1}), (:M {p: 1})");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER SET ON 'L'.'p' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta wrong_key = RunAndCapture(db_, "MATCH (n:L) SET n.q = 2");
  EXPECT_TRUE(db_.engine().MatchActivations(def, wrong_key).empty());
  GraphDelta wrong_label = RunAndCapture(db_, "MATCH (n:M) SET n.p = 2");
  EXPECT_TRUE(db_.engine().MatchActivations(def, wrong_label).empty());
  GraphDelta right = RunAndCapture(db_, "MATCH (n:L) SET n.p = 2");
  EXPECT_EQ(db_.engine().MatchActivations(def, right).size(), 1u);
}

TEST_F(EngineEventsTest, RemovePropertyEventIsOldOnly) {
  RunAndCapture(db_, "CREATE (:L {p: 7})");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER REMOVE ON 'L'.'p' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "MATCH (n:L) REMOVE n.p");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_NE(acts[0].env.FindSingle("OLD"), nullptr);
  EXPECT_EQ(acts[0].env.FindSingle("NEW"), nullptr);
  // Old value readable through the overlay.
  EXPECT_EQ(acts[0].env.old_node_props.front().value.int_value(), 7);
}

TEST_F(EngineEventsTest, RelPropertyEvents) {
  RunAndCapture(db_, "CREATE (:A)-[:R {w: 1}]->(:B)");
  TriggerDef set_def = Def(
      "CREATE TRIGGER T AFTER SET ON 'R'.'w' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:X) END");
  TriggerDef rem_def = Def(
      "CREATE TRIGGER T2 AFTER REMOVE ON 'R'.'w' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:X) END");
  GraphDelta set_delta =
      RunAndCapture(db_, "MATCH ()-[r:R]->() SET r.w = 2");
  EXPECT_EQ(db_.engine().MatchActivations(set_def, set_delta).size(), 1u);
  EXPECT_TRUE(db_.engine().MatchActivations(rem_def, set_delta).empty());
  GraphDelta rem_delta = RunAndCapture(db_, "MATCH ()-[r:R]->() REMOVE r.w");
  EXPECT_EQ(db_.engine().MatchActivations(rem_def, rem_delta).size(), 1u);
}

TEST_F(EngineEventsTest, LabelSetEventMonitoredSemantics) {
  // Default kMonitoredLabel: ON 'Flagged' fires when :Flagged is set.
  RunAndCapture(db_, "CREATE (:P)");
  db_.store().InternLabel("Flagged");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER SET ON 'Flagged' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "MATCH (p:P) SET p:Flagged");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_NE(acts[0].env.FindSingle("NEW"), nullptr);
  // Setting an unrelated label does not fire.
  GraphDelta other = RunAndCapture(db_, "MATCH (p:P) SET p:Other");
  EXPECT_TRUE(db_.engine().MatchActivations(def, other).empty());
}

TEST_F(EngineEventsTest, LabelRemoveEventMonitoredSemantics) {
  RunAndCapture(db_, "CREATE (:P:Flagged)");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER REMOVE ON 'Flagged' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "MATCH (p:P) REMOVE p:Flagged");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_NE(acts[0].env.FindSingle("OLD"), nullptr);
}

TEST_F(EngineEventsTest, LabelEventTargetSetChangeSemantics) {
  // Strict D3 reading: ON 'P' + SET fires when *another* label lands on a
  // node that carries P; P itself is excluded.
  EngineOptions options;
  options.label_event_semantics = LabelEventSemantics::kTargetSetChange;
  Database db(options);
  RunAndCapture(db, "CREATE (:P), (:Q)");
  db.store().InternLabel("Deceased");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER SET ON 'P' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta on_p = RunAndCapture(db, "MATCH (p:P) SET p:Deceased");
  EXPECT_EQ(db.engine().MatchActivations(def, on_p).size(), 1u);
  GraphDelta on_q = RunAndCapture(db, "MATCH (q:Q) SET q:Deceased");
  EXPECT_TRUE(db.engine().MatchActivations(def, on_q).empty());
  // Setting P itself on a fresh node is NOT an event under strict reading.
  GraphDelta self = RunAndCapture(db, "MATCH (q:Q) SET q:P");
  EXPECT_TRUE(db.engine().MatchActivations(def, self).empty());
}

TEST_F(EngineEventsTest, CreationLabelsAreNotSetEvents) {
  // Labels present at node creation belong to the CREATE event only.
  db_.store().InternLabel("Flagged");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER SET ON 'Flagged' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "CREATE (:Flagged)");
  EXPECT_TRUE(db_.engine().MatchActivations(def, delta).empty());
}

TEST_F(EngineEventsTest, UnknownLabelNeverMatches) {
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER CREATE ON 'NeverUsed' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "CREATE (:A)");
  EXPECT_TRUE(db_.engine().MatchActivations(def, delta).empty());
}

TEST_F(EngineEventsTest, ReferencingAliasRenamesBindings) {
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER CREATE ON 'A' REFERENCING NEWNODES AS fresh "
      "FOR ALL NODES BEGIN CREATE (:X) END");
  GraphDelta delta = RunAndCapture(db_, "CREATE (:A)");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_NE(acts[0].env.FindSet("fresh"), nullptr);
  EXPECT_EQ(acts[0].env.FindSet("NEWNODES"), nullptr);
}

TEST_F(EngineEventsTest, SetGranularityOverlayKeepsFirstOldValue) {
  RunAndCapture(db_, "CREATE (:L {p: 1})");
  TriggerDef def = Def(
      "CREATE TRIGGER T AFTER SET ON 'L'.'p' FOR ALL NODES "
      "BEGIN CREATE (:X) END");
  // Two sets in one statement: the pre-statement image (1) must win.
  GraphDelta delta =
      RunAndCapture(db_, "MATCH (n:L) SET n.p = 2 SET n.p = 3");
  auto acts = db_.engine().MatchActivations(def, delta);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].env.old_node_props.front().value.int_value(), 1);
  EXPECT_EQ(acts[0].env.FindSet("NEWNODES")->ids.size(), 1u);  // deduped
}

}  // namespace
}  // namespace pgt
