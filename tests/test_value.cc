// Unit tests for the dynamic Value model (src/common/value.h).

#include "src/common/value.h"

#include <gtest/gtest.h>

namespace pgt {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, BoolRoundTrip) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_FALSE(Value::Bool(false).bool_value());
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
}

TEST(ValueTest, IntAndDoubleAccessors) {
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Int(3).as_double(), 3.0);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int(1).Equals(Value::Double(1.0)));
  EXPECT_TRUE(Value::Double(2.0).Equals(Value::Int(2)));
  EXPECT_FALSE(Value::Int(1).Equals(Value::Double(1.5)));
}

TEST(ValueTest, NullEqualsOnlyNull) {
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_FALSE(Value::String("").Equals(Value::Null()));
}

TEST(ValueTest, StringEquality) {
  EXPECT_TRUE(Value::String("abc").Equals(Value::String("abc")));
  EXPECT_FALSE(Value::String("abc").Equals(Value::String("abd")));
  EXPECT_FALSE(Value::String("1").Equals(Value::Int(1)));
}

TEST(ValueTest, NodeRelIdentity) {
  EXPECT_TRUE(Value::Node(NodeId{7}).Equals(Value::Node(NodeId{7})));
  EXPECT_FALSE(Value::Node(NodeId{7}).Equals(Value::Node(NodeId{8})));
  EXPECT_FALSE(Value::Node(NodeId{7}).Equals(Value::Rel(RelId{7})));
}

TEST(ValueTest, ListEqualityIsStructural) {
  Value a = Value::MakeList({Value::Int(1), Value::String("x")});
  Value b = Value::MakeList({Value::Int(1), Value::String("x")});
  Value c = Value::MakeList({Value::Int(1)});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(ValueTest, NestedListEquality) {
  Value inner = Value::MakeList({Value::Int(1), Value::Int(2)});
  Value a = Value::MakeList({inner, Value::Bool(true)});
  Value b = Value::MakeList(
      {Value::MakeList({Value::Int(1), Value::Int(2)}), Value::Bool(true)});
  EXPECT_TRUE(a.Equals(b));
}

TEST(ValueTest, MapEquality) {
  Value a = Value::MakeMap({{"k", Value::Int(1)}, {"m", Value::Null()}});
  Value b = Value::MakeMap({{"m", Value::Null()}, {"k", Value::Int(1)}});
  EXPECT_TRUE(a.Equals(b));
  Value c = Value::MakeMap({{"k", Value::Int(2)}});
  EXPECT_FALSE(a.Equals(c));
}

TEST(ValueTest, TotalCompareNullSortsLast) {
  EXPECT_LT(Value::Int(5).TotalCompare(Value::Null()), 0);
  EXPECT_GT(Value::Null().TotalCompare(Value::String("z")), 0);
  EXPECT_EQ(Value::Null().TotalCompare(Value::Null()), 0);
}

TEST(ValueTest, TotalCompareNumericCrossType) {
  EXPECT_LT(Value::Int(1).TotalCompare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).TotalCompare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(3).TotalCompare(Value::Double(3.0)), 0);
}

TEST(ValueTest, TotalCompareStrings) {
  EXPECT_LT(Value::String("abc").TotalCompare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").TotalCompare(Value::String("x")), 0);
}

TEST(ValueTest, TotalCompareListsLexicographic) {
  Value a = Value::MakeList({Value::Int(1), Value::Int(2)});
  Value b = Value::MakeList({Value::Int(1), Value::Int(3)});
  Value c = Value::MakeList({Value::Int(1)});
  EXPECT_LT(a.TotalCompare(b), 0);
  EXPECT_GT(a.TotalCompare(c), 0);  // longer sorts after its prefix
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::MakeList({Value::Int(1), Value::Int(2)}).ToString(),
            "[1, 2]");
  EXPECT_EQ(Value::MakeMap({{"a", Value::Int(1)}}).ToString(), "{a: 1}");
  EXPECT_EQ(Value::Node(NodeId{3}).ToString(), "#n3");
  EXPECT_EQ(Value::Rel(RelId{4}).ToString(), "#r4");
}

TEST(ValueTest, DateAndDateTime) {
  Value d = Value::MakeDate(100);
  Value t = Value::MakeDateTime(123456);
  EXPECT_EQ(d.type(), ValueType::kDate);
  EXPECT_EQ(t.type(), ValueType::kDateTime);
  EXPECT_EQ(d.date_value().days, 100);
  EXPECT_EQ(t.datetime_value().micros, 123456);
  EXPECT_TRUE(d.Equals(Value::MakeDate(100)));
  EXPECT_LT(Value::MakeDate(1).TotalCompare(Value::MakeDate(2)), 0);
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(Value::Null().type_name(), "NULL");
  EXPECT_STREQ(Value::Int(1).type_name(), "INTEGER");
  EXPECT_STREQ(Value::Double(1.0).type_name(), "FLOAT");
  EXPECT_STREQ(Value::String("").type_name(), "STRING");
  EXPECT_STREQ(Value::MakeList({}).type_name(), "LIST");
  EXPECT_STREQ(Value::MakeMap({}).type_name(), "MAP");
}

TEST(ValueTest, ListSharingIsByValueSemantics) {
  Value a = Value::MakeList({Value::Int(1)});
  Value b = a;  // shares payload
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(&a.list_value(), &b.list_value());  // shared, immutable payload
}

TEST(ValueVectorLessTest, OrdersTuples) {
  ValueVectorLess less;
  std::vector<Value> a = {Value::Int(1), Value::String("a")};
  std::vector<Value> b = {Value::Int(1), Value::String("b")};
  std::vector<Value> c = {Value::Int(1)};
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  EXPECT_TRUE(less(c, a));  // shorter first
  EXPECT_FALSE(less(a, a));
}

// Property-style sweep: TotalCompare must be a consistent total order over
// a mixed corpus (antisymmetry + transitivity spot checks).
class ValueOrderProperty : public ::testing::TestWithParam<int> {};

std::vector<Value> Corpus() {
  return {Value::Null(),
          Value::Bool(false),
          Value::Bool(true),
          Value::Int(-3),
          Value::Int(0),
          Value::Int(7),
          Value::Double(-0.5),
          Value::Double(7.0),
          Value::String(""),
          Value::String("abc"),
          Value::MakeDate(10),
          Value::MakeDateTime(99),
          Value::Node(NodeId{1}),
          Value::Rel(RelId{2}),
          Value::MakeList({Value::Int(1)}),
          Value::MakeMap({{"k", Value::Int(1)}})};
}

TEST_P(ValueOrderProperty, AntisymmetryAgainstWholeCorpus) {
  std::vector<Value> corpus = Corpus();
  const Value& a = corpus[static_cast<size_t>(GetParam())];
  for (const Value& b : corpus) {
    const int ab = a.TotalCompare(b);
    const int ba = b.TotalCompare(a);
    EXPECT_EQ(ab < 0, ba > 0);
    EXPECT_EQ(ab == 0, ba == 0);
  }
}

TEST_P(ValueOrderProperty, TransitivityAgainstWholeCorpus) {
  std::vector<Value> corpus = Corpus();
  const Value& a = corpus[static_cast<size_t>(GetParam())];
  for (const Value& b : corpus) {
    for (const Value& c : corpus) {
      if (a.TotalCompare(b) <= 0 && b.TotalCompare(c) <= 0) {
        EXPECT_LE(a.TotalCompare(c), 0)
            << a.ToString() << " " << b.ToString() << " " << c.ToString();
      }
    }
  }
}

TEST_P(ValueOrderProperty, EqualsConsistentWithCompareForComparables) {
  std::vector<Value> corpus = Corpus();
  const Value& a = corpus[static_cast<size_t>(GetParam())];
  for (const Value& b : corpus) {
    if (a.Equals(b) && !a.is_null()) {
      EXPECT_EQ(a.TotalCompare(b), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ValueOrderProperty,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace pgt
