// Snapshot read substrate (src/storage/snapshot.h, docs/snapshots.md):
//  * differential suite — every corpus query returns byte-identical results
//    run live (Execute, read-only fast path) and via a snapshot pinned
//    right after the same commit;
//  * epoch pinning — a snapshot opened before a mutation keeps reading the
//    prior image while the live store (and newer snapshots) move on;
//  * sidecar lifetime — superseded versions are banked only while an older
//    snapshot can still observe them and are freed on release;
//  * read-only routing — QueryAt rejects writes/CALL/clock functions, and
//    Database::Execute runs read-only statements without a transaction.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/storage/snapshot.h"
#include "src/storage/store_view.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

std::string Render(const cypher::QueryResult& r) {
  std::string out;
  for (const std::string& c : r.columns) out += c + "|";
  out += "\n";
  for (const auto& row : r.rows) {
    for (const Value& v : row) out += v.ToString() + "|";
    out += "\n";
  }
  return out;
}

class SnapshotTest : public ::testing::Test {
 protected:
  cypher::QueryResult Run(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? std::move(r).value() : cypher::QueryResult{};
  }

  std::shared_ptr<const GraphSnapshot> Snap() {
    auto s = db_.OpenSnapshot();
    EXPECT_TRUE(s.ok()) << s.status();
    return s.ok() ? std::move(s).value() : nullptr;
  }

  cypher::QueryResult RunAt(const GraphSnapshot& snap, const std::string& q) {
    auto r = db_.QueryAt(snap, q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? std::move(r).value() : cypher::QueryResult{};
  }

  Database db_;
};

// The read-only corpus both differential tests run. Exercises label scans,
// full scans, property predicates, joins, optional match, variable-length
// paths, aggregation, ORDER BY / SKIP / LIMIT, EXISTS, label tests, and
// entity-returning projections.
const char* kCorpus[] = {
    "MATCH (n) RETURN count(n) AS c",
    "MATCH (p:Person) RETURN p.name AS name ORDER BY name",
    "MATCH (p:Person) WHERE p.age > 30 RETURN p.name AS n ORDER BY n",
    "MATCH (p:Person {name: 'ann'})-[k:Knows]->(q) "
    "RETURN q.name AS n, k.since AS s ORDER BY n",
    "MATCH (a:Person {name: 'ann'})-[:Knows*1..3]->(p) "
    "RETURN DISTINCT p.name AS name ORDER BY name",
    "MATCH (p:Person) OPTIONAL MATCH (p)-[:WorksAt]->(co:Company) "
    "RETURN p.name AS name, co.name AS employer ORDER BY name",
    "MATCH (p:Person)-[:WorksAt]->(co:Company) "
    "WITH co.name AS employer, count(p) AS headcount, avg(p.age) AS avg_age "
    "RETURN employer, headcount, avg_age ORDER BY employer",
    "MATCH (p:Person) WHERE EXISTS { (p)-[:Knows]->(:Person) } "
    "RETURN p.name AS n ORDER BY n",
    "MATCH (n:Person) RETURN labels(n) AS ls, keys(n) AS ks, n.name AS name "
    "ORDER BY name SKIP 1 LIMIT 2",
    "MATCH (a)-[r]->(b) RETURN type(r) AS t, count(*) AS c ORDER BY t",
    "UNWIND [1, 2, 3] AS x RETURN x * 2 AS y ORDER BY y DESC",
    "MATCH (p:Person) WHERE p.name STARTS WITH 'a' OR p.age < 25 "
    "RETURN p AS node, id(p) AS pid ORDER BY pid",
    "MATCH (x:Nope) RETURN count(x) AS c",
};

// Mutating workload applied statement by statement; after each commit the
// differential suite re-checks the full corpus live vs. snapshot.
const char* kWorkload[] = {
    "CREATE (:Person {name: 'ann', age: 34}), (:Person {name: 'bob', "
    "age: 28}), (:Person {name: 'cat', age: 41})",
    "CREATE (:Person {name: 'dan', age: 23}), (:Person {name: 'eve', "
    "age: 51})",
    "MATCH (a:Person {name: 'ann'}), (b:Person {name: 'bob'}) "
    "CREATE (a)-[:Knows {since: 2015}]->(b)",
    "MATCH (a:Person {name: 'ann'}), (c:Person {name: 'cat'}) "
    "CREATE (a)-[:Knows {since: 2018}]->(c)",
    "MATCH (b:Person {name: 'bob'}), (d:Person {name: 'dan'}) "
    "CREATE (b)-[:Knows {since: 2020}]->(d)",
    "CREATE (:Company {name: 'Initech'}), (:Company {name: 'Hooli'})",
    "MATCH (p:Person), (co:Company {name: 'Initech'}) "
    "WHERE p.name IN ['ann', 'bob'] CREATE (p)-[:WorksAt]->(co)",
    "MATCH (p:Person {name: 'eve'}) SET p.age = 52, p.city = 'basel'",
    "MATCH (p:Person {name: 'dan'}) SET p:Intern",
    "MATCH (p:Person {name: 'cat'})-[w:WorksAt]->() DELETE w",
    "MATCH (p:Person {name: 'cat'}) DETACH DELETE p",
    "MATCH (p:Intern) REMOVE p:Intern",
    "MATCH (p:Person {name: 'eve'}) REMOVE p.city",
};

TEST_F(SnapshotTest, DifferentialCorpusLiveVsSnapshotAfterEachCommit) {
  for (const char* stmt : kWorkload) {
    Run(stmt);
    std::shared_ptr<const GraphSnapshot> snap = Snap();
    ASSERT_NE(snap, nullptr);
    for (const char* q : kCorpus) {
      const std::string live = Render(Run(q));
      const std::string at = Render(RunAt(*snap, q));
      EXPECT_EQ(live, at) << "after \"" << stmt << "\" query \"" << q << "\"";
    }
  }
}

TEST_F(SnapshotTest, SnapshotTakenBeforeCommitIsUnaffected) {
  Run("CREATE (:Person {name: 'ann', age: 34})");
  std::shared_ptr<const GraphSnapshot> before = Snap();
  // Capture the corpus results at the pinned epoch, then mutate heavily.
  std::vector<std::string> pinned;
  for (const char* q : kCorpus) pinned.push_back(Render(RunAt(*before, q)));
  for (const char* stmt : kWorkload) Run(stmt);
  // The old snapshot still answers from the pre-mutation image...
  for (size_t i = 0; i < std::size(kCorpus); ++i) {
    EXPECT_EQ(Render(RunAt(*before, kCorpus[i])), pinned[i]) << kCorpus[i];
  }
  // ...while a fresh snapshot agrees with the live store.
  std::shared_ptr<const GraphSnapshot> after = Snap();
  for (const char* q : kCorpus) {
    EXPECT_EQ(Render(Run(q)), Render(RunAt(*after, q))) << q;
  }
}

TEST_F(SnapshotTest, PinnedSnapshotReadsPriorImages) {
  Run("CREATE (:Item {k: 1, v: 'old'})");
  std::shared_ptr<const GraphSnapshot> snap = Snap();
  Run("MATCH (i:Item {k: 1}) SET i.v = 'new'");
  Run("CREATE (:Item {k: 2, v: 'fresh'})");

  cypher::QueryResult at =
      RunAt(*snap, "MATCH (i:Item) RETURN i.k AS k, i.v AS v ORDER BY k");
  ASSERT_EQ(at.rows.size(), 1u);  // item 2 does not exist at the old epoch
  EXPECT_EQ(at.rows[0][1].string_value(), "old");

  cypher::QueryResult live =
      Run("MATCH (i:Item) RETURN i.k AS k, i.v AS v ORDER BY k");
  ASSERT_EQ(live.rows.size(), 2u);
  EXPECT_EQ(live.rows[0][1].string_value(), "new");
}

TEST_F(SnapshotTest, DeletedItemsStayVisibleAtTheirEpoch) {
  Run("CREATE (:Doomed {k: 1})-[:Tie {w: 7}]->(:Doomed {k: 2})");
  std::shared_ptr<const GraphSnapshot> snap = Snap();
  Run("MATCH (d:Doomed) DETACH DELETE d");

  EXPECT_EQ(Run("MATCH (d:Doomed) RETURN count(d) AS c")
                .at(0, 0)
                .int_value(),
            0);
  cypher::QueryResult at = RunAt(
      *snap, "MATCH (a:Doomed)-[t:Tie]->(b:Doomed) "
             "RETURN a.k AS a, t.w AS w, b.k AS b");
  ASSERT_EQ(at.rows.size(), 1u);
  EXPECT_EQ(at.rows[0][1].int_value(), 7);
}

TEST_F(SnapshotTest, LabelsInternedAfterTheSnapshotDoNotExistInIt) {
  Run("CREATE (:Seed)");
  std::shared_ptr<const GraphSnapshot> snap = Snap();
  Run("CREATE (:Brand {x: 1})");
  EXPECT_EQ(RunAt(*snap, "MATCH (b:Brand) RETURN count(b) AS c")
                .at(0, 0)
                .int_value(),
            0);
  EXPECT_EQ(Run("MATCH (b:Brand) RETURN count(b) AS c").at(0, 0).int_value(),
            1);
}

TEST_F(SnapshotTest, SameEpochSnapshotsShareOnePin) {
  Run("CREATE (:Seed)");
  std::shared_ptr<const GraphSnapshot> a = Snap();
  std::shared_ptr<const GraphSnapshot> b = Snap();
  EXPECT_EQ(a.get(), b.get());  // cached per epoch
  EXPECT_EQ(db_.store().snapshots().PinnedSnapshots(), 1u);
  Run("CREATE (:Seed)");
  std::shared_ptr<const GraphSnapshot> c = Snap();
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(db_.store().snapshots().PinnedSnapshots(), 2u);
}

TEST_F(SnapshotTest, SidecarVersionsFreedWhenSnapshotReleases) {
  Run("CREATE (:Item {k: 1, v: 0})");
  const SnapshotManager& mgr = db_.store().snapshots();
  std::shared_ptr<const GraphSnapshot> snap = Snap();
  EXPECT_EQ(mgr.SidecarVersions(), 0u);
  for (int i = 1; i <= 5; ++i) {
    Run("MATCH (i:Item {k: 1}) SET i.v = " + std::to_string(i));
  }
  // The pinned snapshot forces the prior versions to stay banked.
  EXPECT_GT(mgr.SidecarVersions(), 0u);
  EXPECT_EQ(RunAt(*snap, "MATCH (i:Item) RETURN i.v AS v")
                .at(0, 0)
                .int_value(),
            0);
  snap.reset();  // unpin: release GC truncates every chain to its head
  EXPECT_EQ(mgr.SidecarVersions(), 0u);
  EXPECT_EQ(mgr.PinnedSnapshots(), 0u);
}

TEST_F(SnapshotTest, SidecarStaysEmptyWithoutPinnedSnapshots) {
  Run("CREATE (:Item {k: 1, v: 0})");
  Snap();  // arm, then release immediately
  for (int i = 1; i <= 5; ++i) {
    Run("MATCH (i:Item {k: 1}) SET i.v = " + std::to_string(i));
  }
  // Commit-time GC reclaims superseded versions as soon as no snapshot
  // can observe them.
  EXPECT_EQ(db_.store().snapshots().SidecarVersions(), 0u);
}

TEST_F(SnapshotTest, QueryAtRejectsWritesCallAndClock) {
  Run("CREATE (:Seed)");
  std::shared_ptr<const GraphSnapshot> snap = Snap();
  EXPECT_EQ(db_.QueryAt(*snap, "CREATE (:X)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db_.QueryAt(*snap, "MATCH (n) SET n.x = 1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db_.QueryAt(*snap, "MATCH (n) DETACH DELETE n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      db_.QueryAt(*snap, "CALL db.labels() YIELD label RETURN label")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(db_.QueryAt(*snap, "RETURN datetime() AS t").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotTest, ArmingRequiresAnIdleWriter) {
  auto tx = db_.BeginTx();
  ASSERT_TRUE(tx.ok());
  EXPECT_EQ(db_.OpenSnapshot().status().code(),
            StatusCode::kFailedPrecondition);
  db_.RollbackAndRelease(std::move(tx).value());
  EXPECT_TRUE(db_.OpenSnapshot().ok());  // idle again: arming succeeds
}

TEST_F(SnapshotTest, ReadOnlyStatementsSkipTransactionSetup) {
  Run("CREATE (:Person {name: 'ann', age: 34})");
  const uint64_t commits = db_.committed_transactions();
  cypher::QueryResult r =
      Run("MATCH (p:Person) RETURN p.name AS n ORDER BY n");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "ann");
  // No transaction was begun or committed for the read.
  EXPECT_EQ(db_.committed_transactions(), commits);
  // Writes still commit as before.
  Run("CREATE (:Person {name: 'bob', age: 28})");
  EXPECT_EQ(db_.committed_transactions(), commits + 1);
}

TEST_F(SnapshotTest, TriggersStillFireAfterReadOnlyFastPath) {
  Run("CREATE TRIGGER Audit AFTER CREATE ON 'Person' FOR EACH NODE "
      "BEGIN CREATE (:Audit {who: NEW.name}) END");
  Run("MATCH (n) RETURN count(n) AS c");  // read-only, no trigger round
  Run("CREATE (:Person {name: 'ann'})");
  EXPECT_EQ(Run("MATCH (a:Audit) RETURN count(a) AS c").at(0, 0).int_value(),
            1);
}

TEST_F(SnapshotTest, SnapshotViewMirrorsStoreReads) {
  Run("CREATE (:Person {name: 'ann', age: 34})-[:Knows {since: 2015}]->"
      "(:Person {name: 'bob', age: 28})");
  std::shared_ptr<const GraphSnapshot> snap = Snap();
  StoreView live = StoreView::Live(db_.store());
  StoreView at = StoreView::Snapshot(*snap);

  EXPECT_EQ(live.NodeCount(), at.NodeCount());
  EXPECT_EQ(live.RelCount(), at.RelCount());
  auto person = live.LookupLabel("Person");
  ASSERT_TRUE(person.has_value());
  EXPECT_EQ(at.LookupLabel("Person"), person);
  EXPECT_EQ(live.NodesByLabel(*person), at.NodesByLabel(*person));
  EXPECT_EQ(live.LabelCardinality(*person), at.LabelCardinality(*person));
  EXPECT_EQ(live.AllNodes(), at.AllNodes());
  EXPECT_EQ(live.AllRels(), at.AllRels());
  for (NodeId n : live.AllNodes()) {
    EXPECT_EQ(*live.NodeLabels(n), *at.NodeLabels(n));
    auto age = live.LookupPropKey("age");
    ASSERT_TRUE(age.has_value());
    EXPECT_TRUE(live.NodeProp(n, *age).Equals(at.NodeProp(n, *age)));
    EXPECT_EQ(live.RelsOf(n, Direction::kBoth, std::nullopt),
              at.RelsOf(n, Direction::kBoth, std::nullopt));
  }
  for (RelId r : live.AllRels()) {
    const StoreView::RelInfo a = live.Rel(r);
    const StoreView::RelInfo b = at.Rel(r);
    EXPECT_EQ(a.type, b.type);
    EXPECT_TRUE(a.src == b.src && a.dst == b.dst);
  }
  EXPECT_NE(live.Indexes(), nullptr);
  EXPECT_EQ(at.Indexes(), nullptr);  // snapshot scans use label fallback
}

TEST_F(SnapshotTest, RollbackPublishesNothing) {
  Run("CREATE (:Item {k: 1, v: 'keep'})");
  std::shared_ptr<const GraphSnapshot> snap = Snap();
  // A failing statement rolls the transaction back mid-flight.
  auto bad = db_.Execute("MATCH (i:Item) SET i.v = 'zap' SET i.q = 1/0");
  EXPECT_FALSE(bad.ok());
  std::shared_ptr<const GraphSnapshot> after = Snap();
  EXPECT_EQ(snap->epoch(), after->epoch());  // no commit, no new epoch
  EXPECT_EQ(RunAt(*after, "MATCH (i:Item) RETURN i.v AS v")
                .at(0, 0)
                .string_value(),
            "keep");
}

}  // namespace
}  // namespace pgt
