// Property-index subsystem tests: PropertyIndex postings and range scans,
// IndexCatalog maintenance through GraphStore mutations, transactional
// consistency (rollback / tombstones leave no stale entries), write-time
// unique enforcement, index DDL, scan planning, and index-backed PG-Key
// enforcement through the schema commit guard.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "src/cypher/parser.h"
#include "src/cypher/scan_plan.h"
#include "src/index/index_catalog.h"
#include "src/index/index_ddl.h"
#include "src/index/property_index.h"
#include "src/schema/pg_schema.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

using index::IndexDdl;
using index::IndexDdlParser;
using index::IndexKind;
using index::IndexSpec;
using index::PropertyIndex;

// --- PropertyIndex unit tests -------------------------------------------------

TEST(PropertyIndexTest, HashInsertLookupErase) {
  PropertyIndex idx(IndexSpec{0, 0, IndexKind::kHash});
  idx.Insert(Value::Int(7), NodeId{3});
  idx.Insert(Value::Int(7), NodeId{1});
  idx.Insert(Value::Int(8), NodeId{2});
  EXPECT_EQ(idx.EntryCount(), 3u);
  EXPECT_EQ(idx.DistinctValues(), 2u);

  std::vector<uint64_t> out;
  idx.Lookup(Value::Int(7), &out);
  ASSERT_EQ(out.size(), 2u);  // posting lists are id-sorted
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 3u);

  idx.Erase(Value::Int(7), NodeId{1});
  out.clear();
  idx.Lookup(Value::Int(7), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(idx.EntryCount(), 2u);
}

TEST(PropertyIndexTest, NullValuesAreNeverIndexed) {
  PropertyIndex idx(IndexSpec{0, 0, IndexKind::kHash});
  idx.Insert(Value::Null(), NodeId{1});
  EXPECT_EQ(idx.EntryCount(), 0u);
}

TEST(PropertyIndexTest, NumericCoercionSharesPosting) {
  // TotalCompare equality: Int(1) and Double(1.0) are the same key, as in
  // Cypher `=`.
  PropertyIndex idx(IndexSpec{0, 0, IndexKind::kHash});
  idx.Insert(Value::Int(1), NodeId{1});
  idx.Insert(Value::Double(1.0), NodeId{2});
  std::vector<uint64_t> out;
  idx.Lookup(Value::Double(1.0), &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(PropertyIndexTest, OrderedRangeScan) {
  PropertyIndex idx(IndexSpec{0, 0, IndexKind::kOrdered});
  for (int i = 0; i < 10; ++i) {
    idx.Insert(Value::Int(i), NodeId{static_cast<uint64_t>(100 + i)});
  }
  std::vector<uint64_t> out;
  idx.Range(Value::Int(3), /*lo_inclusive=*/true, Value::Int(6),
            /*hi_inclusive=*/false, &out);
  ASSERT_EQ(out.size(), 3u);  // 3, 4, 5
  EXPECT_EQ(out[0], 103u);
  EXPECT_EQ(out[2], 105u);

  out.clear();
  idx.Range(Value::Int(7), /*lo_inclusive=*/false, std::nullopt, false,
            &out);
  EXPECT_EQ(out.size(), 2u);  // 8, 9

  out.clear();
  idx.Range(std::nullopt, false, Value::Int(1), /*hi_inclusive=*/true, &out);
  EXPECT_EQ(out.size(), 2u);  // 0, 1
}

TEST(PropertyIndexTest, RangeScanStaysWithinComparisonClass) {
  // Ordering across classes yields NULL in the evaluator, so a numeric
  // range must not sweep up strings (which sort after numerics in the
  // total order).
  PropertyIndex idx(IndexSpec{0, 0, IndexKind::kOrdered});
  idx.Insert(Value::Int(5), NodeId{1});
  idx.Insert(Value::String("apple"), NodeId{2});
  std::vector<uint64_t> out;
  idx.Range(Value::Int(0), true, std::nullopt, false, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);

  out.clear();
  idx.Range(std::nullopt, false, Value::String("zebra"), true, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 2u);
}

TEST(PropertyIndexTest, HugeIntBandsStayComplete) {
  // Beyond 2^53 Cypher's int/double coercion is not transitive:
  // Int(2^53) = Double(2^53.0) and Int(2^53 + 1) = Double(2^53.0), yet
  // Int(2^53) <> Int(2^53 + 1). Index keys group by band (double value),
  // so a probe by the double finds BOTH candidates — completeness — and
  // the matcher's per-candidate recheck restores exactness. Probing by an
  // exact int also returns the band; never fewer candidates than a scan.
  const int64_t big = int64_t{1} << 53;
  for (IndexKind kind : {IndexKind::kHash, IndexKind::kOrdered}) {
    PropertyIndex idx(IndexSpec{0, 0, kind});
    idx.Insert(Value::Int(big), NodeId{1});
    idx.Insert(Value::Int(big + 1), NodeId{2});
    std::vector<uint64_t> out;
    idx.Lookup(Value::Double(static_cast<double>(big)), &out);
    EXPECT_EQ(out.size(), 2u) << "kind " << static_cast<int>(kind);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    out.clear();
    idx.Lookup(Value::Int(big + 1), &out);
    EXPECT_EQ(out.size(), 2u);
  }

  // Ordered range boundaries stay exact across a band: > 2^53 must still
  // find 2^53 + 1 (the evaluator compares ints exactly).
  PropertyIndex ordered(IndexSpec{0, 0, IndexKind::kOrdered});
  ordered.Insert(Value::Int(big), NodeId{1});
  ordered.Insert(Value::Int(big + 1), NodeId{2});
  ordered.Insert(Value::Double(static_cast<double>(big)), NodeId{3});
  std::vector<uint64_t> out;
  ordered.Range(Value::Int(big), /*lo_inclusive=*/false, std::nullopt,
                false, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 2u);
}

TEST(PropertyIndexTest, NanIsNeitherIndexedNorProbed) {
  // NaN would compare "equivalent" to every numeric and wreck the ordered
  // map's strict weak ordering; it also never Equals anything in Cypher,
  // so it is treated like NULL: never stored, probes match nothing.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (IndexKind kind : {IndexKind::kHash, IndexKind::kOrdered}) {
    PropertyIndex idx(IndexSpec{0, 0, kind});
    idx.Insert(Value::Double(nan), NodeId{1});
    EXPECT_EQ(idx.EntryCount(), 0u);
    idx.Insert(Value::Int(5), NodeId{2});
    std::vector<uint64_t> out;
    idx.Lookup(Value::Double(nan), &out);
    EXPECT_TRUE(out.empty());
    idx.Erase(Value::Double(nan), NodeId{2});  // must not touch 5's posting
    out.clear();
    idx.Lookup(Value::Int(5), &out);
    EXPECT_EQ(out.size(), 1u);
  }
  // A NaN bound is not range-plannable.
  EXPECT_EQ(index::CompareClassOf(Value::Double(nan)),
            index::CompareClass::kOther);
}

TEST(PropertyIndexTest, ForEachDuplicateFindsSharedValues) {
  PropertyIndex idx(IndexSpec{0, 0, IndexKind::kHash});
  idx.Insert(Value::String("x"), NodeId{1});
  idx.Insert(Value::String("x"), NodeId{4});
  idx.Insert(Value::String("y"), NodeId{2});
  int dups = 0;
  idx.ForEachDuplicate([&](const Value& v, const std::set<uint64_t>& ids) {
    ++dups;
    EXPECT_EQ(v.string_value(), "x");
    EXPECT_EQ(ids.size(), 2u);
  });
  EXPECT_EQ(dups, 1);
}

// --- GraphStore maintenance ---------------------------------------------------

class IndexMaintenanceTest : public ::testing::Test {
 protected:
  IndexMaintenanceTest() : manager_(&store_) {
    label_ = store_.InternLabel("Person");
    prop_ = store_.InternPropKey("ssn");
  }

  const PropertyIndex* MakeIndex(IndexKind kind = IndexKind::kHash,
                                 bool unique = false) {
    auto r = store_.CreateIndex(IndexSpec{label_, prop_, kind, unique});
    EXPECT_TRUE(r.ok()) << r.status();
    return r.value_or(nullptr);
  }

  NodeId Person(const std::string& ssn) {
    return store_.CreateNode({label_},
                             {{prop_, Value::String(ssn)}});
  }

  std::vector<uint64_t> Ids(const PropertyIndex* idx, const Value& v) {
    std::vector<uint64_t> out;
    idx->Lookup(v, &out);
    return out;
  }

  GraphStore store_;
  TransactionManager manager_;
  LabelId label_ = 0;
  PropKeyId prop_ = 0;
};

TEST_F(IndexMaintenanceTest, BackfillCoversExistingNodes) {
  Person("a");
  Person("b");
  store_.CreateNode({store_.InternLabel("Other")},
                    {{prop_, Value::String("c")}});  // wrong label
  const PropertyIndex* idx = MakeIndex();
  EXPECT_EQ(idx->EntryCount(), 2u);
  EXPECT_EQ(Ids(idx, Value::String("a")).size(), 1u);
  EXPECT_TRUE(Ids(idx, Value::String("c")).empty());
}

TEST_F(IndexMaintenanceTest, MutationsKeepIndexExact) {
  const PropertyIndex* idx = MakeIndex();
  NodeId n = Person("a");
  EXPECT_EQ(idx->EntryCount(), 1u);

  // Property update moves the entry.
  ASSERT_TRUE(store_.SetNodeProp(n, prop_, Value::String("b")).ok());
  EXPECT_TRUE(Ids(idx, Value::String("a")).empty());
  EXPECT_EQ(Ids(idx, Value::String("b")).size(), 1u);

  // Property removal drops it.
  ASSERT_TRUE(store_.RemoveNodeProp(n, prop_).ok());
  EXPECT_EQ(idx->EntryCount(), 0u);

  // Label add/remove index/unindex using current props.
  ASSERT_TRUE(store_.SetNodeProp(n, prop_, Value::String("c")).ok());
  ASSERT_TRUE(store_.RemoveLabel(n, label_).ok());
  EXPECT_EQ(idx->EntryCount(), 0u);
  ASSERT_TRUE(store_.AddLabel(n, label_).ok());
  EXPECT_EQ(idx->EntryCount(), 1u);
}

TEST_F(IndexMaintenanceTest, TombstonedNodesLeaveNoEntries) {
  const PropertyIndex* idx = MakeIndex();
  NodeId n = Person("a");
  ASSERT_TRUE(store_.DeleteNode(n).ok());
  EXPECT_EQ(idx->EntryCount(), 0u);
  // Revival (the rollback path) restores the entry.
  ASSERT_TRUE(
      store_.ReviveNode(n, {label_}, {{prop_, Value::String("a")}}).ok());
  EXPECT_EQ(Ids(idx, Value::String("a")).size(), 1u);
}

TEST_F(IndexMaintenanceTest, RollbackLeavesNoStaleEntries) {
  const PropertyIndex* idx = MakeIndex();
  NodeId keep = Person("keep");

  auto tx = std::move(manager_.Begin()).value();
  // Created in-tx: entry appears...
  auto created = tx->CreateNode({label_}, {{prop_, Value::String("temp")}});
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(tx->SetNodeProp(keep, prop_, Value::String("changed")).ok());
  ASSERT_TRUE(tx->DeleteNode(created.value(), /*detach=*/false).ok());
  auto recreated = tx->CreateNode({label_}, {{prop_, Value::String("t2")}});
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(Ids(idx, Value::String("t2")).size(), 1u);

  // ...and vanishes on rollback; the pre-tx state is restored exactly.
  ASSERT_TRUE(tx->Rollback().ok());
  manager_.Release(tx.get());
  EXPECT_EQ(idx->EntryCount(), 1u);
  EXPECT_TRUE(Ids(idx, Value::String("temp")).empty());
  EXPECT_TRUE(Ids(idx, Value::String("t2")).empty());
  EXPECT_TRUE(Ids(idx, Value::String("changed")).empty());
  EXPECT_EQ(Ids(idx, Value::String("keep")).size(), 1u);
}

TEST_F(IndexMaintenanceTest, RollbackOfDeleteRestoresEntries) {
  const PropertyIndex* idx = MakeIndex();
  NodeId n = Person("a");
  auto tx = std::move(manager_.Begin()).value();
  ASSERT_TRUE(tx->DeleteNode(n, false).ok());
  EXPECT_EQ(idx->EntryCount(), 0u);
  ASSERT_TRUE(tx->Rollback().ok());
  manager_.Release(tx.get());
  EXPECT_EQ(Ids(idx, Value::String("a")).size(), 1u);
}

TEST_F(IndexMaintenanceTest, UniqueBackfillRejectsExistingDuplicates) {
  Person("same");
  Person("same");
  auto r = store_.CreateIndex(
      IndexSpec{label_, prop_, IndexKind::kHash, /*unique=*/true});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  // No index left behind.
  EXPECT_EQ(store_.indexes().Find(label_, prop_), nullptr);
}

TEST_F(IndexMaintenanceTest, WriteTimeUniqueEnforcement) {
  MakeIndex(IndexKind::kHash, /*unique=*/true);
  auto tx = std::move(manager_.Begin()).value();
  ASSERT_TRUE(tx->CreateNode({label_}, {{prop_, Value::String("a")}}).ok());

  // Duplicate create is rejected as a Status, not a crash.
  auto dup = tx->CreateNode({label_}, {{prop_, Value::String("a")}});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);

  // Duplicate SET rejected too; setting a node to its own value is fine.
  auto other = tx->CreateNode({label_}, {{prop_, Value::String("b")}});
  ASSERT_TRUE(other.ok());
  Status st = tx->SetNodeProp(other.value(), prop_, Value::String("a"));
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(
      tx->SetNodeProp(other.value(), prop_, Value::String("b")).ok());

  // Delete frees the value for reuse within the same transaction.
  ASSERT_TRUE(tx->DeleteNode(other.value(), false).ok());
  EXPECT_TRUE(tx->CreateNode({label_}, {{prop_, Value::String("b")}}).ok());
  ASSERT_TRUE(tx->Commit().ok());
  manager_.Release(tx.get());
}

// --- Index DDL ---------------------------------------------------------------

TEST(IndexDdlTest, ParseCreateVariants) {
  auto d = IndexDdlParser::Parse("CREATE INDEX ON :Person(ssn)");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->kind, IndexDdl::Kind::kCreate);
  EXPECT_EQ(d->label, "Person");
  EXPECT_EQ(d->prop, "ssn");
  EXPECT_FALSE(d->unique);
  EXPECT_EQ(d->layout, IndexKind::kHash);

  d = IndexDdlParser::Parse("create unique range index on 'Person'('ssn');");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_TRUE(d->unique);
  EXPECT_EQ(d->layout, IndexKind::kOrdered);

  d = IndexDdlParser::Parse("DROP INDEX ON :Person(ssn)");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->kind, IndexDdl::Kind::kDrop);

  d = IndexDdlParser::Parse("SHOW INDEXES");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->kind, IndexDdl::Kind::kShow);
}

TEST(IndexDdlTest, RoutingPredicate) {
  EXPECT_TRUE(IndexDdlParser::IsIndexDdl("CREATE INDEX ON :A(b)"));
  EXPECT_TRUE(IndexDdlParser::IsIndexDdl("CREATE UNIQUE INDEX ON :A(b)"));
  EXPECT_TRUE(IndexDdlParser::IsIndexDdl("DROP INDEX ON :A(b)"));
  EXPECT_TRUE(IndexDdlParser::IsIndexDdl("SHOW INDEXES"));
  EXPECT_FALSE(IndexDdlParser::IsIndexDdl("CREATE (:A {b: 1})"));
  EXPECT_FALSE(IndexDdlParser::IsIndexDdl(
      "CREATE TRIGGER T AFTER CREATE ON 'A' FOR EACH NODE BEGIN "
      "CREATE (:B) END"));
  EXPECT_FALSE(IndexDdlParser::IsIndexDdl("MATCH (n) RETURN n"));
}

TEST(IndexDdlTest, ParseErrors) {
  EXPECT_FALSE(IndexDdlParser::Parse("CREATE INDEX ON Person").ok());
  EXPECT_FALSE(IndexDdlParser::Parse("CREATE INDEX Person(ssn)").ok());
  EXPECT_FALSE(
      IndexDdlParser::Parse("CREATE INDEX ON :Person(ssn) garbage").ok());
}

// --- End-to-end through the Database -----------------------------------------

class IndexDatabaseTest : public ::testing::Test {
 protected:
  void Exec(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  Status ExecError(const std::string& q) { return db_.Execute(q).status(); }
  cypher::QueryResult Query(const std::string& q, const Params& p = {}) {
    auto r = db_.Execute(q, p);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? std::move(r).value() : cypher::QueryResult{};
  }

  Database db_;
};

TEST_F(IndexDatabaseTest, CreateDropShow) {
  Exec("CREATE (:Person {ssn: '1'}), (:Person {ssn: '2'})");
  Exec("CREATE INDEX ON :Person(ssn)");
  auto show = Query("SHOW INDEXES");
  ASSERT_EQ(show.rows.size(), 1u);
  EXPECT_EQ(show.rows[0][0].string_value(), "Person(ssn)");
  EXPECT_EQ(show.rows[0][3].int_value(), 2);

  Status dup = ExecError("CREATE INDEX ON :Person(ssn)");
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);

  Exec("DROP INDEX ON :Person(ssn)");
  EXPECT_TRUE(Query("SHOW INDEXES").rows.empty());
  EXPECT_EQ(ExecError("DROP INDEX ON :Person(ssn)").code(),
            StatusCode::kNotFound);
}

TEST_F(IndexDatabaseTest, UniqueIndexViolationIsStatusAndRollsBack) {
  Exec("CREATE UNIQUE INDEX ON :Person(ssn)");
  Exec("CREATE (:Person {ssn: '1', name: 'ann'})");
  Status st = ExecError("CREATE (:Person {ssn: '1', name: 'imp'})");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(st.message().find("Person(ssn)"), std::string::npos);
  // The violating transaction rolled back: one person, one index entry.
  auto rows = Query("MATCH (p:Person) RETURN COUNT(*) AS c");
  EXPECT_EQ(rows.rows[0][0].int_value(), 1);
  auto show = Query("SHOW INDEXES");
  EXPECT_EQ(show.rows[0][3].int_value(), 1);
}

TEST_F(IndexDatabaseTest, IndexedAndFullScanResultsAreIdentical) {
  Exec("UNWIND RANGE(0, 199) AS i "
       "CREATE (:Acct {num: i % 50, grp: 'g' + (i % 7)})");
  const std::string queries[] = {
      "MATCH (a:Acct {num: 7}) RETURN a.num, a.grp",
      "MATCH (a:Acct) WHERE a.num = 13 RETURN a.num, a.grp",
      "MATCH (a:Acct) WHERE a.num > 45 RETURN a.num AS n ORDER BY n",
      "MATCH (a:Acct) WHERE a.num >= 10 AND a.num < 12 RETURN a.num",
      "MATCH (a:Acct) WHERE a.num > 48 AND a.grp = 'g1' RETURN a.num, a.grp",
  };
  std::vector<cypher::QueryResult> before;
  for (const auto& q : queries) before.push_back(Query(q));

  Exec("CREATE RANGE INDEX ON :Acct(num)");
  for (size_t i = 0; i < std::size(queries); ++i) {
    auto after = Query(queries[i]);
    ASSERT_EQ(after.rows.size(), before[i].rows.size()) << queries[i];
    for (size_t r = 0; r < after.rows.size(); ++r) {
      for (size_t c = 0; c < after.rows[r].size(); ++c) {
        EXPECT_TRUE(after.rows[r][c].Equals(before[i].rows[r][c]))
            << queries[i] << " row " << r;
      }
    }
  }
}

TEST_F(IndexDatabaseTest, TriggerConditionUsesIndexedEquality) {
  Exec("CREATE RANGE INDEX ON :Person(pid)");
  Exec("UNWIND RANGE(0, 99) AS i CREATE (:Person {pid: i})");
  // The WHEN condition matches through {pid: NEW.pid} — the planner reads
  // the bound NEW row variable at plan time and probes the index.
  Exec("CREATE TRIGGER CaseAlert AFTER CREATE ON 'Case' FOR EACH NODE "
       "WHEN MATCH (p:Person {pid: NEW.pid}) "
       "BEGIN CREATE (:Alert {pid: NEW.pid}) END");
  Exec("CREATE (:Case {pid: 42})");
  Exec("CREATE (:Case {pid: 4242})");  // no matching person: no alert
  auto rows = Query("MATCH (a:Alert) RETURN a.pid");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].int_value(), 42);
}

TEST_F(IndexDatabaseTest, ParamEqualityUsesIndex) {
  Exec("UNWIND RANGE(0, 99) AS i CREATE (:P {k: i})");
  Exec("CREATE INDEX ON :P(k)");
  auto rows = Query("MATCH (p:P) WHERE p.k = $x RETURN p.k",
                    {{"x", Value::Int(31)}});
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].int_value(), 31);
}

// --- Scan planner ------------------------------------------------------------

class ScanPlanTest : public ::testing::Test {
 protected:
  ScanPlanTest() : manager_(&store_) {
    tx_ = std::move(manager_.Begin()).value();
    ctx_.tx = tx_.get();
    ctx_.clock = &clock_;
    ctx_.params = &params_;
  }

  /// Plans the first node of `MATCH <pattern_text> [WHERE ...]`.
  cypher::NodeScanPlan Plan(const std::string& match_text) {
    auto q = cypher::Parser::ParseQuery("MATCH " + match_text + " RETURN *");
    EXPECT_TRUE(q.ok()) << q.status();
    const auto& clause = *q.value().clauses[0];
    const cypher::NodePattern& np = clause.pattern.parts[0].first;
    std::vector<LabelId> labels;
    for (const std::string& l : np.labels) {
      auto id = store_.LookupLabel(l);
      if (id.has_value()) labels.push_back(*id);
    }
    auto plan = cypher::PlanNodeScan(np, labels, clause.where.get(),
                                     cypher::Row{}, ctx_);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return plan.value_or(cypher::NodeScanPlan{});
  }

  GraphStore store_;
  TransactionManager manager_;
  std::unique_ptr<Transaction> tx_;
  LogicalClock clock_;
  Params params_;
  cypher::EvalContext ctx_;
};

TEST_F(ScanPlanTest, PrefersIndexOverLabelOverFull) {
  LabelId person = store_.InternLabel("Person");
  PropKeyId ssn = store_.InternPropKey("ssn");
  store_.CreateNode({person}, {{ssn, Value::String("1")}});

  using Kind = cypher::NodeScanPlan::Kind;
  EXPECT_EQ(Plan("(n)").kind, Kind::kFullScan);
  EXPECT_EQ(Plan("(n:Person)").kind, Kind::kLabelScan);
  EXPECT_EQ(Plan("(n:Person {ssn: '1'})").kind, Kind::kLabelScan);

  ASSERT_TRUE(store_.CreateIndex(IndexSpec{person, ssn,
                                           IndexKind::kOrdered}).ok());
  EXPECT_EQ(Plan("(n:Person {ssn: '1'})").kind, Kind::kIndexEquality);
  EXPECT_EQ(Plan("(n:Person) WHERE n.ssn = '1'").kind,
            Kind::kIndexEquality);
  EXPECT_EQ(Plan("(n:Person) WHERE '0' < n.ssn").kind, Kind::kIndexRange);
  EXPECT_EQ(Plan("(n:Person) WHERE n.ssn > '0' AND n.ssn <= '5'").kind,
            Kind::kIndexRange);
  // Non-sargable or disjunctive predicates keep the label scan.
  EXPECT_EQ(Plan("(n:Person) WHERE n.ssn = '1' OR n.ssn = '2'").kind,
            Kind::kLabelScan);
  EXPECT_EQ(Plan("(n:Person) WHERE n.ssn = n.other").kind,
            Kind::kLabelScan);
}

TEST_F(ScanPlanTest, PicksLeastPopulatedLabel) {
  LabelId big = store_.InternLabel("Big");
  LabelId small = store_.InternLabel("Small");
  for (int i = 0; i < 5; ++i) store_.CreateNode({big}, {});
  store_.CreateNode({big, small}, {});

  auto plan = Plan("(n:Big:Small)");
  EXPECT_EQ(plan.kind, cypher::NodeScanPlan::Kind::kLabelScan);
  EXPECT_EQ(plan.label, small);
}

// --- Index-backed PG-Key enforcement -----------------------------------------

schema::SchemaDef KeySchema() {
  auto r = schema::ParseSchemaDdl(R"(
      CREATE GRAPH TYPE Keyed STRICT {
        (PersonType : Person {name STRING, ssn STRING KEY})
      })");
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST_F(IndexDatabaseTest, AttachSchemaCreatesKeyIndexAndDetachDropsIt) {
  db_.AttachSchema(KeySchema());
  auto show = Query("SHOW INDEXES");
  ASSERT_EQ(show.rows.size(), 1u);
  EXPECT_EQ(show.rows[0][0].string_value(), "Person(ssn)");
  EXPECT_TRUE(show.rows[0][2].bool_value());  // unique

  db_.AttachSchema(std::nullopt);
  EXPECT_TRUE(Query("SHOW INDEXES").rows.empty());
}

TEST_F(IndexDatabaseTest, DetachNeverDropsUserIndexes) {
  // A user index that replaced the schema-managed PG-Key index must
  // survive detach; only indexes still carrying the schema_managed mark
  // are dropped.
  db_.AttachSchema(KeySchema());
  Exec("DROP INDEX ON :Person(ssn)");
  Exec("CREATE UNIQUE INDEX ON :Person(ssn)");
  db_.AttachSchema(std::nullopt);
  auto show = Query("SHOW INDEXES");
  ASSERT_EQ(show.rows.size(), 1u);
  EXPECT_EQ(show.rows[0][0].string_value(), "Person(ssn)");

  // And a pre-existing user index is neither replaced nor dropped.
  db_.AttachSchema(KeySchema());
  db_.AttachSchema(std::nullopt);
  EXPECT_EQ(Query("SHOW INDEXES").rows.size(), 1u);
}

TEST_F(IndexDatabaseTest, CommitGuardReadsKeyViolationOffIndex) {
  db_.AttachSchema(KeySchema());
  Exec("CREATE (:Person {name: 'ann', ssn: '1'})");
  Status st = ExecError("CREATE (:Person {name: 'imp', ssn: '1'})");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(st.message().find("key-violation"), std::string::npos);
  auto rows = Query("MATCH (p:Person) RETURN COUNT(*) AS c");
  EXPECT_EQ(rows.rows[0][0].int_value(), 1);

  // Key swap inside one transaction: temporarily duplicated, clean at
  // commit — deferred enforcement must allow it.
  Exec("CREATE (:Person {name: 'bob', ssn: '2'})");
  auto multi = db_.ExecuteTx(
      {"MATCH (p:Person {ssn: '1'}) SET p.ssn = '3'",
       "MATCH (p:Person {ssn: '2'}) SET p.ssn = '1'"});
  ASSERT_TRUE(multi.ok()) << multi.status();
}

}  // namespace
}  // namespace pgt
