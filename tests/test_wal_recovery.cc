// Crash-recovery differential suite for the durability subsystem
// (src/wal, docs/durability.md), driven through the MemVfs power-loss
// shim (src/wal/fault_fs.h). The core property: after ANY modeled crash —
// mid-group-commit, torn tail, bit-flipped tail — recovery lands exactly
// on a statement-prefix boundary of the workload, byte-identical (in
// observable state) to an uncrashed in-memory reference database that ran
// that same prefix. Plus: clean-shutdown markers skip tail tolerance,
// checkpoints cover and purge old segments, and append-side IO failures
// poison the log instead of logging a divergent history.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/schema/pg_schema.h"
#include "src/trigger/database.h"
#include "src/wal/fault_fs.h"
#include "src/wal/vfs.h"

namespace pgt {
namespace {

constexpr char kDir[] = "/db";

wal::WalOptions Opts(wal::MemVfs* vfs, uint32_t group_size = 1) {
  wal::WalOptions o;
  o.dir = kDir;
  o.vfs = vfs;
  o.fsync = true;
  o.group_size = group_size;
  return o;
}

/// Observable-state dump: tests/test_plan_differential.cc's DumpGraph
/// (alive nodes and rels in id order) extended with the dictionaries'
/// sizes, the committed-transaction counter, the trigger catalog, index
/// definitions, and the attached schema. Tombstone *content* is
/// deliberately excluded: a recovered store keeps dead ids as zero-content
/// placeholders, which no query can distinguish from the originals.
std::string DumpState(Database& db) {
  std::ostringstream os;
  const GraphStore& store = db.store();
  os << "committed=" << db.committed_transactions() << "\n";
  os << "dicts=" << store.LabelDictSize() << "/" << store.RelTypeDictSize()
     << "/" << store.PropKeyDictSize() << "\n";
  os << "bounds=" << store.NodeIdBound() << "/" << store.RelIdBound() << "\n";
  for (NodeId id : store.AllNodes()) {
    const NodeRecord* n = store.GetNode(id);
    os << "n" << id.value << "[";
    for (LabelId l : n->labels) os << store.LabelName(l) << ",";
    os << "]{";
    for (const auto& [k, v] : n->props) {
      os << store.PropKeyName(k) << "=" << v.ToString() << ",";
    }
    os << "}\n";
  }
  for (RelId id : store.AllRels()) {
    const RelRecord* r = store.GetRel(id);
    os << "r" << id.value << ":" << store.RelTypeName(r->type) << " "
       << r->src.value << "->" << r->dst.value << "{";
    for (const auto& [k, v] : r->props) {
      os << store.PropKeyName(k) << "=" << v.ToString() << ",";
    }
    os << "}\n";
  }
  for (const TriggerDef* t : db.catalog().All()) {
    os << "trigger " << (t->enabled ? "+" : "-") << t->ToDdl() << "\n";
  }
  store.indexes().ForEach([&](const index::PropertyIndex& idx) {
    os << "index " << idx.spec().name << " u=" << idx.spec().unique
       << " e=" << idx.spec().enforce_on_write
       << " s=" << idx.spec().schema_managed
       << " n=" << idx.EntryCount() << "\n";
  });
  if (db.attached_schema().has_value()) {
    os << "schema " << db.attached_schema()->ToDdl() << "\n";
  }
  return os.str();
}

// --- The workload ------------------------------------------------------------
// DDL first (always individually fsynced), then DML where every statement
// is exactly one commit. Crash points are therefore statement prefixes:
// all DDL + the first k DML statements.

const char* kDdl[] = {
    "CREATE TRIGGER Audit AFTER CREATE ON 'Acct' FOR EACH NODE "
    "BEGIN CREATE (:Log {t: 'acct'}) END",
    "CREATE TRIGGER Bal AFTER SET ON 'Acct'.'bal' FOR EACH NODE "
    "WHEN OLD.bal <> NEW.bal "
    "BEGIN CREATE (:Log {t: 'bal', d: NEW.bal - OLD.bal}) END",
    "CREATE TRIGGER Quiet AFTER DELETE ON 'Acct' FOR EACH NODE "
    "BEGIN CREATE (:Log {t: 'del'}) END",
    "ALTER TRIGGER Quiet DISABLE",
    "CREATE INDEX ON :Acct(id)",
    "CREATE UNIQUE INDEX ON :Owner(oid)",
};

const char* kDml[] = {
    "CREATE (:Owner {oid: 1, name: 'ann'})",
    "CREATE (:Owner {oid: 2, name: 'bob'})",
    "CREATE (:Acct {id: 1, bal: 100})",
    "CREATE (:Acct {id: 2, bal: 50})",
    "MATCH (o:Owner {oid: 1}), (a:Acct {id: 1}) "
    "CREATE (o)-[:OWNS {since: 2020}]->(a)",
    "MATCH (o:Owner {oid: 2}), (a:Acct {id: 2}) CREATE (o)-[:OWNS]->(a)",
    "MATCH (a:Acct {id: 1}) SET a.bal = 90",
    "MATCH (a:Acct {id: 2}) SET a.bal = a.bal + 25, a.flag = true",
    "MATCH (a:Acct {id: 1}) SET a:Premium",
    "MATCH (a:Acct {id: 2}) REMOVE a.flag",
    "CREATE (:Acct {id: 3, bal: -5})",
    "MATCH (o:Owner {oid: 2})-[r:OWNS]->() DELETE r",
    "MATCH (a:Acct {id: 3}) DELETE a",
    "MATCH (a:Acct {id: 2}) SET a.bal = 0",
};
constexpr size_t kDmlCount = sizeof(kDml) / sizeof(kDml[0]);

void ApplyWorkload(Database& db, size_t dml_count) {
  for (const char* s : kDdl) {
    auto r = db.Execute(s);
    ASSERT_TRUE(r.ok()) << s << ": " << r.status();
  }
  for (size_t i = 0; i < dml_count; ++i) {
    auto r = db.Execute(kDml[i]);
    ASSERT_TRUE(r.ok()) << kDml[i] << ": " << r.status();
  }
}

/// refs[k] = observable state of an in-memory database that ran all DDL
/// plus the first k DML statements.
std::vector<std::string> ReferenceStates() {
  std::vector<std::string> refs;
  for (size_t k = 0; k <= kDmlCount; ++k) {
    Database ref;
    ApplyWorkload(ref, k);
    refs.push_back(DumpState(ref));
  }
  return refs;
}

/// Index of `state` in refs, or -1: which statement prefix the recovered
/// database corresponds to. (All prefixes are distinct — each statement
/// changes the dump — so the match is unique.)
int PrefixOf(const std::vector<std::string>& refs, const std::string& state) {
  for (size_t k = 0; k < refs.size(); ++k) {
    if (refs[k] == state) return static_cast<int>(k);
  }
  return -1;
}

/// DumpState minus the id-bound line, for comparing a LIVE database that
/// rolled a transaction back against a reference that never attempted it:
/// rollback tombstones the created records but the allocated ids stay
/// burned (never reused), so the bound legitimately runs ahead. Recovery
/// comparisons use the full dump — an unlogged commit burns nothing.
std::string StripBounds(std::string s) {
  const size_t b = s.find("bounds=");
  if (b != std::string::npos) s.erase(b, s.find('\n', b) - b + 1);
  return s;
}

std::string LastSegmentPath(wal::MemVfs& vfs) {
  auto names = vfs.ListDir(kDir);
  EXPECT_TRUE(names.ok());
  std::string last;
  for (const std::string& n : *names) {
    if (n.rfind("wal-", 0) == 0 && n > last) last = n;
  }
  EXPECT_FALSE(last.empty());
  return wal::JoinPath(kDir, last);
}

// --- Clean shutdown ----------------------------------------------------------

TEST(WalRecovery, CleanShutdownRoundTrip) {
  wal::MemVfs vfs;
  {
    auto db = Database::Open(Opts(&vfs, /*group_size=*/8));
    ASSERT_TRUE(db.ok()) << db.status();
    ApplyWorkload(**db, kDmlCount);
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = Database::Open(Opts(&vfs, 8));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->wal()->recovery_stats().clean_shutdown);
  EXPECT_EQ((*db)->wal()->recovery_stats().torn_bytes_discarded, 0u);

  Database ref;
  ApplyWorkload(ref, kDmlCount);
  EXPECT_EQ(DumpState(**db), DumpState(ref));

  // The recovered engine is fully live: triggers keep firing identically.
  ASSERT_TRUE((*db)->Execute("MATCH (a:Acct {id: 1}) SET a.bal = 7").ok());
  ASSERT_TRUE(ref.Execute("MATCH (a:Acct {id: 1}) SET a.bal = 7").ok());
  EXPECT_EQ(DumpState(**db), DumpState(ref));
  EXPECT_TRUE((*db)->Close().ok());
}

TEST(WalRecovery, DestructorWritesCleanMarker) {
  wal::MemVfs vfs;
  {
    auto db = Database::Open(Opts(&vfs));
    ASSERT_TRUE(db.ok()) << db.status();
    ApplyWorkload(**db, 3);
    // No explicit Close: the destructor shuts down cleanly best-effort.
  }
  auto db = Database::Open(Opts(&vfs));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->wal()->recovery_stats().clean_shutdown);
  Database ref;
  ApplyWorkload(ref, 3);
  EXPECT_EQ(DumpState(**db), DumpState(ref));
}

TEST(WalRecovery, EmptyDatabaseReopens) {
  wal::MemVfs vfs;
  {
    auto db = Database::Open(Opts(&vfs));
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = Database::Open(Opts(&vfs));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->wal()->recovery_stats().clean_shutdown);
  EXPECT_EQ((*db)->committed_transactions(), 0u);
}

// --- Crash differentials -----------------------------------------------------

TEST(WalRecovery, StrictModeCrashAtEveryStatement) {
  const std::vector<std::string> refs = ReferenceStates();
  // group_size 1: every commit is individually durable, so a crash after
  // statement i recovers exactly prefix i.
  for (size_t i = 0; i <= kDmlCount; ++i) {
    wal::MemVfs vfs;
    auto db = Database::Open(Opts(&vfs, /*group_size=*/1));
    ASSERT_TRUE(db.ok()) << db.status();
    ApplyWorkload(**db, i);
    auto crashed = vfs.CloneCrashed();  // power loss: durable prefix only

    auto rec = Database::Open(Opts(crashed.get(), 1));
    ASSERT_TRUE(rec.ok()) << "crash after " << i << ": " << rec.status();
    EXPECT_FALSE((*rec)->wal()->recovery_stats().clean_shutdown);
    EXPECT_EQ(DumpState(**rec), refs[i]) << "crash after statement " << i;
  }
}

TEST(WalRecovery, MidGroupCommitCrashLosesBoundedSuffix) {
  const std::vector<std::string> refs = ReferenceStates();
  constexpr uint32_t kGroup = 4;
  for (size_t i = 0; i <= kDmlCount; ++i) {
    wal::MemVfs vfs;
    auto db = Database::Open(Opts(&vfs, kGroup));
    ASSERT_TRUE(db.ok()) << db.status();
    ApplyWorkload(**db, i);
    auto crashed = vfs.CloneCrashed();

    auto rec = Database::Open(Opts(crashed.get(), kGroup));
    ASSERT_TRUE(rec.ok()) << "crash after " << i << ": " << rec.status();
    const int k = PrefixOf(refs, DumpState(**rec));
    ASSERT_GE(k, 0) << "crash after " << i
                    << ": recovered state is not any statement prefix";
    // At most the unsynced group suffix is lost, and never future state.
    EXPECT_LE(static_cast<size_t>(k), i) << "crash after " << i;
    EXPECT_GE(static_cast<size_t>(k) + kGroup, i + 1) << "crash after " << i;
  }
}

TEST(WalRecovery, TornTailDiscardedAndPhysicallyTruncated) {
  const std::vector<std::string> refs = ReferenceStates();
  // Large group: the whole DML suffix sits unsynced in the tail segment.
  wal::MemVfs vfs;
  auto db = Database::Open(Opts(&vfs, /*group_size=*/64));
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, kDmlCount);
  const std::string seg = LastSegmentPath(vfs);
  const uint64_t unsynced = vfs.UnsyncedBytes(seg);
  ASSERT_GT(unsynced, 0u);

  // Keep every possible partial suffix of the unsynced bytes: recovery must
  // always land on a statement prefix, never fail, never see future state.
  int last_k = 0;
  std::vector<uint64_t> cuts;
  for (uint64_t extra = 0; extra < unsynced; extra += 13) cuts.push_back(extra);
  cuts.push_back(unsynced);  // final pass: the full tail survives
  for (uint64_t extra : cuts) {
    auto crashed = vfs.CloneCrashed(seg, extra);
    auto rec = Database::Open(Opts(crashed.get(), 64));
    ASSERT_TRUE(rec.ok()) << "torn extra " << extra << ": " << rec.status();
    const int k = PrefixOf(refs, DumpState(**rec));
    ASSERT_GE(k, 0) << "torn extra " << extra;
    EXPECT_GE(k, last_k) << "longer tail recovered less, extra " << extra;
    last_k = k;
    if (extra % (13 * 8) != 0) continue;  // reopen check on a subsample

    // A torn tail is truncated in place: closing and reopening the
    // recovered database must come back clean with identical state.
    ASSERT_TRUE((*rec)->Close().ok());
    auto again = Database::Open(Opts(crashed.get(), 64));
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_TRUE((*again)->wal()->recovery_stats().clean_shutdown);
    EXPECT_EQ(DumpState(**again), refs[static_cast<size_t>(k)]);
  }
  EXPECT_EQ(last_k, static_cast<int>(kDmlCount));  // full tail => everything
}

TEST(WalRecovery, BitFlipInTailStopsAtCorruption) {
  const std::vector<std::string> refs = ReferenceStates();
  wal::MemVfs vfs;
  auto db = Database::Open(Opts(&vfs, /*group_size=*/64));
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, kDmlCount);
  const std::string seg = LastSegmentPath(vfs);
  const uint64_t durable = vfs.FileSize(seg) - vfs.UnsyncedBytes(seg);
  const uint64_t unsynced = vfs.UnsyncedBytes(seg);

  for (uint64_t byte = 0; byte < unsynced; byte += 37) {
    const int64_t bit = static_cast<int64_t>((durable + byte) * 8 + 3);
    auto crashed = vfs.CloneCrashed(seg, unsynced, bit);
    auto rec = Database::Open(Opts(crashed.get(), 64));
    ASSERT_TRUE(rec.ok()) << "flip at tail byte " << byte << ": "
                          << rec.status();
    const int k = PrefixOf(refs, DumpState(**rec));
    ASSERT_GE(k, 0) << "flip at tail byte " << byte;
    // The record containing the flip can never survive.
    EXPECT_LT(k, static_cast<int>(kDmlCount)) << "flip at tail byte " << byte;
    EXPECT_GT((*rec)->wal()->recovery_stats().torn_bytes_discarded, 0u);
  }
}

TEST(WalRecovery, BadHeaderTailSegmentDeletedAndSeqReused) {
  const std::vector<std::string> refs = ReferenceStates();
  // A crash inside rotation's OpenSegment leaves the next segment file
  // present but with a missing or torn header. Model every flavor: nothing
  // reached the file, a prefix of the magic, and a full-size header whose
  // seq does not match the name.
  const std::string junks[] = {
      "",
      "PGTW",
      std::string("PGTWAL01\x09\0\0\0\0\0\0\0", 16),
  };
  for (const std::string& junk : junks) {
    wal::MemVfs vfs;
    {
      auto db = Database::Open(Opts(&vfs));
      ASSERT_TRUE(db.ok()) << db.status();
      ApplyWorkload(**db, 3);
      ASSERT_TRUE((*db)->Close().ok());
    }
    // The workload fits in segment 1, so the crashed rotation's segment is 2.
    const std::string junk_path =
        wal::JoinPath(kDir, "wal-0000000002.log");
    {
      auto f = vfs.OpenAppend(junk_path);
      ASSERT_TRUE(f.ok());
      if (!junk.empty()) ASSERT_TRUE((*f)->Append(junk).ok());
    }
    // Recovery drops the junk segment and must reuse its sequence number
    // for the segment StartAppending creates.
    auto db = Database::Open(Opts(&vfs));
    ASSERT_TRUE(db.ok()) << "junk size " << junk.size() << ": " << db.status();
    EXPECT_EQ(DumpState(**db), refs[3]);
    ASSERT_TRUE((*db)->Execute(kDml[3]).ok());
    ASSERT_TRUE((*db)->Close().ok());
    // Regression: allocating max_seen+1 instead would create wal-3 with
    // wal-2 gone, and this reopen (and every later one) would hard-fail
    // with a chain-gap error despite the clean shutdown above.
    auto again = Database::Open(Opts(&vfs));
    ASSERT_TRUE(again.ok()) << "junk size " << junk.size() << ": "
                            << again.status();
    EXPECT_TRUE((*again)->wal()->recovery_stats().clean_shutdown);
    EXPECT_EQ(DumpState(**again), refs[4]);
    ASSERT_TRUE((*again)->Close().ok());
  }
}

TEST(WalRecovery, TornTailRepairIsSyncedBeforeAppending) {
  const std::vector<std::string> refs = ReferenceStates();
  wal::MemVfs vfs;
  auto db = Database::Open(Opts(&vfs, /*group_size=*/64));
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, kDmlCount);
  const std::string seg = LastSegmentPath(vfs);
  const uint64_t unsynced = vfs.UnsyncedBytes(seg);
  ASSERT_GT(unsynced, 1u);
  // Keep all but the final byte of the tail: the last record is torn.
  auto crashed = vfs.CloneCrashed(seg, unsynced - 1);

  // The very first fsync of the reopen must be the repaired segment's:
  // recovery makes its truncate durable before any newer segment exists,
  // and a failure of that fsync aborts the open instead of being skipped.
  crashed->SetFaultPlan({.fail_sync_at = 1});
  EXPECT_FALSE(Database::Open(Opts(crashed.get(), 64)).ok());
  // The repair fsync aborts recovery before StartAppending runs — without
  // it, sync #1 would instead be the next segment's header sync, which
  // only fires after that segment's file is created.
  EXPECT_FALSE(crashed->Exists(wal::JoinPath(kDir, "wal-0000000002.log")));

  // The truncate itself already happened; with fsync healthy again the
  // next open recovers the durable prefix plus every intact tail record.
  crashed->SetFaultPlan({});
  auto rec = Database::Open(Opts(crashed.get(), 64));
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(PrefixOf(refs, DumpState(**rec)),
            static_cast<int>(kDmlCount) - 1);
}

// --- Checkpoints -------------------------------------------------------------

TEST(WalRecovery, CheckpointCoversPrefixAndPurgesSegments) {
  const std::vector<std::string> refs = ReferenceStates();
  wal::MemVfs vfs;
  auto db = Database::Open(Opts(&vfs, /*group_size=*/1));
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, 7);
  ASSERT_TRUE((*db)->CheckpointNow().ok());
  for (size_t i = 7; i < kDmlCount; ++i) {
    ASSERT_TRUE((*db)->Execute(kDml[i]).ok()) << kDml[i];
  }

  // Everything below the snapshot's first live segment is purged.
  auto names = vfs.ListDir(kDir);
  ASSERT_TRUE(names.ok());
  size_t snaps = 0, segs = 0;
  for (const std::string& n : *names) {
    snaps += n.rfind("snap-", 0) == 0;
    segs += n.rfind("wal-", 0) == 0;
  }
  EXPECT_EQ(snaps, 1u);
  EXPECT_EQ(segs, 1u);  // only the post-rotation segment remains

  // Crash recovery = snapshot + replay of the post-checkpoint suffix.
  auto crashed = vfs.CloneCrashed();
  auto rec = Database::Open(Opts(crashed.get(), 1));
  ASSERT_TRUE(rec.ok()) << rec.status();
  const auto& stats = (*rec)->wal()->recovery_stats();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.commits_replayed, kDmlCount - 7);
  EXPECT_EQ(DumpState(**rec), refs[kDmlCount]);

  // And the recovered database can itself checkpoint and keep going.
  ASSERT_TRUE((*rec)->CheckpointNow().ok());
  ASSERT_TRUE((*rec)->Execute("CREATE (:Owner {oid: 9})").ok());
  ASSERT_TRUE((*rec)->Close().ok());
}

TEST(WalRecovery, AutoCheckpointEveryIntervalCommits) {
  wal::MemVfs vfs;
  wal::WalOptions o = Opts(&vfs, /*group_size=*/1);
  o.snapshot_interval = 5;
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, kDmlCount);
  auto names = vfs.ListDir(kDir);
  ASSERT_TRUE(names.ok());
  bool has_snap = false;
  for (const std::string& n : *names) has_snap |= n.rfind("snap-", 0) == 0;
  EXPECT_TRUE(has_snap);

  auto crashed = vfs.CloneCrashed();
  o.vfs = crashed.get();
  auto rec = Database::Open(o);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_TRUE((*rec)->wal()->recovery_stats().snapshot_loaded);
  Database ref;
  ApplyWorkload(ref, kDmlCount);
  EXPECT_EQ(DumpState(**rec), DumpState(ref));
}

TEST(WalRecovery, CorruptNewestSnapshotFallsBackToOlder) {
  const std::vector<std::string> refs = ReferenceStates();
  wal::MemVfs vfs;
  wal::WalOptions o = Opts(&vfs);
  o.segment_bytes = 1;  // rotate after every record: a multi-segment tail
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, 7);
  ASSERT_TRUE((*db)->CheckpointNow().ok());
  for (size_t i = 7; i < kDmlCount; ++i) {
    ASSERT_TRUE((*db)->Execute(kDml[i]).ok()) << kDml[i];
  }
  ASSERT_TRUE((*db)->Close().ok());

  // Plant an undecodable newer snapshot named after the last segment —
  // exactly where a checkpoint that crashed mid-publish would sit.
  const std::string last_seg = LastSegmentPath(vfs);
  const std::string digits =
      last_seg.substr(last_seg.rfind("wal-") + 4, 10);
  {
    auto f = vfs.OpenAppend(wal::JoinPath(kDir, "snap-" + digits + ".pgs"));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("not a snapshot").ok());
  }

  // Recovery skips it, loads the older valid snapshot, and replays the
  // segments above it to full state.
  auto rec = Database::Open(o);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_TRUE((*rec)->wal()->recovery_stats().snapshot_loaded);
  EXPECT_EQ(DumpState(**rec), refs[kDmlCount]);
  ASSERT_TRUE((*rec)->Close().ok());

  // The planted file keeps being skipped on every later open too.
  auto again = Database::Open(o);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(DumpState(**again), refs[kDmlCount]);
}

TEST(WalRecovery, StraySnapshotNameDoesNotForkSegmentNumbering) {
  const std::vector<std::string> refs = ReferenceStates();
  wal::MemVfs vfs;
  auto db = Database::Open(Opts(&vfs));
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, 7);
  ASSERT_TRUE((*db)->CheckpointNow().ok());
  for (size_t i = 7; i < kDmlCount; ++i) {
    ASSERT_TRUE((*db)->Execute(kDml[i]).ok()) << kDml[i];
  }
  ASSERT_TRUE((*db)->Close().ok());

  // A stray undecodable snapshot numbered far above the segment chain.
  {
    auto f = vfs.OpenAppend(wal::JoinPath(kDir, "snap-9999999999.pgs"));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("garbage").ok());
  }
  // Its seq must not leak into segment numbering: the first reopen skips
  // it, and the segment it appends into stays contiguous with the chain —
  // otherwise this second reopen gap-fails permanently.
  {
    auto rec = Database::Open(Opts(&vfs));
    ASSERT_TRUE(rec.ok()) << rec.status();
    EXPECT_EQ(DumpState(**rec), refs[kDmlCount]);
    ASSERT_TRUE((*rec)->Close().ok());
  }
  auto again = Database::Open(Opts(&vfs));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE((*again)->wal()->recovery_stats().clean_shutdown);
  EXPECT_EQ(DumpState(**again), refs[kDmlCount]);
}

// --- Append-side faults ------------------------------------------------------

TEST(WalRecovery, FsyncFailurePoisonsLogAndRollsBack) {
  const std::vector<std::string> refs = ReferenceStates();
  wal::MemVfs vfs;
  auto db = Database::Open(Opts(&vfs, /*group_size=*/1));
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, 3);

  vfs.SetFaultPlan({.fail_sync_at = 1});
  auto r = (*db)->Execute(kDml[3]);
  EXPECT_FALSE(r.ok());  // commit must not report success without durability
  EXPECT_TRUE((*db)->wal()->broken());
  // The store rolled the transaction back: live state is still prefix 3
  // (modulo the burned ids of the rolled-back creates).
  EXPECT_EQ(StripBounds(DumpState(**db)), StripBounds(refs[3]));

  // A poisoned log refuses further mutations (memory would outrun the log)
  // but read-only statements still work.
  EXPECT_FALSE((*db)->Execute(kDml[4]).ok());
  auto count = (*db)->Execute("MATCH (n) RETURN COUNT(*)");
  EXPECT_TRUE(count.ok()) << count.status();
  // Clean shutdown is refused: the tail cannot be certified.
  EXPECT_FALSE((*db)->Close().ok());

  auto crashed = vfs.CloneCrashed();
  auto rec = Database::Open(Opts(crashed.get(), 1));
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(DumpState(**rec), refs[3]);
}

TEST(WalRecovery, ShortWritePoisonsLogAndRollsBack) {
  const std::vector<std::string> refs = ReferenceStates();
  wal::MemVfs vfs;
  auto db = Database::Open(Opts(&vfs, /*group_size=*/1));
  ASSERT_TRUE(db.ok()) << db.status();
  ApplyWorkload(**db, 3);

  const std::string seg = LastSegmentPath(vfs);
  // Allow a handful more bytes, then cut the next append short mid-record.
  vfs.SetFaultPlan({.short_write_after_bytes = 10});
  EXPECT_FALSE((*db)->Execute(kDml[3]).ok());
  EXPECT_TRUE((*db)->wal()->broken());
  EXPECT_EQ(StripBounds(DumpState(**db)), StripBounds(refs[3]));
  vfs.SetFaultPlan({});

  // The partial record is an ordinary torn tail for the next recovery.
  auto crashed = vfs.CloneCrashed(seg, vfs.UnsyncedBytes(seg));
  auto rec = Database::Open(Opts(crashed.get(), 1));
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(DumpState(**rec), refs[3]);
}

// --- Schema attachment -------------------------------------------------------

TEST(WalRecovery, SchemaAttachmentSurvivesRecovery) {
  auto parsed = schema::ParseSchemaDdl(R"(
      CREATE GRAPH TYPE Tiny STRICT {
        (PersonType : Person {name STRING, ssn STRING KEY})
      })");
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  wal::MemVfs vfs;
  {
    auto db = Database::Open(Opts(&vfs));
    ASSERT_TRUE(db.ok()) << db.status();
    (*db)->AttachSchema(*parsed);
    ASSERT_TRUE(
        (*db)->Execute("CREATE (:Person {name: 'ann', ssn: '1'})").ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = Database::Open(Opts(&vfs));
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)->attached_schema().has_value());
  EXPECT_EQ((*db)->attached_schema()->ToDdl(), parsed->ToDdl());
  // The guard is live again: a violating commit is still rejected.
  EXPECT_FALSE((*db)->Execute("CREATE (:Person {name: 'x'})").ok());
  // PG-Key enforcement (backed by the schema-managed unique index) too.
  EXPECT_FALSE(
      (*db)->Execute("CREATE (:Person {name: 'dup', ssn: '1'})").ok());

  // Detach is itself durable.
  (*db)->AttachSchema(std::nullopt);
  ASSERT_TRUE((*db)->Close().ok());
  auto again = Database::Open(Opts(&vfs));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE((*again)->attached_schema().has_value());
  EXPECT_TRUE((*again)->Execute("CREATE (:Person {name: 'x'})").ok());
}

// --- In-memory mode ----------------------------------------------------------

TEST(WalRecovery, InMemoryDatabaseHasNoWal) {
  Database db;
  EXPECT_EQ(db.wal(), nullptr);
  EXPECT_TRUE(db.Close().ok());  // no-op
  EXPECT_FALSE(db.CheckpointNow().ok());
  ASSERT_TRUE(db.Execute("CREATE (:A {x: 1})").ok());
  EXPECT_EQ(db.committed_transactions(), 1u);
}

}  // namespace
}  // namespace pgt
