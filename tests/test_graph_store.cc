// Unit tests for the property graph store (src/storage/graph_store.h).

#include "src/storage/graph_store.h"

#include <gtest/gtest.h>

namespace pgt {
namespace {

class GraphStoreTest : public ::testing::Test {
 protected:
  GraphStore store_;

  NodeId MakeNode(const std::string& label) {
    return store_.CreateNode({store_.InternLabel(label)}, {});
  }
};

TEST_F(GraphStoreTest, CreateNodeAssignsDenseIds) {
  EXPECT_EQ(MakeNode("A").value, 0u);
  EXPECT_EQ(MakeNode("A").value, 1u);
  EXPECT_EQ(store_.NodeCount(), 2u);
}

TEST_F(GraphStoreTest, LabelsAreSortedAndDeduped) {
  const LabelId b = store_.InternLabel("B");
  const LabelId a = store_.InternLabel("A");
  NodeId id = store_.CreateNode({b, a, b}, {});
  const NodeRecord* n = store_.GetNode(id);
  ASSERT_EQ(n->labels.size(), 2u);
  EXPECT_TRUE(std::is_sorted(n->labels.begin(), n->labels.end()));
  EXPECT_TRUE(n->HasLabel(a));
  EXPECT_TRUE(n->HasLabel(b));
}

TEST_F(GraphStoreTest, LabelIndexTracksMembership) {
  const LabelId a = store_.InternLabel("A");
  NodeId n1 = MakeNode("A");
  NodeId n2 = MakeNode("A");
  MakeNode("B");
  std::vector<NodeId> nodes = store_.NodesByLabel(a);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], n1);
  EXPECT_EQ(nodes[1], n2);  // id order
}

TEST_F(GraphStoreTest, AddRemoveLabelUpdatesIndex) {
  const LabelId extra = store_.InternLabel("Extra");
  NodeId id = MakeNode("A");
  EXPECT_TRUE(store_.AddLabel(id, extra).value());
  EXPECT_FALSE(store_.AddLabel(id, extra).value());  // already present
  EXPECT_EQ(store_.NodesByLabel(extra).size(), 1u);
  EXPECT_TRUE(store_.RemoveLabel(id, extra).value());
  EXPECT_FALSE(store_.RemoveLabel(id, extra).value());
  EXPECT_TRUE(store_.NodesByLabel(extra).empty());
}

TEST_F(GraphStoreTest, PropertySetReturnsOldValue) {
  NodeId id = MakeNode("A");
  const PropKeyId k = store_.InternPropKey("x");
  EXPECT_TRUE(store_.SetNodeProp(id, k, Value::Int(1)).value().is_null());
  Value old = store_.SetNodeProp(id, k, Value::Int(2)).value();
  EXPECT_EQ(old.int_value(), 1);
  EXPECT_EQ(store_.GetNodeProp(id, k).int_value(), 2);
}

TEST_F(GraphStoreTest, SetNullRemovesProperty) {
  NodeId id = MakeNode("A");
  const PropKeyId k = store_.InternPropKey("x");
  ASSERT_TRUE(store_.SetNodeProp(id, k, Value::Int(1)).ok());
  ASSERT_TRUE(store_.SetNodeProp(id, k, Value::Null()).ok());
  EXPECT_TRUE(store_.GetNodeProp(id, k).is_null());
  EXPECT_TRUE(store_.GetNode(id)->props.empty());
}

TEST_F(GraphStoreTest, RemovePropReturnsOldValue) {
  NodeId id = MakeNode("A");
  const PropKeyId k = store_.InternPropKey("x");
  ASSERT_TRUE(store_.SetNodeProp(id, k, Value::String("v")).ok());
  EXPECT_EQ(store_.RemoveNodeProp(id, k).value().string_value(), "v");
  EXPECT_TRUE(store_.RemoveNodeProp(id, k).value().is_null());
}

TEST_F(GraphStoreTest, CreateRelLinksAdjacency) {
  NodeId a = MakeNode("A");
  NodeId b = MakeNode("B");
  const RelTypeId t = store_.InternRelType("R");
  RelId r = store_.CreateRel(a, t, b, {}).value();
  const RelRecord* rec = store_.GetRel(r);
  EXPECT_EQ(rec->src, a);
  EXPECT_EQ(rec->dst, b);
  EXPECT_EQ(store_.RelsOf(a, Direction::kOutgoing, std::nullopt).size(), 1u);
  EXPECT_EQ(store_.RelsOf(b, Direction::kIncoming, std::nullopt).size(), 1u);
  EXPECT_TRUE(store_.RelsOf(b, Direction::kOutgoing, std::nullopt).empty());
}

TEST_F(GraphStoreTest, CreateRelToDeadNodeFails) {
  NodeId a = MakeNode("A");
  NodeId b = MakeNode("B");
  ASSERT_TRUE(store_.DeleteNode(b).ok());
  const RelTypeId t = store_.InternRelType("R");
  EXPECT_EQ(store_.CreateRel(a, t, b, {}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GraphStoreTest, DeleteNodeRequiresDetachedState) {
  NodeId a = MakeNode("A");
  NodeId b = MakeNode("B");
  const RelTypeId t = store_.InternRelType("R");
  RelId r = store_.CreateRel(a, t, b, {}).value();
  EXPECT_EQ(store_.DeleteNode(a).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store_.DeleteRel(r).ok());
  EXPECT_TRUE(store_.DeleteNode(a).ok());
  EXPECT_FALSE(store_.NodeAlive(a));
  EXPECT_EQ(store_.NodeCount(), 1u);
}

TEST_F(GraphStoreTest, TombstonedNodeStaysAddressable) {
  NodeId a = MakeNode("A");
  const PropKeyId k = store_.InternPropKey("x");
  ASSERT_TRUE(store_.SetNodeProp(a, k, Value::Int(5)).ok());
  ASSERT_TRUE(store_.DeleteNode(a).ok());
  const NodeRecord* rec = store_.GetNode(a);
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->alive);
  // Mutations on a dead node fail.
  EXPECT_FALSE(store_.SetNodeProp(a, k, Value::Int(6)).ok());
  EXPECT_FALSE(store_.AddLabel(a, store_.InternLabel("B")).ok());
}

TEST_F(GraphStoreTest, ReviveRestoresNodeAndIndex) {
  const LabelId label_a = store_.InternLabel("A");
  NodeId a = MakeNode("A");
  ASSERT_TRUE(store_.DeleteNode(a).ok());
  EXPECT_TRUE(store_.NodesByLabel(label_a).empty());
  ASSERT_TRUE(store_.ReviveNode(a, {label_a},
                                {{store_.InternPropKey("x"), Value::Int(1)}})
                  .ok());
  EXPECT_TRUE(store_.NodeAlive(a));
  EXPECT_EQ(store_.NodesByLabel(label_a).size(), 1u);
  EXPECT_EQ(store_.GetNodeProp(a, store_.InternPropKey("x")).int_value(), 1);
}

TEST_F(GraphStoreTest, ReviveRelRequiresAliveEndpoints) {
  NodeId a = MakeNode("A");
  NodeId b = MakeNode("B");
  const RelTypeId t = store_.InternRelType("R");
  RelId r = store_.CreateRel(a, t, b, {}).value();
  ASSERT_TRUE(store_.DeleteRel(r).ok());
  ASSERT_TRUE(store_.DeleteNode(b).ok());
  EXPECT_EQ(store_.ReviveRel(r, {}).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store_.ReviveNode(b, {store_.InternLabel("B")}, {}).ok());
  EXPECT_TRUE(store_.ReviveRel(r, {}).ok());
  EXPECT_TRUE(store_.RelAlive(r));
}

TEST_F(GraphStoreTest, RelsOfFiltersByType) {
  NodeId a = MakeNode("A");
  NodeId b = MakeNode("B");
  const RelTypeId t1 = store_.InternRelType("R1");
  const RelTypeId t2 = store_.InternRelType("R2");
  ASSERT_TRUE(store_.CreateRel(a, t1, b, {}).ok());
  ASSERT_TRUE(store_.CreateRel(a, t2, b, {}).ok());
  EXPECT_EQ(store_.RelsOf(a, Direction::kOutgoing, t1).size(), 1u);
  EXPECT_EQ(store_.RelsOf(a, Direction::kBoth, std::nullopt).size(), 2u);
}

TEST_F(GraphStoreTest, SelfLoopReportedOnceForBoth) {
  NodeId a = MakeNode("A");
  const RelTypeId t = store_.InternRelType("R");
  ASSERT_TRUE(store_.CreateRel(a, t, a, {}).ok());
  EXPECT_EQ(store_.RelsOf(a, Direction::kBoth, std::nullopt).size(), 1u);
  EXPECT_EQ(store_.RelsOf(a, Direction::kOutgoing, std::nullopt).size(), 1u);
  EXPECT_EQ(store_.RelsOf(a, Direction::kIncoming, std::nullopt).size(), 1u);
}

TEST_F(GraphStoreTest, DeletedRelsSkippedInScans) {
  NodeId a = MakeNode("A");
  NodeId b = MakeNode("B");
  const RelTypeId t = store_.InternRelType("R");
  RelId r1 = store_.CreateRel(a, t, b, {}).value();
  RelId r2 = store_.CreateRel(a, t, b, {}).value();
  ASSERT_TRUE(store_.DeleteRel(r1).ok());
  std::vector<RelId> rels = store_.RelsOf(a, Direction::kOutgoing, t);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0], r2);
  EXPECT_EQ(store_.AllRels().size(), 1u);
}

TEST_F(GraphStoreTest, AllNodesInIdOrder) {
  MakeNode("A");
  NodeId b = MakeNode("B");
  MakeNode("C");
  ASSERT_TRUE(store_.DeleteNode(b).ok());
  std::vector<NodeId> all = store_.AllNodes();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_LT(all[0].value, all[1].value);
}

TEST_F(GraphStoreTest, DictionariesRoundTrip) {
  const LabelId l = store_.InternLabel("Person");
  const RelTypeId t = store_.InternRelType("KNOWS");
  const PropKeyId p = store_.InternPropKey("age");
  EXPECT_EQ(store_.LabelName(l), "Person");
  EXPECT_EQ(store_.RelTypeName(t), "KNOWS");
  EXPECT_EQ(store_.PropKeyName(p), "age");
  EXPECT_EQ(store_.LookupLabel("Person").value(), l);
  EXPECT_FALSE(store_.LookupLabel("Nobody").has_value());
}

}  // namespace
}  // namespace pgt
