// Executor tests: the full clause pipeline over a live Database (reads,
// writes, aggregation, shaping). Triggers are exercised elsewhere; here the
// catalog stays empty.

#include <gtest/gtest.h>

#include "src/trigger/database.h"

namespace pgt {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  cypher::QueryResult Run(const std::string& q, const Params& params = {}) {
    auto r = db_.Execute(q, params);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? std::move(r).value() : cypher::QueryResult{};
  }
  Status RunError(const std::string& q) { return db_.Execute(q).status(); }
  int64_t Count(const std::string& q) {
    cypher::QueryResult r = Run(q);
    EXPECT_EQ(r.rows.size(), 1u);
    return r.rows[0][0].int_value();
  }

  Database db_;
};

TEST_F(ExecutorTest, CreateAndMatchNodes) {
  Run("CREATE (:P {name: 'ann'}), (:P {name: 'bob'}), (:Q)");
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS n"), 2);
  cypher::QueryResult r =
      Run("MATCH (p:P) RETURN p.name AS name ORDER BY name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "ann");
  EXPECT_EQ(r.rows[1][0].string_value(), "bob");
}

TEST_F(ExecutorTest, CreateRelationshipChain) {
  Run("CREATE (a:A {k: 1})-[:R {w: 5}]->(b:B)<-[:S]-(c:C)");
  EXPECT_EQ(Count("MATCH (:A)-[:R]->(:B) RETURN COUNT(*) AS n"), 1);
  EXPECT_EQ(Count("MATCH (:C)-[:S]->(:B) RETURN COUNT(*) AS n"), 1);
  EXPECT_EQ(Count("MATCH ()-[r:R]->() RETURN r.w AS w"), 5);
}

TEST_F(ExecutorTest, CreateWithBoundEndpoints) {
  Run("CREATE (:A {k: 1}), (:B {k: 2})");
  Run("MATCH (a:A), (b:B) CREATE (a)-[:R]->(b)");
  EXPECT_EQ(Count("MATCH (:A)-[:R]->(:B) RETURN COUNT(*) AS n"), 1);
}

TEST_F(ExecutorTest, CreateRequiresDirectedSingleType) {
  EXPECT_FALSE(RunError("CREATE (:A)-[:R]-(:B)").ok());
  EXPECT_FALSE(RunError("CREATE (:A)-[:R|S]->(:B)").ok());
}

TEST_F(ExecutorTest, CreateRedeclaringBoundVarFails) {
  Run("CREATE (:A)");
  EXPECT_FALSE(RunError("MATCH (a:A) CREATE (a:B)").ok());
}

TEST_F(ExecutorTest, WhereFilters) {
  Run("CREATE (:N {v: 1}), (:N {v: 2}), (:N {v: 3})");
  EXPECT_EQ(Count("MATCH (n:N) WHERE n.v >= 2 RETURN COUNT(*) AS c"), 2);
  // NULL predicate filters the row out rather than erroring.
  EXPECT_EQ(Count("MATCH (n:N) WHERE n.missing > 1 RETURN COUNT(*) AS c"),
            0);
}

TEST_F(ExecutorTest, AggregationWithGrouping) {
  Run("CREATE (:E {dept: 'a', sal: 10}), (:E {dept: 'a', sal: 20}), "
      "(:E {dept: 'b', sal: 30})");
  cypher::QueryResult r = Run(
      "MATCH (e:E) RETURN e.dept AS dept, COUNT(*) AS c, SUM(e.sal) AS s, "
      "AVG(e.sal) AS a, MIN(e.sal) AS lo, MAX(e.sal) AS hi ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].int_value(), 2);
  EXPECT_EQ(r.rows[0][2].int_value(), 30);
  EXPECT_DOUBLE_EQ(r.rows[0][3].double_value(), 15.0);
  EXPECT_EQ(r.rows[1][4].int_value(), 30);
  EXPECT_EQ(r.rows[1][5].int_value(), 30);
}

TEST_F(ExecutorTest, AggregationOverEmptyInput) {
  cypher::QueryResult r = Run(
      "MATCH (n:Nothing) RETURN COUNT(*) AS c, SUM(n.x) AS s, "
      "COLLECT(n.x) AS xs, MIN(n.x) AS lo");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 0);
  EXPECT_EQ(r.rows[0][1].int_value(), 0);
  EXPECT_TRUE(r.rows[0][2].list_value().empty());
  EXPECT_TRUE(r.rows[0][3].is_null());
}

TEST_F(ExecutorTest, CountDistinctAndCollect) {
  Run("CREATE (:N {v: 1}), (:N {v: 1}), (:N {v: 2})");
  EXPECT_EQ(Count("MATCH (n:N) RETURN COUNT(DISTINCT n.v) AS c"), 2);
  cypher::QueryResult r = Run("MATCH (n:N) RETURN COLLECT(n.v) AS vs");
  EXPECT_EQ(r.rows[0][0].list_value().size(), 3u);
}

TEST_F(ExecutorTest, ExpressionOverAggregate) {
  Run("CREATE (:N {v: 10}), (:N {v: 20})");
  EXPECT_EQ(Count("MATCH (n:N) RETURN SUM(n.v) / COUNT(*) AS avg"), 15);
}

TEST_F(ExecutorTest, CountStarGroupsOnlyAggregates) {
  Run("CREATE (:N), (:N)");
  EXPECT_EQ(Count("MATCH (n:N) RETURN COUNT(*) AS c"), 2);
}

TEST_F(ExecutorTest, NullsSkippedByAggregates) {
  Run("CREATE (:N {v: 1}), (:N)");
  EXPECT_EQ(Count("MATCH (n:N) RETURN COUNT(n.v) AS c"), 1);
  EXPECT_EQ(Count("MATCH (n:N) RETURN COUNT(*) AS c"), 2);
}

TEST_F(ExecutorTest, OrderSkipLimitDistinct) {
  Run("CREATE (:N {v: 3}), (:N {v: 1}), (:N {v: 2}), (:N {v: 2})");
  cypher::QueryResult r =
      Run("MATCH (n:N) RETURN DISTINCT n.v AS v ORDER BY v DESC SKIP 1 "
          "LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 2);
}

TEST_F(ExecutorTest, OrderByIsStable) {
  Run("CREATE (:N {k: 1, t: 'a'}), (:N {k: 1, t: 'b'}), (:N {k: 0, t: 'c'})");
  cypher::QueryResult r =
      Run("MATCH (n:N) RETURN n.k AS k, n.t AS t ORDER BY k");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].string_value(), "c");
  EXPECT_EQ(r.rows[1][1].string_value(), "a");  // original order kept
  EXPECT_EQ(r.rows[2][1].string_value(), "b");
}

TEST_F(ExecutorTest, WithReScopesVariables) {
  Run("CREATE (:N {v: 1})");
  EXPECT_FALSE(
      RunError("MATCH (n:N) WITH n.v AS v RETURN n").ok());  // n dropped
  EXPECT_EQ(Count("MATCH (n:N) WITH n.v AS v RETURN v"), 1);
}

TEST_F(ExecutorTest, WithWhereAfterAggregation) {
  Run("CREATE (:E {d: 'a'}), (:E {d: 'a'}), (:E {d: 'b'})");
  cypher::QueryResult r = Run(
      "MATCH (e:E) WITH e.d AS d, COUNT(*) AS c WHERE c > 1 RETURN d, c");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "a");
}

TEST_F(ExecutorTest, UnwindSemantics) {
  EXPECT_EQ(Count("UNWIND [1, 2, 3] AS x RETURN COUNT(*) AS c"), 3);
  EXPECT_EQ(Count("UNWIND [] AS x RETURN COUNT(*) AS c"), 0);
  EXPECT_EQ(Count("UNWIND null AS x RETURN COUNT(*) AS c"), 0);
  EXPECT_EQ(Count("UNWIND 7 AS x RETURN x"), 7);  // scalar: one row
  EXPECT_EQ(Count("UNWIND RANGE(1, 4) AS x RETURN SUM(x) AS s"), 10);
}

TEST_F(ExecutorTest, OptionalMatchBindsNulls) {
  Run("CREATE (:A)");
  cypher::QueryResult r =
      Run("MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(b) RETURN a, b");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][1].is_null());
  // COUNT over the null binding is 0.
  EXPECT_EQ(
      Count("MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(b) RETURN COUNT(b) AS c"),
      0);
}

TEST_F(ExecutorTest, SetAndRemoveProperties) {
  Run("CREATE (:N {v: 1})");
  Run("MATCH (n:N) SET n.v = 2, n.w = 'x'");
  EXPECT_EQ(Count("MATCH (n:N) RETURN n.v AS v"), 2);
  Run("MATCH (n:N) REMOVE n.w");
  EXPECT_EQ(Count("MATCH (n:N) WHERE n.w IS NULL RETURN COUNT(*) AS c"), 1);
  // SET to null removes.
  Run("MATCH (n:N) SET n.v = null");
  EXPECT_EQ(Count("MATCH (n:N) WHERE n.v IS NULL RETURN COUNT(*) AS c"), 1);
}

TEST_F(ExecutorTest, SetAndRemoveLabels) {
  Run("CREATE (:N)");
  Run("MATCH (n:N) SET n:Extra:More");
  EXPECT_EQ(Count("MATCH (n:Extra:More) RETURN COUNT(*) AS c"), 1);
  Run("MATCH (n:N) REMOVE n:Extra");
  EXPECT_EQ(Count("MATCH (n:Extra) RETURN COUNT(*) AS c"), 0);
  EXPECT_EQ(Count("MATCH (n:More) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ExecutorTest, DeleteAndDetachDelete) {
  Run("CREATE (:A)-[:R]->(:B)");
  EXPECT_FALSE(RunError("MATCH (a:A) DELETE a").ok());  // still attached
  Run("MATCH (a:A) DETACH DELETE a");
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 1);
  Run("MATCH (b:B) DELETE b");
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 0);
}

TEST_F(ExecutorTest, DeleteRelationshipOnly) {
  Run("CREATE (:A)-[:R]->(:B)");
  Run("MATCH ()-[r:R]->() DELETE r");
  EXPECT_EQ(Count("MATCH ()-[r]->() RETURN COUNT(*) AS c"), 0);
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 2);
}

TEST_F(ExecutorTest, DeleteNullIsNoop) {
  Run("CREATE (:A)");
  Run("MATCH (a:A) OPTIONAL MATCH (a)-[r:R]->() DELETE r");
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ExecutorTest, MergeMatchesOrCreates) {
  Run("MERGE (n:N {k: 1})");
  Run("MERGE (n:N {k: 1})");  // matches, creates nothing
  EXPECT_EQ(Count("MATCH (n:N) RETURN COUNT(*) AS c"), 1);
  Run("MERGE (n:N {k: 2})");
  EXPECT_EQ(Count("MATCH (n:N) RETURN COUNT(*) AS c"), 2);
}

TEST_F(ExecutorTest, MergeOnCreateOnMatch) {
  Run("MERGE (n:N {k: 1}) ON CREATE SET n.fresh = true");
  EXPECT_EQ(Count("MATCH (n:N {fresh: true}) RETURN COUNT(*) AS c"), 1);
  Run("MERGE (n:N {k: 1}) ON MATCH SET n.seen = true");
  EXPECT_EQ(Count("MATCH (n:N {seen: true}) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ExecutorTest, MergeRelationshipBetweenBoundNodes) {
  Run("CREATE (:A {k: 1}), (:B {k: 2})");
  Run("MATCH (a:A), (b:B) MERGE (a)-[:R]->(b)");
  Run("MATCH (a:A), (b:B) MERGE (a)-[:R]->(b)");
  EXPECT_EQ(Count("MATCH (:A)-[r:R]->(:B) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ExecutorTest, ForeachCreatesPerElement) {
  Run("FOREACH (x IN [1, 2, 3] | CREATE (:F {v: x}))");
  EXPECT_EQ(Count("MATCH (f:F) RETURN COUNT(*) AS c"), 3);
  EXPECT_EQ(Count("MATCH (f:F) RETURN SUM(f.v) AS s"), 6);
}

TEST_F(ExecutorTest, ForeachOverEmptyCollectIsNoop) {
  Run("CREATE (:A)");
  Run("MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(b) "
      "WITH COLLECT(b) AS bs "
      "FOREACH (x IN bs | SET x.touched = true)");
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ExecutorTest, NestedForeach) {
  Run("FOREACH (x IN [1, 2] | FOREACH (y IN [1, 2] | CREATE (:G {v: x * 10 "
      "+ y})))");
  EXPECT_EQ(Count("MATCH (g:G) RETURN COUNT(*) AS c"), 4);
}

TEST_F(ExecutorTest, ExistsSubqueryInWhere) {
  Run("CREATE (:A {k: 1})-[:R]->(:B), (:A {k: 2})");
  EXPECT_EQ(Count("MATCH (a:A) WHERE EXISTS { MATCH (a)-[:R]->(:B) } "
                  "RETURN COUNT(*) AS c"),
            1);
  EXPECT_EQ(Count("MATCH (a:A) WHERE NOT EXISTS { MATCH (a)-[:R]->(:B) } "
                  "RETURN a.k AS k"),
            2);
}

TEST_F(ExecutorTest, ParametersFlowThrough) {
  Params params;
  params["v"] = Value::Int(41);
  Run("CREATE (:N {v: $v})", params);
  EXPECT_EQ(Count("MATCH (n:N) RETURN n.v + 1 AS w"), 42);
}

TEST_F(ExecutorTest, ReturnStarColumns) {
  Run("CREATE (:A {k: 1})");
  cypher::QueryResult r = Run("MATCH (a:A) RETURN *");
  ASSERT_EQ(r.columns.size(), 1u);
  EXPECT_EQ(r.columns[0], "a");
}

TEST_F(ExecutorTest, WritesVisibleToLaterClauses) {
  Run("CREATE (:A {v: 1}) WITH 1 AS one MATCH (a:A) SET a.v = a.v + one");
  EXPECT_EQ(Count("MATCH (a:A) RETURN a.v AS v"), 2);
}

TEST_F(ExecutorTest, FailedStatementRollsBack) {
  Run("CREATE (:A)");
  // Second clause errors (division by zero) after a write: whole statement
  // (and transaction) must roll back.
  EXPECT_FALSE(RunError("CREATE (:B) WITH 1 AS x RETURN x / 0").ok());
  EXPECT_EQ(Count("MATCH (b:B) RETURN COUNT(*) AS c"), 0);
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ExecutorTest, MultiStatementTransaction) {
  auto r = db_.ExecuteTx({"CREATE (:A)", "CREATE (:B)",
                          "MATCH (a:A), (b:B) CREATE (a)-[:R]->(b)"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(Count("MATCH (:A)-[:R]->(:B) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ExecutorTest, MultiStatementTransactionRollsBackAtomically) {
  auto r = db_.ExecuteTx({"CREATE (:A)", "MATCH (a:A) RETURN 1 / 0"});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 0);
}

TEST_F(ExecutorTest, QueryResultTableRendering) {
  Run("CREATE (:N {v: 1})");
  cypher::QueryResult r = Run("MATCH (n:N) RETURN n.v AS value");
  std::string table = r.ToTable();
  EXPECT_NE(table.find("value"), std::string::npos);
  EXPECT_NE(table.find("| 1"), std::string::npos);
}

}  // namespace
}  // namespace pgt
