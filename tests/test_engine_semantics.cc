// Behavioral tests of the native PG-Trigger engine (Section 4.2 semantics):
// action times, granularities, transition variables, ordering, cascading
// with the execution stack, ONCOMMIT fixpoint and rollback, DETACHED
// autonomous transactions, and the legality guards.

#include <gtest/gtest.h>

#include "src/trigger/database.h"

namespace pgt {
namespace {

class EngineSemanticsTest : public ::testing::Test {
 protected:
  void Exec(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  Status ExecError(const std::string& q) { return db_.Execute(q).status(); }
  int64_t Count(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? r.value().rows[0][0].int_value() : -1;
  }
  uint64_t Fired(const std::string& name) {
    return db_.stats().per_trigger[name].fired;
  }

  Database db_;
};

TEST_F(EngineSemanticsTest, AfterTriggerFiresPerItem) {
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Log {who: NEW.name}) END");
  Exec("CREATE (:P {name: 'a'}), (:P {name: 'b'}), (:Q {name: 'c'})");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 2);
  EXPECT_EQ(Fired("T"), 2u);
  EXPECT_EQ(Count("MATCH (l:Log {who: 'a'}) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, AllGranularityFiresOncePerStatement) {
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR ALL NODES "
       "BEGIN CREATE (:Batch {n: SIZE(NEWNODES)}) END");
  Exec("UNWIND RANGE(1, 5) AS i CREATE (:P {i: i})");
  EXPECT_EQ(Fired("T"), 1u);
  EXPECT_EQ(Count("MATCH (b:Batch) RETURN b.n AS n"), 5);
}

TEST_F(EngineSemanticsTest, WhenExpressionGates) {
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
       "WHEN NEW.v > 10 BEGIN CREATE (:Big) END");
  Exec("CREATE (:P {v: 5}), (:P {v: 15})");
  EXPECT_EQ(Count("MATCH (b:Big) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(db_.stats().per_trigger["T"].considered, 2u);
  EXPECT_EQ(Fired("T"), 1u);
}

TEST_F(EngineSemanticsTest, WhenPipelineBindingsFlowToAction) {
  // DESIGN.md D2: the action runs once per condition row, with bindings.
  Exec("CREATE (:H {name: 'x'}), (:H {name: 'y'})");
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
       "WHEN MATCH (h:H) BEGIN CREATE (:Link {to: h.name}) END");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Link) RETURN COUNT(*) AS c"), 2);
  EXPECT_EQ(Fired("T"), 1u);
  EXPECT_EQ(db_.stats().per_trigger["T"].action_rows, 2u);
}

TEST_F(EngineSemanticsTest, TransitionVarSurvivesWhenProjection) {
  // NEW must stay usable in the action even after WITH re-scoping.
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
       "WHEN MATCH (n:P) WITH COUNT(n) AS c WHERE c >= 1 "
       "BEGIN SET NEW.tagged = true END");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (p:P {tagged: true}) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, OldAndNewForPropertyChange) {
  Exec("CREATE (:L {p: 'before'})");
  Exec("CREATE TRIGGER T AFTER SET ON 'L'.'p' FOR EACH NODE "
       "WHEN OLD.p <> NEW.p "
       "BEGIN CREATE (:Change {was: OLD.p, is: NEW.p}) END");
  Exec("MATCH (n:L) SET n.p = 'after'");
  EXPECT_EQ(Count("MATCH (c:Change {was: 'before', is: 'after'}) "
                  "RETURN COUNT(*) AS c"),
            1);
  // Setting the same value again: OLD = NEW, condition false.
  Exec("MATCH (n:L) SET n.p = 'after'");
  EXPECT_EQ(Count("MATCH (c:Change) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, DeleteTriggerReadsGhost) {
  Exec("CREATE (:P {name: 'gone'})");
  Exec("CREATE TRIGGER T AFTER DELETE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Obit {who: OLD.name}) END");
  Exec("MATCH (p:P) DELETE p");
  EXPECT_EQ(Count("MATCH (o:Obit {who: 'gone'}) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, RelationshipTriggerBindsRel) {
  Exec("CREATE (:A {k: 'a'}), (:B {k: 'b'})");
  Exec("CREATE TRIGGER T AFTER CREATE ON 'R' FOR EACH RELATIONSHIP "
       "BEGIN CREATE (:Seen {src: startNode(NEW).k, dst: endNode(NEW).k}) "
       "END");
  Exec("MATCH (a:A), (b:B) CREATE (a)-[:R]->(b)");
  EXPECT_EQ(Count("MATCH (s:Seen {src: 'a', dst: 'b'}) RETURN COUNT(*) AS "
                  "c"),
            1);
}

TEST_F(EngineSemanticsTest, CreationTimeOrdering) {
  // Second-installed trigger must observe the first one's effect.
  Exec("CREATE TRIGGER First AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Mark {step: 1}) END");
  Exec("CREATE TRIGGER Second AFTER CREATE ON 'P' FOR EACH NODE "
       "WHEN MATCH (m:Mark) WITH COUNT(m) AS marks WHERE marks >= 1 "
       "BEGIN CREATE (:Confirm) END");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (c:Confirm) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, CascadingAcrossTriggers) {
  // P -> Q -> R chain: each creation triggers the next.
  Exec("CREATE TRIGGER PtoQ AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  Exec("CREATE TRIGGER QtoR AFTER CREATE ON 'Q' FOR EACH NODE "
       "BEGIN CREATE (:R) END");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (q:Q) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (r:R) RETURN COUNT(*) AS c"), 1);
  EXPECT_GE(db_.stats().cascade_depth_max, 2u);
}

TEST_F(EngineSemanticsTest, RecursiveTriggerBoundedByDepthLimit) {
  db_.options().max_cascade_depth = 8;
  Exec("CREATE TRIGGER Loop AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:P) END");
  Status st = ExecError("CREATE (:P)");
  EXPECT_EQ(st.code(), StatusCode::kCascadeLimitExceeded);
  // The whole transaction rolled back: no P nodes at all.
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 0);
}

TEST_F(EngineSemanticsTest, BoundedRecursionConverges) {
  // Countdown: each P with v > 0 creates a P with v - 1. Terminates.
  Exec("CREATE TRIGGER Countdown AFTER CREATE ON 'P' FOR EACH NODE "
       "WHEN NEW.v > 0 BEGIN CREATE (:P {v: NEW.v - 1}) END");
  Exec("CREATE (:P {v: 5})");
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 6);
  EXPECT_EQ(db_.stats().cascade_depth_max, 6u);
}

TEST_F(EngineSemanticsTest, BeforeTriggerConditionsNewState) {
  Exec("CREATE TRIGGER Norm BEFORE CREATE ON 'P' FOR EACH NODE "
       "WHEN NEW.v IS NULL BEGIN SET NEW.v = 0 END");
  Exec("CREATE (:P), (:P {v: 7})");
  EXPECT_EQ(Count("MATCH (p:P {v: 0}) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (p:P {v: 7}) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, BeforeTriggerWritesRaiseNoEvents) {
  Exec("CREATE TRIGGER Norm BEFORE CREATE ON 'P' FOR EACH NODE "
       "BEGIN SET NEW.v = 0 END");
  Exec("CREATE TRIGGER Watch AFTER SET ON 'P'.'v' FOR EACH NODE "
       "BEGIN CREATE (:Echo) END");
  Exec("CREATE (:P)");
  // The BEFORE trigger's SET folds into the statement silently (D1).
  EXPECT_EQ(Count("MATCH (e:Echo) RETURN COUNT(*) AS c"), 0);
  EXPECT_EQ(Count("MATCH (p:P {v: 0}) RETURN COUNT(*) AS c"), 1);
  // A user SET afterwards does raise the event.
  Exec("MATCH (p:P) SET p.v = 1");
  EXPECT_EQ(Count("MATCH (e:Echo) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, BeforeTriggerTouchingOtherItemsAborts) {
  Exec("CREATE (:Other {v: 1})");
  Exec("CREATE TRIGGER Bad BEFORE CREATE ON 'P' FOR EACH NODE "
       "WHEN MATCH (o:Other) BEGIN SET o.v = 2 END");
  Status st = ExecError("CREATE (:P)");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 0);  // rolled back
  EXPECT_EQ(Count("MATCH (o:Other {v: 1}) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, OnCommitSeesWholeTransaction) {
  Exec("CREATE TRIGGER Tally ONCOMMIT CREATE ON 'P' FOR ALL NODES "
       "BEGIN CREATE (:Tally {n: SIZE(NEWNODES)}) END");
  auto r = db_.ExecuteTx({"CREATE (:P)", "CREATE (:P)", "CREATE (:P)"});
  ASSERT_TRUE(r.ok()) << r.status();
  // One ONCOMMIT activation over the accumulated delta of 3 statements.
  EXPECT_EQ(Count("MATCH (t:Tally) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (t:Tally) RETURN t.n AS n"), 3);
}

TEST_F(EngineSemanticsTest, OnCommitSideEffectsIncludedBeforeCommit) {
  // D4: an ONCOMMIT trigger whose action raises another ONCOMMIT trigger's
  // event — both must be folded in before the physical commit.
  Exec("CREATE TRIGGER Stage1 ONCOMMIT CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Q) END");
  Exec("CREATE TRIGGER Stage2 ONCOMMIT CREATE ON 'Q' FOR EACH NODE "
       "BEGIN CREATE (:R) END");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (q:Q) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (r:R) RETURN COUNT(*) AS c"), 1);
  EXPECT_GE(db_.stats().oncommit_rounds_max, 2u);
}

TEST_F(EngineSemanticsTest, OnCommitFailureRollsBackWholeTransaction) {
  Exec("CREATE TRIGGER Guard ONCOMMIT CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:X {v: 1 / 0}) END");
  Status st = ExecError("CREATE (:P)");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 0);
}

TEST_F(EngineSemanticsTest, OnCommitFixpointBoundedByRounds) {
  db_.options().max_oncommit_rounds = 4;
  Exec("CREATE TRIGGER Pump ONCOMMIT CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:P) END");
  Status st = ExecError("CREATE (:P)");
  EXPECT_EQ(st.code(), StatusCode::kCascadeLimitExceeded);
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 0);
}

TEST_F(EngineSemanticsTest, DetachedRunsAfterCommitInOwnTransaction) {
  Exec("CREATE TRIGGER Audit DETACHED CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:AuditLog {who: NEW.name}) END");
  Exec("CREATE (:P {name: 'p1'})");
  EXPECT_EQ(Count("MATCH (a:AuditLog {who: 'p1'}) RETURN COUNT(*) AS c"),
            1);
  EXPECT_EQ(db_.stats().detached_runs, 1u);
  // The audit ran in its own transaction after the user's commit.
  EXPECT_GE(db_.committed_transactions(), 2u);
}

TEST_F(EngineSemanticsTest, DetachedFailureDoesNotAffectUserTransaction) {
  Exec("CREATE TRIGGER Flaky DETACHED CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:X {v: 1 / 0}) END");
  // The user statement succeeds; the detached failure is contained.
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (x:X) RETURN COUNT(*) AS c"), 0);
  EXPECT_EQ(db_.stats().per_trigger["Flaky"].errors, 1u);
}

TEST_F(EngineSemanticsTest, DetachedChainBounded) {
  db_.options().max_detached_queue = 8;
  Exec("CREATE TRIGGER Chain DETACHED CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:P) END");
  Status st = ExecError("CREATE (:P)");
  EXPECT_EQ(st.code(), StatusCode::kCascadeLimitExceeded);
}

TEST_F(EngineSemanticsTest, DetachedDeleteReadsInjectedGhost) {
  Exec("CREATE (:P {name: 'x'})");
  Exec("CREATE TRIGGER Obit DETACHED DELETE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Obit {who: OLD.name}) END");
  Exec("MATCH (p:P) DELETE p");
  EXPECT_EQ(Count("MATCH (o:Obit {who: 'x'}) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, TargetLabelWritesRejectedAtInstall) {
  // Section 4.2: the statement may not set/remove the target label —
  // literal occurrences are rejected statically at install time.
  Exec("CREATE (:Helper)");
  Status st = ExecError(
      "CREATE TRIGGER T AFTER CREATE ON 'Tracked' FOR EACH NODE "
      "BEGIN MATCH (h:Helper) SET h:Extra:Tracked END");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  Status st2 = ExecError(
      "CREATE TRIGGER T2 AFTER CREATE ON 'Tracked' FOR EACH NODE "
      "BEGIN MATCH (h:Tracked) REMOVE h:Tracked END");
  EXPECT_EQ(st2.code(), StatusCode::kConstraintViolation);
}

TEST_F(EngineSemanticsTest, DisabledTriggerDoesNotFire) {
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Log) END");
  Exec("ALTER TRIGGER T DISABLE");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 0);
  Exec("ALTER TRIGGER T ENABLE");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
}

TEST_F(EngineSemanticsTest, DropTriggerStopsFiring) {
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Log) END");
  Exec("DROP TRIGGER T");
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 0);
}

TEST_F(EngineSemanticsTest, ActionErrorAbortsTransaction) {
  Exec("CREATE TRIGGER Bad AFTER CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:X {v: 1 / 0}) END");
  EXPECT_FALSE(ExecError("CREATE (:P)").ok());
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 0);
}

TEST_F(EngineSemanticsTest, TriggersDoNotFireOnRolledBackWork) {
  Exec("CREATE TRIGGER T DETACHED CREATE ON 'P' FOR EACH NODE "
       "BEGIN CREATE (:Log) END");
  // Statement fails after creating :P — no detached activation may leak.
  EXPECT_FALSE(ExecError("CREATE (:P) WITH 1 AS x RETURN x / 0").ok());
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 0);
}

TEST_F(EngineSemanticsTest, PseudoLabelInActionPattern) {
  // The Section 6.2 idiom MATCH (pn:NEWNODES)-... in the action.
  Exec("CREATE (:H {name: 'ward'})");
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR ALL NODES "
       "BEGIN MATCH (pn:NEWNODES) MATCH (h:H) CREATE (pn)-[:At]->(h) END");
  Exec("CREATE (:P), (:P)");
  EXPECT_EQ(Count("MATCH (:P)-[:At]->(:H) RETURN COUNT(*) AS c"), 2);
}

TEST_F(EngineSemanticsTest, StatsTrackConsideredAndFired) {
  Exec("CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
       "WHEN NEW.v > 0 BEGIN CREATE (:Log) END");
  Exec("CREATE (:P {v: 1}), (:P {v: -1})");
  const TriggerStats& stats = db_.stats().per_trigger["T"];
  EXPECT_EQ(stats.considered, 2u);
  EXPECT_EQ(stats.fired, 1u);
}

}  // namespace
}  // namespace pgt
