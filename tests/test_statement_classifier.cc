// Unit tests for the single-pass statement classifier that routes
// Database::Execute / ExecuteTx (replacing the legacy IsTriggerDdl +
// IsIndexDdl double scan). Classification must agree with the two legacy
// predicates on every input, including leading whitespace and comments.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cypher/statement_classifier.h"
#include "src/index/index_ddl.h"
#include "src/trigger/trigger_parser.h"

namespace pgt {
namespace {

TEST(StatementClassifier, TriggerDdl) {
  const std::vector<std::string> ddls = {
      "CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE BEGIN CREATE (:X) "
      "END",
      "DROP TRIGGER T",
      "ALTER TRIGGER T ENABLE",
      "ALTER TRIGGER T DISABLE",
      "create trigger lower_case AFTER CREATE ON 'L' FOR EACH NODE BEGIN "
      "CREATE (:X) END",
      "  \n\t CREATE TRIGGER Padded AFTER CREATE ON 'L' FOR EACH NODE BEGIN "
      "CREATE (:X) END",
      "// a leading comment\nCREATE TRIGGER C AFTER CREATE ON 'L' FOR EACH "
      "NODE BEGIN CREATE (:X) END",
      "/* block\n comment */ DROP TRIGGER T",
  };
  for (const std::string& s : ddls) {
    EXPECT_EQ(ClassifyStatement(s), StatementKind::kTriggerDdl) << s;
  }
}

TEST(StatementClassifier, IndexDdl) {
  const std::vector<std::string> ddls = {
      "CREATE INDEX ON :Person(ssn)",
      "CREATE UNIQUE INDEX ON :Person(ssn)",
      "CREATE RANGE INDEX ON :Person(age)",
      "CREATE UNIQUE RANGE INDEX ON :Person(ssn)",
      "create hash index on :Person(ssn)",
      "DROP INDEX ON :Person(ssn)",
      "SHOW INDEXES",
      "show index",
      "  /* comment */ CREATE INDEX ON :L(p)",
      "// note\nDROP INDEX ON :L(p)",
  };
  for (const std::string& s : ddls) {
    EXPECT_EQ(ClassifyStatement(s), StatementKind::kIndexDdl) << s;
  }
}

TEST(StatementClassifier, PlainCypher) {
  const std::vector<std::string> stmts = {
      "CREATE (:Mutation {name: 'Spike:D614G'})",
      "MATCH (n) RETURN n.name",
      "MATCH (n:Trigger) RETURN COUNT(*) AS c",  // label named Trigger
      "CREATE (:Index {v: 1})",                  // label named Index
      "CREATE INDEXED",  // 'INDEXED' is not the INDEX keyword
      "CREATE UNIQUE RANGE HASH UNIQUE INDEX ON :L(p)",  // past modifier window
      "RETURN 1 AS one",
      "// only a comment followed by cypher\nRETURN 1 AS one",
      "DROP",         // single token
      "",             // empty
      "  \t\n ",      // whitespace only
      "??? not lexable $$$",
  };
  for (const std::string& s : stmts) {
    EXPECT_EQ(ClassifyStatement(s), StatementKind::kCypher) << s;
  }
}

// The classifier must agree with the legacy predicates (and their routing
// precedence: trigger DDL first) on a mixed corpus.
TEST(StatementClassifier, AgreesWithLegacyPredicates) {
  const std::vector<std::string> corpus = {
      "CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE BEGIN CREATE (:X) "
      "END",
      "DROP TRIGGER T",
      "ALTER TRIGGER T ENABLE",
      "CREATE INDEX ON :L(p)",
      "CREATE UNIQUE RANGE INDEX ON :L(p)",
      // Within the legacy 3-token modifier window, even a repeated modifier
      // classifies as index DDL (the index parser rejects it afterwards).
      "CREATE UNIQUE UNIQUE INDEX ON :L(p)",
      "DROP INDEX ON :L(p)",
      "SHOW INDEXES",
      "CREATE (:L {p: 1})",
      "MATCH (n) RETURN n",
      "MERGE (n:L) RETURN n",
      "RETURN 1 AS x",
      "",
      "ALTER",
      "/* c */ CREATE TRIGGER X AFTER CREATE ON 'L' FOR EACH NODE BEGIN "
      "CREATE (:Y) END",
  };
  for (const std::string& s : corpus) {
    StatementKind expected = StatementKind::kCypher;
    if (TriggerDdlParser::IsTriggerDdl(s)) {
      expected = StatementKind::kTriggerDdl;
    } else if (index::IndexDdlParser::IsIndexDdl(s)) {
      expected = StatementKind::kIndexDdl;
    }
    EXPECT_EQ(ClassifyStatement(s), expected) << s;
  }
}

}  // namespace
}  // namespace pgt
