// Property-grammar round-trip suite for TriggerDef::ToDdl: for every
// action-time × event × granularity × item × REFERENCING-alias combination
// (plus WHEN-expression and WHEN-pipeline variants), unparse a definition
// to canonical DDL, re-parse it, and require an equivalent TriggerDef —
// and a fixed point (the reparsed definition unparses to the same text).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cypher/parser.h"
#include "src/trigger/trigger_parser.h"

namespace pgt {
namespace {

cypher::Query ParseQueryOrDie(const std::string& text) {
  auto r = cypher::Parser::ParseQuery(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return std::move(r).value();
}

cypher::ExprPtr ParseExprOrDie(const std::string& text) {
  auto r = cypher::Parser::ParseExpressionText(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return std::move(r).value();
}

/// REFERENCING aliases legal for the granularity/item combination.
std::vector<ReferencingAlias> AliasesFor(Granularity g, ItemKind item) {
  if (g == Granularity::kEach) {
    return {{TransitionVar::kOld, "prev"}, {TransitionVar::kNew, "cur"}};
  }
  if (item == ItemKind::kNode) {
    return {{TransitionVar::kOldNodes, "gone"},
            {TransitionVar::kNewNodes, "fresh"}};
  }
  return {{TransitionVar::kOldRels, "cut"},
          {TransitionVar::kNewRels, "tied"}};
}

void ExpectEquivalent(const TriggerDef& a, const TriggerDef& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.event, b.event);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.property, b.property);
  EXPECT_EQ(a.granularity, b.granularity);
  EXPECT_EQ(a.item, b.item);
  ASSERT_EQ(a.referencing.size(), b.referencing.size());
  for (size_t i = 0; i < a.referencing.size(); ++i) {
    EXPECT_EQ(a.referencing[i].var, b.referencing[i].var);
    EXPECT_EQ(a.referencing[i].alias, b.referencing[i].alias);
  }
  EXPECT_EQ(a.when_expr != nullptr, b.when_expr != nullptr);
  if (a.when_expr && b.when_expr) {
    EXPECT_EQ(cypher::ExprToString(*a.when_expr),
              cypher::ExprToString(*b.when_expr));
  }
  EXPECT_EQ(cypher::QueryToString(a.when_query),
            cypher::QueryToString(b.when_query));
  EXPECT_EQ(cypher::QueryToString(a.statement),
            cypher::QueryToString(b.statement));
}

void RoundTrip(const TriggerDef& def) {
  const std::string ddl = def.ToDdl();
  auto reparsed = TriggerDdlParser::ParseCreate(ddl);
  ASSERT_TRUE(reparsed.ok()) << ddl << "\n -> " << reparsed.status();
  ExpectEquivalent(def, *reparsed);
  // Canonical form is a fixed point of unparse -> parse -> unparse.
  EXPECT_EQ(reparsed->ToDdl(), ddl) << ddl;
}

TEST(TriggerDdlRoundTrip, FullCombinationGrid) {
  const ActionTime kTimes[] = {ActionTime::kBefore, ActionTime::kAfter,
                               ActionTime::kOnCommit, ActionTime::kDetached};
  const TriggerEvent kEvents[] = {TriggerEvent::kCreate, TriggerEvent::kDelete,
                                  TriggerEvent::kSet, TriggerEvent::kRemove};
  const Granularity kGrans[] = {Granularity::kEach, Granularity::kAll};
  const ItemKind kItems[] = {ItemKind::kNode, ItemKind::kRelationship};

  int combos = 0;
  for (ActionTime time : kTimes) {
    for (TriggerEvent event : kEvents) {
      for (Granularity gran : kGrans) {
        for (ItemKind item : kItems) {
          for (bool with_aliases : {false, true}) {
            TriggerDef def;
            def.name = "RT" + std::to_string(combos);
            def.time = time;
            def.event = event;
            def.label = item == ItemKind::kNode ? "Person" : "KNOWS";
            // Property monitors for SET/REMOVE (the grammar allows the
            // suffix on any event; the legality check is the catalog's
            // job, not the parser's — exercise it where it is meaningful).
            if (event == TriggerEvent::kSet ||
                event == TriggerEvent::kRemove) {
              def.property = "age";
            }
            def.granularity = gran;
            def.item = item;
            if (with_aliases) def.referencing = AliasesFor(gran, item);
            def.statement = ParseQueryOrDie("CREATE (:Hit {c: 1})");
            RoundTrip(def);
            ++combos;
          }
        }
      }
    }
  }
  EXPECT_EQ(combos, 4 * 4 * 2 * 2 * 2);
}

TEST(TriggerDdlRoundTrip, WhenExpressionVariant) {
  TriggerDef def;
  def.name = "WExpr";
  def.time = ActionTime::kAfter;
  def.event = TriggerEvent::kSet;
  def.label = "Acct";
  def.property = "bal";
  def.granularity = Granularity::kEach;
  def.item = ItemKind::kNode;
  def.when_expr = ParseExprOrDie("OLD.bal <> NEW.bal AND NEW.bal > 0");
  def.statement = ParseQueryOrDie("SET NEW.delta = NEW.bal - OLD.bal");
  RoundTrip(def);
}

TEST(TriggerDdlRoundTrip, WhenPipelineVariant) {
  TriggerDef def;
  def.name = "WPipe";
  def.time = ActionTime::kOnCommit;
  def.event = TriggerEvent::kCreate;
  def.label = "Order";
  def.granularity = Granularity::kAll;
  def.item = ItemKind::kNode;
  def.referencing = {{TransitionVar::kNewNodes, "placed"}};
  def.when_query = ParseQueryOrDie(
      "UNWIND placed AS o MATCH (c:Customer {id: o.cust}) WITH c, o");
  def.statement = ParseQueryOrDie("SET c.orders = c.orders + 1");
  RoundTrip(def);
}

TEST(TriggerDdlRoundTrip, QuotedAndMixedCaseNames) {
  TriggerDef def;
  def.name = "Mixed";
  def.time = ActionTime::kDetached;
  def.event = TriggerEvent::kDelete;
  def.label = "Weird Label";  // requires quoting
  def.granularity = Granularity::kEach;
  def.item = ItemKind::kNode;
  def.statement = ParseQueryOrDie("CREATE (:Tomb {was: OLD.name})");
  RoundTrip(def);
}

}  // namespace
}  // namespace pgt
