// Section 6 scenario tests: generated CoV2K data conforms to the Figure 4
// schema; the six paper triggers install and fire on the intended events.

#include <gtest/gtest.h>

#include "src/covid/generator.h"
#include "src/covid/schema.h"
#include "src/covid/triggers.h"
#include "src/covid/workload.h"
#include "src/schema/validator.h"

namespace pgt::covid {
namespace {

class CovidTest : public ::testing::Test {
 protected:
  void Setup(GeneratorOptions options = {}) {
    data_ = GenerateCovidData(db_.store(), options);
  }
  int64_t Count(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  Database db_;
  CovidDataset data_;
};

TEST_F(CovidTest, GeneratorIsDeterministic) {
  GraphStore s1, s2;
  GeneratorOptions options;
  options.seed = 7;
  GenerateCovidData(s1, options);
  GenerateCovidData(s2, options);
  EXPECT_EQ(s1.NodeCount(), s2.NodeCount());
  EXPECT_EQ(s1.RelCount(), s2.RelCount());
}

TEST_F(CovidTest, AnchorsExist) {
  Setup();
  ASSERT_TRUE(db_.store().NodeAlive(data_.sacco));
  ASSERT_TRUE(db_.store().NodeAlive(data_.meyer));
  EXPECT_EQ(Count("MATCH (h:Hospital {name: 'Sacco'})-[:LocatedIn]->"
                  "(r:Region {name: 'Lombardy'}) RETURN COUNT(*) AS c"),
            1);
  EXPECT_EQ(Count("MATCH (h:Hospital {name: 'Meyer'})-[:LocatedIn]->"
                  "(r:Region {name: 'Tuscany'}) RETURN COUNT(*) AS c"),
            1);
  EXPECT_GT(Count("MATCH (:Hospital)-[c:ConnectedTo]-(:Hospital) "
                  "RETURN COUNT(c) AS c"),
            0);
}

TEST_F(CovidTest, GeneratedDataValidatesAgainstFigure4Schema) {
  Setup();
  schema::SchemaDef schema = BuildCovidSchema();
  // LOOSE here: the generator omits optional hierarchy levels legitimately
  // (a HospitalizedPatient is not an IcuPatient), and STRICT label-chain
  // equality is exercised in the schema tests.
  schema.strict = false;
  schema::ValidationReport report =
      schema::ValidateGraph(db_.store(), schema);
  std::string first =
      report.violations.empty() ? "" : report.violations[0].ToString();
  EXPECT_TRUE(report.ok()) << report.Summary() << "\nfirst: " << first;
  EXPECT_GT(report.nodes_checked, 100u);
}

TEST_F(CovidTest, PaperTriggersInstall) {
  Setup();
  ASSERT_TRUE(InstallPaperTriggers(db_).ok());
  EXPECT_EQ(db_.catalog().size(), 7u);
  for (const std::string& name : PaperTriggerNames()) {
    EXPECT_NE(db_.catalog().Find(name), nullptr) << name;
  }
}

TEST_F(CovidTest, NewCriticalMutationFires) {
  Setup();
  ASSERT_TRUE(InstallPaperTriggers(db_, {"NewCriticalMutation"}).ok());
  ASSERT_TRUE(RegisterMutation(db_, "Spike:X1Y", "Spike", true).ok());
  ASSERT_TRUE(RegisterMutation(db_, "Spike:X2Y", "Spike", false).ok());
  EXPECT_EQ(Count("MATCH (a:Alert {desc: 'New critical mutation'}) "
                  "RETURN COUNT(*) AS c"),
            1);
  EXPECT_EQ(Count("MATCH (a:Alert {mutation: 'Spike:X1Y'}) "
                  "RETURN COUNT(*) AS c"),
            1);
}

TEST_F(CovidTest, NewCriticalLineageFires) {
  Setup();
  ASSERT_TRUE(InstallPaperTriggers(db_, {"NewCriticalLineage"}).ok());
  ASSERT_TRUE(RegisterMutation(db_, "Spike:C1", "Spike", true).ok());
  ASSERT_TRUE(
      RegisterSequence(db_, "EPI_T1", "B.1.1", "Spike:C1").ok());
  EXPECT_EQ(Count("MATCH (a:Alert {desc: 'New critical lineage', "
                  "lineage: 'B.1.1'}) RETURN COUNT(*) AS c"),
            1);
  // A sequence with a non-critical mutation raises no alert.
  ASSERT_TRUE(RegisterMutation(db_, "N:Q9", "N", false).ok());
  ASSERT_TRUE(RegisterSequence(db_, "EPI_T2", "B.1.2", "N:Q9").ok());
  EXPECT_EQ(Count("MATCH (a:Alert {desc: 'New critical lineage'}) "
                  "RETURN COUNT(*) AS c"),
            1);
}

TEST_F(CovidTest, WhoDesignationChangeFiresOnlyOnActualChange) {
  Setup();
  ASSERT_TRUE(InstallPaperTriggers(db_, {"WhoDesignationChange"}).ok());
  // First assignment: OLD is null -> null <> 'Indian' is NULL -> no fire.
  ASSERT_TRUE(ChangeWhoDesignation(db_, "B.1.3", "Indian").ok());
  const int64_t after_first =
      Count("MATCH (a:Alert) RETURN COUNT(*) AS c");
  ASSERT_TRUE(ChangeWhoDesignation(db_, "B.1.3", "Delta").ok());
  EXPECT_EQ(Count("MATCH (a:Alert) RETURN COUNT(*) AS c"), after_first + 1);
  // Unchanged designation: no fire.
  ASSERT_TRUE(ChangeWhoDesignation(db_, "B.1.3", "Delta").ok());
  EXPECT_EQ(Count("MATCH (a:Alert) RETURN COUNT(*) AS c"), after_first + 1);
}

TEST_F(CovidTest, IcuThresholdFiresPastFifty) {
  GeneratorOptions options;
  options.patients = 0;  // start with an empty ICU at Sacco
  Setup(options);
  ASSERT_TRUE(InstallPaperTriggers(db_, {"IcuPatientsOverThreshold"}).ok());
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 49, 0).ok());
  EXPECT_EQ(Count("MATCH (a:Alert) RETURN COUNT(*) AS c"), 0);
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 5, 100).ok());
  EXPECT_EQ(Count("MATCH (a:Alert) RETURN COUNT(*) AS c"), 1);
}

TEST_F(CovidTest, IcuIncreaseFiresOnLargeWave) {
  GeneratorOptions options;
  options.patients = 0;
  Setup(options);
  ASSERT_TRUE(InstallPaperTriggers(db_, {"IcuPatientIncrease"}).ok());
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 50, 0).ok());  // first wave
  const int64_t after_first = Count("MATCH (a:Alert) RETURN COUNT(*) AS c");
  // A wave of 3 on top of 50: 3/53 < 10% -> no alert.
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 3, 100).ok());
  EXPECT_EQ(Count("MATCH (a:Alert) RETURN COUNT(*) AS c"), after_first);
  // A wave of 20 on top of 53: 20/73 > 10% -> alert.
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 20, 200).ok());
  EXPECT_EQ(Count("MATCH (a:Alert) RETURN COUNT(*) AS c"), after_first + 1);
}

TEST_F(CovidTest, IcuPatientMoveRelocatesWaveToMeyer) {
  GeneratorOptions options;
  options.patients = 0;
  options.icu_beds_min = 10;
  options.icu_beds_max = 10;  // Sacco and Meyer both have 10 beds
  Setup(options);
  ASSERT_TRUE(InstallPaperTriggers(db_, {"IcuPatientMove"}).ok());
  // 8 patients: under capacity, nobody moves.
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 8, 0).ok());
  EXPECT_EQ(CountIcuAt(db_, "Sacco").value(), 8);
  EXPECT_EQ(CountIcuAt(db_, "Meyer").value(), 0);
  // A wave of 4 overflows Sacco (12 > 10): the 4 new patients move to
  // Meyer (0 + 4 <= 10).
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 4, 100).ok());
  EXPECT_EQ(CountIcuAt(db_, "Sacco").value(), 8);
  EXPECT_EQ(CountIcuAt(db_, "Meyer").value(), 4);
}

TEST_F(CovidTest, MoveToNearHospitalUsesClosestConnection) {
  GeneratorOptions options;
  options.patients = 0;
  options.icu_beds_min = 5;
  options.icu_beds_max = 5;
  Setup(options);
  ASSERT_TRUE(InstallPaperTriggers(db_, {"MoveToNearHospital"}).ok());
  // Fill Sacco to capacity, then admit one more: the FOR EACH trigger
  // moves each overflow patient to the closest connected hospital.
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 5, 0).ok());
  ASSERT_TRUE(AdmitIcuPatients(db_, "Sacco", 1, 100).ok());
  EXPECT_EQ(CountIcuAt(db_, "Sacco").value(), 5);
  // The moved patient is at exactly one other hospital.
  EXPECT_EQ(Count("MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital) "
                  "WHERE h.name <> 'Sacco' RETURN COUNT(p) AS c"),
            1);
}

TEST_F(CovidTest, FullScenarioProducesAlerts) {
  GeneratorOptions options;
  options.patients = 40;
  Setup(options);
  ASSERT_TRUE(InstallPaperTriggers(
                  db_, {"NewCriticalMutation", "NewCriticalLineage",
                        "WhoDesignationChange", "IcuPatientsOverThreshold",
                        "IcuPatientIncrease"})
                  .ok());
  auto outcome = RunCovidScenario(db_, data_, /*admission_waves=*/6,
                                  /*patients_per_wave=*/12);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->alerts, 0);
  EXPECT_GT(outcome->icu_at_sacco, 0);
  EXPECT_GT(outcome->statements, 0u);
}

TEST_F(CovidTest, UnguardedRelocationHitsCascadeLimit) {
  GeneratorOptions options;
  options.patients = 0;
  options.icu_beds_min = 2;
  options.icu_beds_max = 2;  // every hospital saturates quickly
  Setup(options);
  ASSERT_TRUE(db_.Execute(UnguardedMoveTriggerDdl()).ok());
  // Fill every hospital exactly to capacity (2 > 2 is false: no trigger
  // fires), then overflow Sacco: the unguarded relocation bounces the
  // overflow patient between saturated hospitals until the cascade depth
  // limit aborts the transaction (Section 6.2.3's non-termination).
  int64_t base = 0;
  for (const char* h : {"Sacco", "Meyer", "Niguarda", "Careggi", "Gemelli",
                        "Molinette"}) {
    ASSERT_TRUE(AdmitIcuPatients(db_, h, 2, base).ok()) << h;
    base += 100;
  }
  db_.options().max_cascade_depth = 12;
  auto st = AdmitIcuPatients(db_, "Sacco", 1, 900);
  EXPECT_EQ(st.code(), StatusCode::kCascadeLimitExceeded);
  // The failed wave rolled back entirely: Sacco still at capacity.
  EXPECT_EQ(CountIcuAt(db_, "Sacco").value(), 2);
}

}  // namespace
}  // namespace pgt::covid
