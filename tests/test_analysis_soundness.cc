// Soundness property test for the static triggering graph (docs/analysis.md):
// over randomized trigger corpora and workloads, every cascade edge the
// engine actually takes at runtime must exist in the statically-derived
// graph. Fired edges (the woken trigger's WHEN held and its action ran)
// must be plain edges; considered-but-not-fired and commit-time derivation
// edges may additionally be predicate-pruned edges. Corpora are seeded
// deterministically so failures reproduce.

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/trigger/database.h"

namespace pgt {
namespace {

using Edge = std::pair<std::string, std::string>;

const char* kLabels[] = {"A", "B", "C", "D", "E", "F"};
const char* kProps[] = {"p", "q", "r"};
const char* kRelTypes[] = {"R", "S"};

std::string Pick(std::mt19937& rng, const char* const* arr, size_t n) {
  return arr[rng() % n];
}

/// One random trigger definition. BEFORE triggers keep to the legality
/// guard (only SET on NEW); the rest draw from create/set/remove/delete
/// actions over the shared label/prop alphabet so corpora are densely
/// interconnected.
std::string RandomTriggerDdl(std::mt19937& rng, int idx) {
  const std::string name = "T" + std::to_string(idx);
  const int time_roll = static_cast<int>(rng() % 10);
  const char* time = time_roll < 6   ? "AFTER"
                     : time_roll < 8 ? "ONCOMMIT"
                     : time_roll < 9 ? "DETACHED"
                                     : "BEFORE";
  const bool is_rel_monitor = rng() % 8 == 0;
  std::string monitor;
  bool monitor_binds_new = true;
  if (is_rel_monitor) {
    monitor = "CREATE ON '" + Pick(rng, kRelTypes, 2) +
              "' FOR EACH RELATIONSHIP";
  } else {
    const int ev = static_cast<int>(rng() % 4);
    const std::string label = Pick(rng, kLabels, 6);
    switch (ev) {
      case 0:
        monitor = "CREATE ON '" + label + "' FOR EACH NODE";
        break;
      case 1:
        monitor = "SET ON '" + label + "'.'" + Pick(rng, kProps, 3) +
                  "' FOR EACH NODE";
        break;
      case 2:
        monitor = "REMOVE ON '" + label + "'.'" + Pick(rng, kProps, 3) +
                  "' FOR EACH NODE";
        monitor_binds_new = false;
        break;
      default:
        monitor = "DELETE ON '" + label + "' FOR EACH NODE";
        monitor_binds_new = false;
        break;
    }
  }
  // BEFORE actions may only SET properties of NEW transition items.
  std::string action;
  if (std::string(time) == "BEFORE") {
    if (!monitor_binds_new || is_rel_monitor) {
      monitor = "CREATE ON '" + Pick(rng, kLabels, 6) + "' FOR EACH NODE";
    }
    action = "SET NEW." + Pick(rng, kProps, 3) + " = " +
             std::to_string(rng() % 20);
  } else {
    const int act = static_cast<int>(rng() % 5);
    const std::string label = Pick(rng, kLabels, 6);
    const std::string prop = Pick(rng, kProps, 3);
    switch (act) {
      case 0:
        action = "CREATE (:" + label + " {" + prop + ": " +
                 std::to_string(rng() % 20) + "})";
        break;
      case 1:
        action = "MATCH (n:" + label + ") SET n." + prop + " = " +
                 std::to_string(rng() % 20);
        break;
      case 2:
        action = "MATCH (n:" + label + ") REMOVE n." + prop;
        break;
      case 3:
        action = "MATCH (n:" + label + ") DETACH DELETE n";
        break;
      default:
        action = "CREATE (:" + label + ")-[:" + Pick(rng, kRelTypes, 2) +
                 "]->(:" + Pick(rng, kLabels, 6) + ")";
        break;
    }
  }
  // A guard on roughly a third of the NEW-binding monitors exercises the
  // predicate-pruning path against real firings.
  std::string when;
  if (monitor_binds_new && !is_rel_monitor && rng() % 3 == 0) {
    when = " WHEN NEW." + Pick(rng, kProps, 3) + " > " +
           std::to_string(rng() % 15);
  }
  return "CREATE TRIGGER " + name + " " + time + " " + monitor + when +
         " BEGIN " + action + " END";
}

std::string RandomStatement(std::mt19937& rng) {
  const std::string label = Pick(rng, kLabels, 6);
  const std::string prop = Pick(rng, kProps, 3);
  switch (rng() % 5) {
    case 0:
      return "CREATE (:" + label + " {" + prop + ": " +
             std::to_string(rng() % 20) + "})";
    case 1:
      return "MATCH (n:" + label + ") SET n." + prop + " = " +
             std::to_string(rng() % 20);
    case 2:
      return "MATCH (n:" + label + ") REMOVE n." + prop;
    case 3:
      return "MATCH (n:" + label + ") DETACH DELETE n";
    default:
      return "CREATE (:" + label + ")-[:" + Pick(rng, kRelTypes, 2) +
             "]->(:" + Pick(rng, kLabels, 6) + ")";
  }
}

TEST(AnalysisSoundnessTest, RuntimeCascadeEdgesAreStaticallyPredicted) {
  size_t total_fired = 0, total_derived = 0, total_static = 0,
         total_pruned = 0;
  for (uint32_t corpus = 0; corpus < 12; ++corpus) {
    std::mt19937 rng(1234 + corpus * 7919);
    EngineOptions opts;
    opts.termination_policy = TerminationPolicy::kWarn;
    opts.max_cascade_depth = 8;
    Database db(opts);

    std::vector<std::string> ddls;
    for (int i = 0; i < 8; ++i) {
      const std::string ddl = RandomTriggerDdl(rng, i);
      auto r = db.Execute(ddl);
      ASSERT_TRUE(r.ok()) << ddl << " -> " << r.status();
      ddls.push_back(ddl);
    }

    // Snapshot the static graph before the workload (no DDL follows).
    (void)db.AnalyzeTriggers();
    const std::set<Edge> static_edges = db.analyzer().Edges();
    const std::set<Edge> pruned_edges = db.analyzer().PrunedEdges();

    std::set<Edge> fired, derived;
    db.engine().SetCascadeProbe([&](const std::string& writer,
                                    const std::string& woken, ActionTime,
                                    bool did_fire) {
      if (writer.empty()) return;  // user statement: no source trigger
      (did_fire ? fired : derived).insert({writer, woken});
    });

    for (int s = 0; s < 40; ++s) {
      // Keep the MATCH-driven statements fed: most rounds guarantee at
      // least one node of a random label exists.
      if (s % 4 == 0) {
        Status seed_st =
            db.Execute("CREATE (:" + Pick(rng, kLabels, 6) + " {" +
                       Pick(rng, kProps, 3) + ": " +
                       std::to_string(rng() % 20) + "})")
                .status();
        ASSERT_TRUE(seed_st.ok() ||
                    seed_st.code() == StatusCode::kCascadeLimitExceeded)
            << seed_st;
      }
      Status st = db.Execute(RandomStatement(rng)).status();
      // Non-terminating rule sets abort at the depth limit; every other
      // statement must succeed.
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kCascadeLimitExceeded)
          << st;
    }
    db.engine().SetCascadeProbe(nullptr);

    auto dump_corpus = [&ddls]() {
      std::string out;
      for (const std::string& d : ddls) out += d + "\n";
      return out;
    };
    for (const Edge& e : fired) {
      EXPECT_TRUE(static_edges.count(e))
          << "corpus " << corpus << ": fired edge " << e.first << " -> "
          << e.second << " missing from static graph\n"
          << dump_corpus();
    }
    for (const Edge& e : derived) {
      EXPECT_TRUE(static_edges.count(e) || pruned_edges.count(e))
          << "corpus " << corpus << ": derived edge " << e.first << " -> "
          << e.second << " missing from static graph (incl. pruned)\n"
          << dump_corpus();
    }
    total_fired += fired.size();
    total_derived += derived.size();
    total_static += static_edges.size();
    total_pruned += pruned_edges.size();
  }
  // Precision diagnostics (the static graph over-approximates; observed
  // edges show how tight it is on these corpora).
  std::printf("soundness: %zu fired + %zu derived observed edges vs %zu "
              "static (+%zu pruned)\n",
              total_fired, total_derived, total_static, total_pruned);
  // The corpora must actually exercise cascades, or the test is vacuous.
  EXPECT_GT(total_fired + total_derived, 0u);
}

}  // namespace
}  // namespace pgt
