// Emulator tests: the APOC and Memgraph runtime behaviors the paper
// reports in Section 5 — alphabetic 'before' ordering, single-pass
// activation regardless of type, blocked cascading, afterAsync visibility
// races — made executable.

#include <gtest/gtest.h>

#include "src/emul/apoc_emulator.h"
#include "src/emul/memgraph_emulator.h"

namespace pgt::emul {
namespace {

class ApocEmulatorTest : public ::testing::Test {
 protected:
  ApocEmulatorTest() {
    auto owner = std::make_unique<ApocEmulator>(&db_);
    apoc_ = owner.get();
    db_.SetRuntime(std::move(owner));
  }
  void Exec(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  int64_t Count(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  Database db_;
  ApocEmulator* apoc_ = nullptr;
};

TEST_F(ApocEmulatorTest, InstallValidatesPhaseAndDuplicates) {
  EXPECT_TRUE(apoc_->Install("t1", "RETURN 1", "before").ok());
  EXPECT_EQ(apoc_->Install("t1", "RETURN 1", "before").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(apoc_->Install("t2", "RETURN 1", "sometime").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(apoc_->Install("t3", "THIS IS NOT CYPHER", "before").code(),
            StatusCode::kSyntaxError);
}

TEST_F(ApocEmulatorTest, BeforePhaseRunsAtCommitInsideTransaction) {
  ASSERT_TRUE(apoc_->Install("log",
                             "UNWIND $createdNodes AS n "
                             "CREATE (:Log)",
                             "before")
                  .ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(apoc_->fired("log"), 1u);
}

TEST_F(ApocEmulatorTest,
       BeforeTriggersRunOnceRegardlessOfMonitoredType) {
  // Section 5.1: "all the installed triggers are activated, only once, in
  // alphabetic order, regardless of the specific node or relationship
  // type". A trigger watching $createdRelationships still RUNS on a
  // node-only transaction (its UNWIND just yields no rows).
  ASSERT_TRUE(apoc_->Install("relwatch",
                             "UNWIND $createdRelationships AS r "
                             "CREATE (:RelSeen)",
                             "before")
                  .ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(apoc_->fired("relwatch"), 1u);  // ran...
  EXPECT_EQ(Count("MATCH (x:RelSeen) RETURN COUNT(*) AS c"), 0);  // no-op
}

TEST_F(ApocEmulatorTest, BeforePhaseAlphabeticalOrder) {
  // "zeta" runs AFTER "alpha" despite being installed first; alpha's
  // effect is visible to zeta within the same commit.
  ASSERT_TRUE(apoc_->Install("zeta",
                             "MATCH (m:AlphaMark) CREATE (:ZetaSawAlpha)",
                             "before")
                  .ok());
  ASSERT_TRUE(apoc_->Install("alpha", "CREATE (:AlphaMark)", "before").ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (z:ZetaSawAlpha) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ApocEmulatorTest, BeforePhaseDoesNotCascade) {
  // A before-trigger creating :Q never re-activates the same (or any)
  // trigger set within this transaction — single pass.
  ASSERT_TRUE(apoc_->Install("qmaker",
                             "UNWIND $createdNodes AS n CREATE (:Q)",
                             "before")
                  .ok());
  Exec("CREATE (:P)");
  // One pass: exactly one :Q for the one created :P, not a runaway chain.
  EXPECT_EQ(Count("MATCH (q:Q) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(apoc_->fired("qmaker"), 1u);
}

TEST_F(ApocEmulatorTest, AfterAsyncRunsPostCommitInNewTransaction) {
  ASSERT_TRUE(apoc_->Install("audit",
                             "UNWIND $createdNodes AS n "
                             "CREATE (:Audit)",
                             "afterAsync")
                  .ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (a:Audit) RETURN COUNT(*) AS c"), 1);
  EXPECT_GE(db_.committed_transactions(), 2u);
}

TEST_F(ApocEmulatorTest, AfterAsyncCascadeExplicitlyBlocked) {
  // The trigger transaction creates :P nodes, but trigger transactions
  // never re-activate triggers (Section 5.1's metadata exclusion).
  ASSERT_TRUE(apoc_->Install("selffeed",
                             "UNWIND $createdNodes AS n CREATE (:P)",
                             "afterAsync")
                  .ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 2);  // 1 user + 1
  EXPECT_EQ(apoc_->fired("selffeed"), 1u);                  // exactly once
}

TEST_F(ApocEmulatorTest, AfterAsyncVisibilityRace) {
  // Section 5.1: "triggers [may not] see the final state produced by the
  // transaction that activates them, since other transactions can occur
  // after the commit ... and before the trigger actually starts".
  ASSERT_TRUE(apoc_->Install("reader",
                             "MATCH (s:Shared) "
                             "CREATE (:Observed {v: s.v})",
                             "afterAsync")
                  .ok());
  Exec("CREATE (:Shared {v: 1})");
  // Now queue an interleaved transaction that bumps v before the next
  // trigger run, then touch the graph to activate the trigger.
  apoc_->QueueInterleaved("MATCH (s:Shared) SET s.v = 99");
  Exec("CREATE (:Touch)");
  // The trigger observed v = 99, not the activating transaction's view.
  EXPECT_EQ(Count("MATCH (o:Observed) RETURN MAX(o.v) AS v"), 99);
}

TEST_F(ApocEmulatorTest, StopAndStartPauseTriggers) {
  ASSERT_TRUE(
      apoc_->Install("log", "CREATE (:Log)", "before").ok());
  ASSERT_TRUE(apoc_->Stop("log").ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 0);
  ASSERT_TRUE(apoc_->Start("log").ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ApocEmulatorTest, DropRemovesTrigger) {
  ASSERT_TRUE(apoc_->Install("log", "CREATE (:Log)", "before").ok());
  ASSERT_TRUE(apoc_->Drop("log").ok());
  EXPECT_EQ(apoc_->Drop("log").code(), StatusCode::kNotFound);
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 0);
}

TEST_F(ApocEmulatorTest, UtilityParamsExposeTable2Shapes) {
  GraphStore& store = db_.store();
  GraphDelta delta;
  NodeId n = store.CreateNode({store.InternLabel("A")}, {});
  delta.created_nodes.push_back(n);
  delta.assigned_node_props.push_back(NodePropChange{
      n, store.InternPropKey("p"), Value::Int(1), Value::Int(2)});
  delta.assigned_labels.push_back(
      LabelChange{n, store.InternLabel("Extra")});
  Params params =
      ApocEmulator::BuildUtilityParams(delta, StoreView::Live(store));
  EXPECT_EQ(params["createdNodes"].list_value().size(), 1u);
  EXPECT_EQ(params["deletedNodes"].list_value().size(), 0u);
  const Value& by_key = params["assignedNodeProperties"];
  ASSERT_TRUE(by_key.is_map());
  const Value& entries = by_key.map_value().at("p");
  ASSERT_EQ(entries.list_value().size(), 1u);
  const Value::Map& quad = entries.list_value()[0].map_value();
  EXPECT_EQ(quad.at("old").int_value(), 1);
  EXPECT_EQ(quad.at("new").int_value(), 2);
  const Value& labels = params["assignedLabels"];
  EXPECT_EQ(labels.map_value().at("Extra").list_value().size(), 1u);
}

TEST_F(ApocEmulatorTest, DoWhenProcedureConditionalExecution) {
  Exec("CALL apoc.do.when(true, 'CREATE (:Yes)', 'CREATE (:No)', {}) "
       "YIELD value RETURN *");
  Exec("CALL apoc.do.when(false, 'CREATE (:Yes)', 'CREATE (:No)', {}) "
       "YIELD value RETURN *");
  EXPECT_EQ(Count("MATCH (y:Yes) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (n:No) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ApocEmulatorTest, DoWhenPassesParamsToNestedQuery) {
  Exec("CREATE (:Target {k: 5})");
  Exec("MATCH (t:Target) "
       "CALL apoc.do.when(true, 'SET x.seen = $mark', '', "
       "{x: t, mark: 7}) YIELD value RETURN *");
  EXPECT_EQ(Count("MATCH (t:Target {seen: 7}) RETURN COUNT(*) AS c"), 1);
}

class MemgraphEmulatorTest : public ::testing::Test {
 protected:
  MemgraphEmulatorTest() {
    auto owner = std::make_unique<MemgraphEmulator>(&db_);
    mg_ = owner.get();
    db_.SetRuntime(std::move(owner));
  }
  void Exec(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  int64_t Count(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  Database db_;
  MemgraphEmulator* mg_ = nullptr;
};

TEST_F(MemgraphEmulatorTest, BeforeCommitRunsInsideTransaction) {
  ASSERT_TRUE(mg_->Install("log", translate::MgEventClass::kVertexCreate,
                           /*before_commit=*/true,
                           "UNWIND createdVertices AS v CREATE (:Log)")
                  .ok());
  const uint64_t commits_before = db_.committed_transactions();
  Exec("CREATE (:P), (:P)");
  // The trigger ran inside the same (single) transaction.
  EXPECT_EQ(db_.committed_transactions(), commits_before + 1);
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 2);
}

TEST_F(MemgraphEmulatorTest, AfterCommitRunsInNewTransaction) {
  ASSERT_TRUE(mg_->Install("log", translate::MgEventClass::kVertexCreate,
                           /*before_commit=*/false,
                           "UNWIND createdVertices AS v CREATE (:Log)")
                  .ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (l:Log) RETURN COUNT(*) AS c"), 1);
  EXPECT_GE(db_.committed_transactions(), 2u);
}

TEST_F(MemgraphEmulatorTest, EventClassDispatch) {
  ASSERT_TRUE(mg_->Install("nodes", translate::MgEventClass::kVertexCreate,
                           true, "CREATE (:NodeEvent)")
                  .ok());
  ASSERT_TRUE(mg_->Install("edges", translate::MgEventClass::kEdgeCreate,
                           true, "CREATE (:EdgeEvent)")
                  .ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (e:NodeEvent) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(Count("MATCH (e:EdgeEvent) RETURN COUNT(*) AS c"), 0);
  Exec("MATCH (p:P) CREATE (p)-[:R]->(:Q)");
  // The second statement created a node AND an edge.
  EXPECT_EQ(Count("MATCH (e:EdgeEvent) RETURN COUNT(*) AS c"), 1);
  EXPECT_EQ(mg_->fired("nodes"), 2u);
}

TEST_F(MemgraphEmulatorTest, UpdateClassCoversPropsAndLabels) {
  Exec("CREATE (:P {v: 1})");
  ASSERT_TRUE(mg_->Install("upd", translate::MgEventClass::kVertexUpdate,
                           true,
                           "UNWIND setVertexProperties AS sp "
                           "CREATE (:PropChange {key: sp.key, old: sp.old, "
                           "new: sp.new})")
                  .ok());
  Exec("MATCH (p:P) SET p.v = 2");
  EXPECT_EQ(Count("MATCH (c:PropChange {key: 'v', old: 1, new: 2}) "
                  "RETURN COUNT(*) AS c"),
            1);
}

TEST_F(MemgraphEmulatorTest, TriggersDoNotCascade) {
  ASSERT_TRUE(mg_->Install("selffeed",
                           translate::MgEventClass::kVertexCreate, false,
                           "UNWIND createdVertices AS v CREATE (:P)")
                  .ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 2);
  EXPECT_EQ(mg_->fired("selffeed"), 1u);
}

TEST_F(MemgraphEmulatorTest, CreationOrderNotAlphabetical) {
  // Unlike APOC's 'before' phase, Memgraph runs triggers in creation
  // order: "zeta" (installed first) runs before "alpha".
  ASSERT_TRUE(mg_->Install("zeta", translate::MgEventClass::kVertexCreate,
                           true, "CREATE (:ZetaMark)")
                  .ok());
  ASSERT_TRUE(mg_->Install("alpha", translate::MgEventClass::kVertexCreate,
                           true,
                           "MATCH (m:ZetaMark) CREATE (:AlphaSawZeta)")
                  .ok());
  Exec("CREATE (:P)");
  EXPECT_EQ(Count("MATCH (a:AlphaSawZeta) RETURN COUNT(*) AS c"), 1);
}

TEST_F(ApocEmulatorTest, BeforePhaseFailureAbortsUserTransaction) {
  // A 'before'-phase trigger failure happens at the commit point of the
  // user transaction: everything rolls back.
  ASSERT_TRUE(apoc_->Install("boom", "CREATE (:X {v: 1 / 0})", "before")
                  .ok());
  auto st = db_.Execute("CREATE (:P)").status();
  EXPECT_FALSE(st.ok());
  ASSERT_TRUE(apoc_->Drop("boom").ok());
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 0);
}

TEST_F(ApocEmulatorTest, AfterAsyncFailureLeavesUserCommitIntact) {
  // afterAsync runs post-commit: its failure cannot undo the user's work.
  ASSERT_TRUE(apoc_->Install("boom", "CREATE (:X {v: 1 / 0})", "afterAsync")
                  .ok());
  auto st = db_.Execute("CREATE (:P)").status();
  EXPECT_FALSE(st.ok());  // surfaced, but...
  ASSERT_TRUE(apoc_->Drop("boom").ok());
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 1);  // ...durable
  EXPECT_EQ(Count("MATCH (x:X) RETURN COUNT(*) AS c"), 0);
}

TEST_F(MemgraphEmulatorTest, BeforeCommitFailureAbortsUserTransaction) {
  ASSERT_TRUE(mg_->Install("boom", translate::MgEventClass::kVertexCreate,
                           /*before_commit=*/true,
                           "CREATE (:X {v: 1 / 0})")
                  .ok());
  auto st = db_.Execute("CREATE (:P)").status();
  EXPECT_FALSE(st.ok());
  ASSERT_TRUE(mg_->Drop("boom").ok());
  EXPECT_EQ(Count("MATCH (n) RETURN COUNT(*) AS c"), 0);
}

TEST_F(MemgraphEmulatorTest, AfterCommitFailureLeavesUserCommitIntact) {
  ASSERT_TRUE(mg_->Install("boom", translate::MgEventClass::kVertexCreate,
                           /*before_commit=*/false,
                           "CREATE (:X {v: 1 / 0})")
                  .ok());
  auto st = db_.Execute("CREATE (:P)").status();
  EXPECT_FALSE(st.ok());
  ASSERT_TRUE(mg_->Drop("boom").ok());
  EXPECT_EQ(Count("MATCH (p:P) RETURN COUNT(*) AS c"), 1);
}

TEST_F(MemgraphEmulatorTest, InstallRejectsBadCypherAndDuplicates) {
  EXPECT_EQ(mg_->Install("t", translate::MgEventClass::kAny, true,
                         "NOT CYPHER AT ALL")
                .code(),
            StatusCode::kSyntaxError);
  ASSERT_TRUE(
      mg_->Install("t", translate::MgEventClass::kAny, true, "RETURN 1")
          .ok());
  EXPECT_EQ(mg_->Install("t", translate::MgEventClass::kAny, true,
                         "RETURN 1")
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(mg_->Drop("missing").code(), StatusCode::kNotFound);
}

TEST_F(MemgraphEmulatorTest, PredefinedVarsExposeTable4Shapes) {
  GraphStore& store = db_.store();
  GraphDelta delta;
  NodeId n = store.CreateNode({store.InternLabel("A")}, {});
  delta.created_nodes.push_back(n);
  delta.removed_node_props.push_back(NodePropChange{
      n, store.InternPropKey("p"), Value::Int(3), Value::Null()});
  delta.assigned_labels.push_back(
      LabelChange{n, store.InternLabel("Extra")});
  cypher::Row row =
      MemgraphEmulator::BuildPredefinedVars(delta, StoreView::Live(store));
  EXPECT_EQ(row.Get("createdVertices")->list_value().size(), 1u);
  EXPECT_EQ(row.Get("createdObjects")->list_value().size(), 1u);
  EXPECT_EQ(row.Get("removedVertexProperties")->list_value().size(), 1u);
  EXPECT_EQ(row.Get("setVertexLabels")->list_value().size(), 1u);
  // updatedVertices folds property and label updates together.
  EXPECT_EQ(row.Get("updatedVertices")->list_value().size(), 2u);
  EXPECT_EQ(row.Get("deletedEdges")->list_value().size(), 0u);
  // All fifteen Table 4 variables are bound.
  EXPECT_EQ(row.cols.size(), 15u);
}

}  // namespace
}  // namespace pgt::emul
