// Trigger catalog tests: install-time legality rules (Section 4.2) and
// execution ordering (creation time vs PostgreSQL-style name order).

#include "src/trigger/catalog.h"

#include <gtest/gtest.h>

#include "src/trigger/trigger_parser.h"

namespace pgt {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  TriggerDef Parse(const std::string& ddl) {
    auto r = TriggerDdlParser::ParseCreate(ddl);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }
  Status Install(const std::string& ddl) {
    return catalog_.Install(Parse(ddl));
  }

  EngineOptions options_;
  TriggerCatalog catalog_{&options_};
};

TEST_F(CatalogTest, InstallAndFind) {
  ASSERT_TRUE(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                      "BEGIN CREATE (:A) END")
                  .ok());
  ASSERT_NE(catalog_.Find("T"), nullptr);
  EXPECT_EQ(catalog_.Find("T")->seq, 1u);
  EXPECT_EQ(catalog_.size(), 1u);
  EXPECT_EQ(catalog_.Find("Missing"), nullptr);
}

TEST_F(CatalogTest, DuplicateNameRejected) {
  ASSERT_TRUE(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                      "BEGIN CREATE (:A) END")
                  .ok());
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER DELETE ON 'M' FOR EACH NODE "
                    "BEGIN CREATE (:B) END")
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, DropAndDisable) {
  ASSERT_TRUE(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                      "BEGIN CREATE (:A) END")
                  .ok());
  ASSERT_TRUE(catalog_.SetEnabled("T", false).ok());
  EXPECT_TRUE(catalog_.ByTime(ActionTime::kAfter).empty());
  ASSERT_TRUE(catalog_.SetEnabled("T", true).ok());
  EXPECT_EQ(catalog_.ByTime(ActionTime::kAfter).size(), 1u);
  ASSERT_TRUE(catalog_.Drop("T").ok());
  EXPECT_EQ(catalog_.Drop("T").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, PropertyMonitorRequiresSetOrRemove) {
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER CREATE ON 'L'.'p' FOR EACH "
                    "NODE BEGIN CREATE (:A) END")
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_TRUE(Install("CREATE TRIGGER T2 AFTER SET ON 'L'.'p' FOR EACH "
                      "NODE BEGIN CREATE (:A) END")
                  .ok());
}

TEST_F(CatalogTest, RelationshipLabelEventsRejected) {
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER SET ON 'R' FOR EACH "
                    "RELATIONSHIP BEGIN CREATE (:A) END")
                .code(),
            StatusCode::kConstraintViolation);
  // Property events on relationships are fine.
  EXPECT_TRUE(Install("CREATE TRIGGER T2 AFTER SET ON 'R'.'w' FOR EACH "
                      "RELATIONSHIP BEGIN CREATE (:A) END")
                  .ok());
}

TEST_F(CatalogTest, StatementMayNotTouchTargetLabel) {
  // Section 4.2: the target label cannot be set or removed in the action.
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                    "BEGIN MATCH (n:M) SET n:L END")
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                    "BEGIN MATCH (n:L) REMOVE n:L END")
                .code(),
            StatusCode::kConstraintViolation);
  // Inside FOREACH too.
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                    "BEGIN FOREACH (x IN [NEW] | SET x:L) END")
                .code(),
            StatusCode::kConstraintViolation);
  // Other labels are fine.
  EXPECT_TRUE(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                      "BEGIN MATCH (n:M) SET n:Other END")
                  .ok());
}

TEST_F(CatalogTest, WhenPipelineMustBeReadOnly) {
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                    "WHEN MATCH (n:M) CREATE (:Side) "
                    "BEGIN CREATE (:A) END")
                .code(),
            StatusCode::kConstraintViolation);
}

TEST_F(CatalogTest, BeforeTriggersOnlySetProperties) {
  EXPECT_TRUE(Install("CREATE TRIGGER B1 BEFORE CREATE ON 'L' FOR EACH "
                      "NODE BEGIN SET NEW.normalized = true END")
                  .ok());
  EXPECT_EQ(Install("CREATE TRIGGER B2 BEFORE CREATE ON 'L' FOR EACH NODE "
                    "BEGIN CREATE (:Side) END")
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Install("CREATE TRIGGER B3 BEFORE CREATE ON 'L' FOR EACH NODE "
                    "BEGIN SET NEW:Extra END")
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Install("CREATE TRIGGER B4 BEFORE DELETE ON 'L' FOR EACH NODE "
                    "BEGIN SET OLD.x = 1 END")
                .code(),
            StatusCode::kConstraintViolation);
}

TEST_F(CatalogTest, ReferencingMustMatchGranularityAndItem) {
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER CREATE ON 'L' "
                    "REFERENCING NEWNODES AS xs FOR EACH NODE "
                    "BEGIN CREATE (:A) END")
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER CREATE ON 'L' "
                    "REFERENCING NEW AS x FOR ALL NODES "
                    "BEGIN CREATE (:A) END")
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Install("CREATE TRIGGER T AFTER CREATE ON 'R' "
                    "REFERENCING NEWNODES AS xs FOR ALL RELATIONSHIPS "
                    "BEGIN CREATE (:A) END")
                .code(),
            StatusCode::kConstraintViolation);
  EXPECT_TRUE(Install("CREATE TRIGGER T AFTER CREATE ON 'R' "
                      "REFERENCING NEWRELS AS xs FOR ALL RELATIONSHIPS "
                      "BEGIN CREATE (:A) END")
                  .ok());
}

TEST_F(CatalogTest, ByTimeFiltersAndOrdersByCreation) {
  ASSERT_TRUE(Install("CREATE TRIGGER Zeta AFTER CREATE ON 'L' FOR EACH "
                      "NODE BEGIN CREATE (:A) END")
                  .ok());
  ASSERT_TRUE(Install("CREATE TRIGGER Alpha AFTER CREATE ON 'L' FOR EACH "
                      "NODE BEGIN CREATE (:A) END")
                  .ok());
  ASSERT_TRUE(Install("CREATE TRIGGER Mid ONCOMMIT CREATE ON 'L' FOR EACH "
                      "NODE BEGIN CREATE (:A) END")
                  .ok());
  auto after = catalog_.ByTime(ActionTime::kAfter);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0]->name, "Zeta");  // creation order, not alphabetical
  EXPECT_EQ(after[1]->name, "Alpha");
  EXPECT_EQ(catalog_.ByTime(ActionTime::kOnCommit).size(), 1u);
  EXPECT_TRUE(catalog_.ByTime(ActionTime::kDetached).empty());
}

TEST_F(CatalogTest, NameOrderingOption) {
  options_.trigger_ordering = TriggerOrdering::kName;
  ASSERT_TRUE(Install("CREATE TRIGGER Zeta AFTER CREATE ON 'L' FOR EACH "
                      "NODE BEGIN CREATE (:A) END")
                  .ok());
  ASSERT_TRUE(Install("CREATE TRIGGER Alpha AFTER CREATE ON 'L' FOR EACH "
                      "NODE BEGIN CREATE (:A) END")
                  .ok());
  auto after = catalog_.ByTime(ActionTime::kAfter);
  EXPECT_EQ(after[0]->name, "Alpha");  // PostgreSQL-style
}

TEST_F(CatalogTest, DropAllClearsEverything) {
  ASSERT_TRUE(Install("CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
                      "BEGIN CREATE (:A) END")
                  .ok());
  catalog_.DropAll();
  EXPECT_EQ(catalog_.size(), 0u);
}

}  // namespace
}  // namespace pgt
