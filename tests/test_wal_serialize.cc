// Round-trip property tests for the WAL binary codecs (src/wal/serialize,
// src/wal/wal_format, src/wal/snapshot_file): every Value shape — SSO
// boundary strings included — plus PropMap, GraphDelta, commit/DDL record
// payloads, record framing with checksum verification, and the snapshot
// file format. The round-trip property checked is byte-level:
// encode(decode(encode(v))) == encode(v), which sidesteps Value::Equals'
// numeric coercion (1 == 1.0) and NaN != NaN.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/tx/delta.h"
#include "src/wal/crc32c.h"
#include "src/wal/serialize.h"
#include "src/wal/snapshot_file.h"
#include "src/wal/wal_format.h"

namespace pgt::wal {
namespace {

std::string EncodeValue(const Value& v) {
  Encoder enc;
  enc.PutValue(v);
  return enc.Take();
}

/// Byte-exact round trip: decode must consume everything, and re-encoding
/// the decoded value must reproduce the input bytes.
void ExpectValueRoundTrip(const Value& v) {
  const std::string bytes = EncodeValue(v);
  Decoder dec(bytes);
  Value out;
  ASSERT_TRUE(dec.GetValue(&out).ok()) << v.ToString();
  EXPECT_TRUE(dec.AtEnd()) << v.ToString();
  EXPECT_EQ(EncodeValue(out), bytes) << v.ToString();
}

TEST(WalValueCodec, Scalars) {
  ExpectValueRoundTrip(Value::Null());
  ExpectValueRoundTrip(Value::Bool(true));
  ExpectValueRoundTrip(Value::Bool(false));
  ExpectValueRoundTrip(Value::Int(0));
  ExpectValueRoundTrip(Value::Int(-1));
  ExpectValueRoundTrip(Value::Int(std::numeric_limits<int64_t>::min()));
  ExpectValueRoundTrip(Value::Int(std::numeric_limits<int64_t>::max()));
  ExpectValueRoundTrip(Value::MakeDate(19000));
  ExpectValueRoundTrip(Value::MakeDate(-1));
  ExpectValueRoundTrip(Value::MakeDateTime(1700000000000000));
  ExpectValueRoundTrip(Value::Node(NodeId{0}));
  ExpectValueRoundTrip(Value::Node(NodeId{~0ull}));
  ExpectValueRoundTrip(Value::Rel(RelId{42}));
}

TEST(WalValueCodec, DoublesIncludingNanAndSignedZero) {
  ExpectValueRoundTrip(Value::Double(0.0));
  ExpectValueRoundTrip(Value::Double(-0.0));
  ExpectValueRoundTrip(Value::Double(1.5));
  ExpectValueRoundTrip(Value::Double(-2.75e300));
  ExpectValueRoundTrip(Value::Double(std::numeric_limits<double>::infinity()));
  ExpectValueRoundTrip(
      Value::Double(-std::numeric_limits<double>::infinity()));
  ExpectValueRoundTrip(
      Value::Double(std::numeric_limits<double>::quiet_NaN()));
  ExpectValueRoundTrip(Value::Double(std::numeric_limits<double>::min()));
  ExpectValueRoundTrip(Value::Double(std::numeric_limits<double>::denorm_min()));

  // -0.0 and +0.0 compare equal but must encode differently (bit pattern).
  EXPECT_NE(EncodeValue(Value::Double(0.0)), EncodeValue(Value::Double(-0.0)));
}

TEST(WalValueCodec, StringsAcrossSsoBoundary) {
  ExpectValueRoundTrip(Value::String(""));
  ExpectValueRoundTrip(Value::String("a"));
  // kSsoCapacity is 16: check lengths straddling the inline/heap switch.
  for (size_t len : {15u, 16u, 17u, 64u, 4096u}) {
    ExpectValueRoundTrip(Value::String(std::string(len, 'x')));
  }
  ExpectValueRoundTrip(Value::String(std::string("emb\0edded", 9)));
  ExpectValueRoundTrip(Value::String("ünïcødé \xF0\x9F\x8E\x89"));
}

TEST(WalValueCodec, ListsAndMapsNested) {
  ExpectValueRoundTrip(Value::MakeList({}));
  ExpectValueRoundTrip(Value::MakeList({Value::Int(1), Value::Null(),
                                        Value::String("three")}));
  ExpectValueRoundTrip(Value::MakeMap({}));
  Value::Map m;
  m.emplace("a", Value::Int(1));
  m.emplace("nested", Value::MakeList({Value::MakeList({Value::Bool(true)}),
                                       Value::Double(-0.0)}));
  Value::Map inner;
  inner.emplace("deep", Value::MakeMap({}));
  m.emplace("m", Value::MakeMap(std::move(inner)));
  ExpectValueRoundTrip(Value::MakeMap(std::move(m)));
}

TEST(WalValueCodec, PropMapRoundTrip) {
  PropMap props;
  props.Set(7, Value::String("seven"));
  props.Set(0, Value::Int(0));
  props.Set(3, Value::MakeList({Value::Null()}));
  Encoder enc;
  enc.PutPropMap(props);
  const std::string bytes = enc.Take();

  Decoder dec(bytes);
  PropMap out;
  ASSERT_TRUE(dec.GetPropMap(&out).ok());
  EXPECT_TRUE(dec.AtEnd());
  Encoder re;
  re.PutPropMap(out);
  EXPECT_EQ(re.buffer(), bytes);
}

GraphDelta MakeBusyDelta() {
  GraphDelta d;
  d.created_nodes = {NodeId{3}, NodeId{4}};
  d.created_rels = {RelId{9}};
  DeletedNodeImage dn;
  dn.id = NodeId{1};
  dn.labels = {2, 5};
  dn.props.Set(1, Value::String("ghost"));
  d.deleted_nodes.push_back(std::move(dn));
  DeletedRelImage dr;
  dr.id = RelId{0};
  dr.type = 4;
  dr.src = NodeId{1};
  dr.dst = NodeId{2};
  d.deleted_rels.push_back(std::move(dr));
  d.assigned_labels.push_back(LabelChange{NodeId{2}, 7});
  d.removed_labels.push_back(LabelChange{NodeId{2}, 1});
  d.assigned_node_props.push_back(
      NodePropChange{NodeId{2}, 3, Value::Null(), Value::Int(8)});
  d.removed_node_props.push_back(
      NodePropChange{NodeId{2}, 4, Value::Double(1.5), Value::Null()});
  d.assigned_rel_props.push_back(
      RelPropChange{RelId{9}, 3, Value::Bool(false), Value::Bool(true)});
  d.removed_rel_props.push_back(
      RelPropChange{RelId{9}, 2, Value::String("x"), Value::Null()});
  return d;
}

std::string EncodeDelta(const GraphDelta& d) {
  Encoder enc;
  enc.PutDelta(d);
  return enc.Take();
}

TEST(WalDeltaCodec, EmptyAndBusyDeltaRoundTrip) {
  for (const GraphDelta& d : {GraphDelta{}, MakeBusyDelta()}) {
    const std::string bytes = EncodeDelta(d);
    Decoder dec(bytes);
    GraphDelta out;
    ASSERT_TRUE(dec.GetDelta(&out).ok());
    EXPECT_TRUE(dec.AtEnd());
    EXPECT_EQ(EncodeDelta(out), bytes);
  }
}

TEST(WalDeltaCodec, TruncatedInputFailsCleanly) {
  const std::string bytes = EncodeDelta(MakeBusyDelta());
  // Every proper prefix must fail with a Status, never read out of bounds.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Decoder dec(std::string_view(bytes).substr(0, cut));
    GraphDelta out;
    Status s = dec.GetDelta(&out);
    // A prefix that happens to parse completely must at least stop in
    // bounds; most cuts yield an explicit decode error.
    if (s.ok()) EXPECT_LE(dec.position(), cut);
  }
}

// --- Record payloads ---------------------------------------------------------

WalCommit MakeCommit() {
  WalCommit c;
  c.epoch = 12;
  c.committed_after = 34;
  c.clock_after = 5600;
  c.dicts.label_base = 1;
  c.dicts.labels = {"Person"};
  c.dicts.prop_key_base = 2;
  c.dicts.prop_keys = {"name", "age"};
  WalNodeCreate nc;
  nc.id = NodeId{5};
  nc.labels = {0, 1};
  nc.props.Set(2, Value::String("Ada"));
  c.node_creates.push_back(std::move(nc));
  WalRelCreate rc;
  rc.id = RelId{2};
  rc.type = 0;
  rc.src = NodeId{5};
  rc.dst = NodeId{0};
  c.rel_creates.push_back(std::move(rc));
  WalNodeUpdate nu;
  nu.id = NodeId{0};
  nu.labels = {0};
  nu.props.Set(3, Value::Int(41));
  c.node_updates.push_back(std::move(nu));
  WalRelUpdate ru;
  ru.id = RelId{0};
  c.rel_updates.push_back(std::move(ru));
  c.rel_deletes = {RelId{1}};
  c.node_deletes = {NodeId{3}};
  return c;
}

TEST(WalRecordCodec, CommitPayloadRoundTrip) {
  const WalCommit c = MakeCommit();
  const std::string payload = EncodeCommitPayload(c);
  WalCommit out;
  ASSERT_TRUE(DecodeCommitPayload(payload, &out).ok());
  EXPECT_EQ(EncodeCommitPayload(out), payload);
  EXPECT_EQ(out.epoch, 12u);
  EXPECT_EQ(out.committed_after, 34u);
  EXPECT_EQ(out.clock_after, 5600);
  ASSERT_EQ(out.node_creates.size(), 1u);
  EXPECT_EQ(out.node_creates[0].id, NodeId{5});
  ASSERT_EQ(out.dicts.prop_keys.size(), 2u);
  EXPECT_EQ(out.dicts.prop_keys[1], "age");
}

TEST(WalRecordCodec, CommitPayloadRejectsTrailingBytes) {
  std::string payload = EncodeCommitPayload(MakeCommit());
  payload.push_back('\0');
  WalCommit out;
  EXPECT_FALSE(DecodeCommitPayload(payload, &out).ok());
}

TEST(WalRecordCodec, DdlPayloadRoundTrip) {
  WalDdl d;
  d.kind = WalDdlKind::kIndexDdl;
  d.text = "CREATE INDEX ON :Person(name)";
  d.dicts.label_base = 3;
  d.dicts.labels = {"Person"};
  const std::string payload = EncodeDdlPayload(d);
  WalDdl out;
  ASSERT_TRUE(DecodeDdlPayload(payload, &out).ok());
  EXPECT_EQ(out.kind, WalDdlKind::kIndexDdl);
  EXPECT_EQ(out.text, d.text);
  EXPECT_EQ(EncodeDdlPayload(out), payload);
}

// --- Framing -----------------------------------------------------------------

TEST(WalFraming, RoundTripAndOffsets) {
  std::string buf(kSegmentHeaderSize, '\0');  // fake header region
  AppendFramedRecord(&buf, "first");
  AppendFramedRecord(&buf, "second record");

  size_t off = kSegmentHeaderSize;
  std::string_view payload;
  ASSERT_TRUE(ReadFramedRecord(buf, &off, &payload).ok());
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(ReadFramedRecord(buf, &off, &payload).ok());
  EXPECT_EQ(payload, "second record");
  EXPECT_EQ(off, buf.size());
}

TEST(WalFraming, EveryBitFlipIsDetected) {
  std::string buf;
  AppendFramedRecord(&buf, "payload under test");
  for (size_t bit = 0; bit < buf.size() * 8; ++bit) {
    std::string corrupt = buf;
    corrupt[bit / 8] = static_cast<char>(corrupt[bit / 8] ^ (1 << (bit % 8)));
    size_t off = 0;
    std::string_view payload;
    Status s = ReadFramedRecord(corrupt, &off, &payload);
    // A flip may survive framing only by landing in the length field AND
    // producing a longer-than-buffer read — which reports torn, also a
    // failure. Nothing may decode successfully.
    EXPECT_FALSE(s.ok()) << "bit " << bit;
  }
}

TEST(WalFraming, ShortTailReportsTorn) {
  std::string buf;
  AppendFramedRecord(&buf, "abcdefgh");
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    size_t off = 0;
    std::string_view payload;
    Status s =
        ReadFramedRecord(std::string_view(buf).substr(0, cut), &off, &payload);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.message().rfind("torn:", 0), 0u) << "cut " << cut;
  }
}

TEST(WalFraming, EmptyRecordIsRejected) {
  // A zero-length frame carries the (valid!) CRC of the empty string, but
  // no real record is empty — the type byte is mandatory. The reader must
  // reject it rather than hand back a payload with no first byte.
  std::string buf;
  AppendFramedRecord(&buf, "");
  size_t off = 0;
  std::string_view payload;
  Status s = ReadFramedRecord(buf, &off, &payload);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message().rfind("torn:", 0), 0u);
}

TEST(WalCrc32c, KnownVectors) {
  // RFC 3720 / common Castagnoli verification vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  const uint32_t c = Crc32c("hello", 5);
  EXPECT_EQ(UnmaskCrc(MaskCrc(c)), c);
  EXPECT_NE(MaskCrc(c), c);
}

// --- Snapshot file -----------------------------------------------------------

TEST(WalSnapshotFile, RoundTrip) {
  SnapshotImage img;
  img.first_live_seq = 7;
  img.wal_epoch = 123;
  img.committed_count = 456;
  img.clock_micros = 789;
  img.labels = {"A", "B"};
  img.rel_types = {"R"};
  img.prop_keys = {"p", "q", "r"};
  img.nodes.resize(3);
  img.nodes[0].alive = true;
  img.nodes[0].labels = {0, 1};
  img.nodes[0].props.Set(0, Value::String("n0"));
  img.nodes[2].alive = true;  // node 1 stays a tombstone placeholder
  img.rels.resize(2);
  img.rels[1].alive = true;
  img.rels[1].type = 0;
  img.rels[1].src = NodeId{0};
  img.rels[1].dst = NodeId{2};
  img.rels[1].props.Set(2, Value::Double(2.5));
  img.indexes.push_back(SnapshotIndexSpec{"A", "p", 0, true, true});
  img.schema_ddl = "CREATE GRAPH TYPE G { (PersonType: Person {name STRING}) }";
  img.triggers.push_back(SnapshotTrigger{"CREATE TRIGGER T ...", false});

  const std::string bytes = EncodeSnapshot(img);
  SnapshotImage out;
  ASSERT_TRUE(DecodeSnapshot(bytes, &out).ok());
  EXPECT_EQ(EncodeSnapshot(out), bytes);
  EXPECT_EQ(out.first_live_seq, 7u);
  EXPECT_EQ(out.wal_epoch, 123u);
  ASSERT_EQ(out.nodes.size(), 3u);
  EXPECT_FALSE(out.nodes[1].alive);
  ASSERT_EQ(out.triggers.size(), 1u);
  EXPECT_FALSE(out.triggers[0].enabled);
}

TEST(WalSnapshotFile, CorruptionRejected) {
  SnapshotImage img;
  img.labels = {"A"};
  std::string bytes = EncodeSnapshot(img);
  SnapshotImage out;
  // Truncations.
  for (size_t cut : {0u, 4u, 11u}) {
    EXPECT_FALSE(
        DecodeSnapshot(std::string_view(bytes).substr(0, cut), &out).ok());
  }
  // Any single bit flip fails the whole-file checksum (or the magic).
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_FALSE(DecodeSnapshot(corrupt, &out).ok()) << "byte " << i;
  }
}

}  // namespace
}  // namespace pgt::wal
