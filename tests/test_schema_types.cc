// Parameterized conformance matrix: every PropType against every Value
// shape (the PG-Schema typing lattice), plus PropTypeName stability.

#include <gtest/gtest.h>

#include "src/schema/pg_schema.h"

namespace pgt::schema {
namespace {

struct Shape {
  const char* name;
  Value value;
};

std::vector<Shape> Shapes() {
  return {
      {"string", Value::String("abc")},
      {"char", Value::String("x")},
      {"empty-string", Value::String("")},
      {"int", Value::Int(7)},
      {"double", Value::Double(2.5)},
      {"bool", Value::Bool(true)},
      {"date", Value::MakeDate(100)},
      {"datetime", Value::MakeDateTime(1)},
      {"string-list", Value::MakeList({Value::String("a")})},
      {"int-list", Value::MakeList({Value::Int(1)})},
      {"empty-list", Value::MakeList({})},
      {"map", Value::MakeMap({{"k", Value::Int(1)}})},
      {"node", Value::Node(NodeId{0})},
  };
}

// Expected conformance: rows = PropType, cols = the shapes above.
struct MatrixRow {
  PropType type;
  std::vector<bool> accepts;  // aligned with Shapes()
};

std::vector<MatrixRow> Matrix() {
  // Columns:         str    chr    empty  int    dbl    bool   date
  //                  dtime  slist  ilist  elist  map    node
  return {
      {PropType::kString,
       {true, true, true, false, false, false, false, false, false, false,
        false, false, false}},
      {PropType::kChar,
       {false, true, false, false, false, false, false, false, false,
        false, false, false, false}},
      {PropType::kInt,
       {false, false, false, true, false, false, false, false, false,
        false, false, false, false}},
      // kDouble accepts any numeric (widening), matching Figure 4 usage.
      {PropType::kDouble,
       {false, false, false, true, true, false, false, false, false, false,
        false, false, false}},
      {PropType::kBool,
       {false, false, false, false, false, true, false, false, false,
        false, false, false, false}},
      // kDate accepts date values and ISO-ish strings (import paths).
      {PropType::kDate,
       {true, true, true, false, false, false, true, false, false, false,
        false, false, false}},
      // kDateTime accepts datetime values and raw micros.
      {PropType::kDateTime,
       {false, false, false, true, false, false, false, true, false, false,
        false, false, false}},
      {PropType::kStringArray,
       {false, false, false, false, false, false, false, false, true,
        false, true, false, false}},
      {PropType::kAny,
       {true, true, true, true, true, true, true, true, true, true, true,
        true, true}},
  };
}

class ConformanceMatrix : public ::testing::TestWithParam<int> {};

TEST_P(ConformanceMatrix, RowMatchesSpec) {
  const MatrixRow row = Matrix()[static_cast<size_t>(GetParam())];
  const std::vector<Shape> shapes = Shapes();
  ASSERT_EQ(row.accepts.size(), shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    EXPECT_EQ(ValueConformsTo(shapes[i].value, row.type), row.accepts[i])
        << PropTypeName(row.type) << " vs " << shapes[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ConformanceMatrix,
                         ::testing::Range(0, 9));

TEST(PropTypeTest, NamesAreStable) {
  EXPECT_STREQ(PropTypeName(PropType::kString), "STRING");
  EXPECT_STREQ(PropTypeName(PropType::kInt), "INT32");
  EXPECT_STREQ(PropTypeName(PropType::kStringArray), "ARRAY[STRING]");
}

TEST(PropTypeTest, NullNeverConforms) {
  // NULL means "absent"; presence checks are handled by OPTIONAL, not by
  // the type lattice.
  for (int t = 0; t < 8; ++t) {
    EXPECT_FALSE(ValueConformsTo(Value::Null(), static_cast<PropType>(t)))
        << PropTypeName(static_cast<PropType>(t));
  }
}

}  // namespace
}  // namespace pgt::schema
