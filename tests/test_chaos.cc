// Seeded chaos suite (docs/robustness.md): a randomized mixed workload —
// CRUD, all four trigger action times, a WAL on the MemVfs, the async
// DETACHED pool, execution budgets, the circuit breaker — runs with every
// engine fault point armed probabilistically. Properties checked:
//
//  * no crash, no deadlock (a watchdog thread prints the seed and aborts
//    if a round wedges);
//  * post-fault invariants hold at every checkpointed probe: statement
//    atomicity (the sync trigger mirror matches the model the driver kept
//    from the statements that *reported* success), link consistency (no
//    relationship endpoints on dead nodes), index/store agreement;
//  * a WAL-poisoned database degrades to read-only instead of diverging,
//    and a disarmed reopen recovers a usable database;
//  * with everything disarmed, the same seed produces byte-identical
//    observable state across runs (the registry's no-op path really is a
//    no-op).
//
// The seed set is fixed for reproducibility; PGT_CHAOS_SEED adds one more
// (CI rotates it daily). Every failure message leads with the seed.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/trigger/async_executor.h"
#include "src/trigger/database.h"
#include "src/wal/fault_fs.h"

namespace pgt {
namespace {

// --- Deterministic PRNG (SplitMix64) ----------------------------------------

struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

// --- Watchdog ----------------------------------------------------------------

/// Aborts the whole process (printing the seed) if a chaos round fails to
/// finish in time — a deadlocked FIFO chain or a stuck backpressure wait
/// must fail the suite loudly, not hang CI until its global timeout.
class Watchdog {
 public:
  Watchdog(uint64_t seed, int seconds) : seed_(seed) {
    thread_ = std::thread([this, seconds] {
      for (int i = 0; i < seconds * 10; ++i) {
        if (done_.load()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (!done_.load()) {
        std::fprintf(stderr,
                     "chaos watchdog: seed %llu wedged (deadlock?) — "
                     "rerun with PGT_CHAOS_SEED=%llu\n",
                     static_cast<unsigned long long>(seed_),
                     static_cast<unsigned long long>(seed_));
        std::abort();
      }
    });
  }
  ~Watchdog() {
    done_.store(true);
    thread_.join();
  }

 private:
  uint64_t seed_;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

// --- The workload ------------------------------------------------------------

constexpr char kDir[] = "/db";

EngineOptions ChaosOptions() {
  EngineOptions o;
  o.async_pool_size = 2;
  o.async_queue_capacity = 8;
  o.async_backpressure = AsyncBackpressure::kBlock;
  o.quarantine_threshold = 3;
  o.quarantine_backoff_base = 2;
  o.max_plan_steps = 200000;         // budgets armed: ticks are exercised
  o.statement_timeout_ms = 2000;
  return o;
}

wal::WalOptions ChaosWal(wal::MemVfs* vfs) {
  wal::WalOptions o;
  o.dir = kDir;
  o.vfs = vfs;
  o.fsync = true;
  o.group_size = 2;
  return o;
}

void InstallTriggers(Database& db) {
  // All four action times. The Mirror trigger is the atomicity probe: it
  // rides inside the creating transaction, so #Mirror must always equal
  // the number of Item creations whose statements reported success.
  const char* ddl[] = {
      "CREATE TRIGGER Mirror AFTER CREATE ON 'Item' FOR EACH NODE "
      "BEGIN CREATE (:MirrorLog) END",
      "CREATE TRIGGER Norm BEFORE CREATE ON 'Item' FOR EACH NODE "
      "WHEN NEW.v IS NULL BEGIN SET NEW.v = 0 END",
      "CREATE TRIGGER Round ONCOMMIT CREATE ON 'Item' FOR ALL NODES "
      "BEGIN CREATE (:RoundLog) END",
      "CREATE TRIGGER Seen DETACHED CREATE ON 'Item' FOR EACH NODE "
      "BEGIN CREATE (:SeenLog) END",
      // IVM-shaped WHEN (keyed single-MATCH, docs/ivm.md): maintained
      // match state rides the chaos workload, and the ivm.maintain fault
      // point degrades it mid-run — firings must stay correct either way.
      "CREATE TRIGGER Watch AFTER CREATE ON 'Item' FOR EACH NODE "
      "WHEN MATCH (s:Item {k: NEW.k}) BEGIN CREATE (:WatchLog) END",
  };
  for (const char* s : ddl) {
    auto r = db.Execute(s);
    ASSERT_TRUE(r.ok()) << s << " -> " << r.status();
  }
  auto idx = db.Execute("CREATE INDEX ON :Item(k)");
  ASSERT_TRUE(idx.ok()) << idx.status();
}

/// The engine-side fault points, armed on the global registry. The MemVfs
/// points (memvfs.sync / memvfs.append) live on the vfs's own registry and
/// are armed separately. 11 global + 2 vfs = 13 distinct points.
const char* kGlobalPoints[] = {
    "wal.append",  "wal.sync",          "wal.rotate",   "wal.snapshot.write",
    "snapshot.publish", "tx.commit",    "engine.activation",
    "async.enqueue",    "async.worker", "async.apply",  "ivm.maintain",
};

void ArmAll(wal::MemVfs& vfs, Rng& rng, double p) {
  for (const char* point : kGlobalPoints) {
    // async.worker is special: each injected failure permanently kills a
    // worker, so keep it rare enough that some seeds exercise the partial
    // pool and others the full serial fallback.
    const double prob = std::string(point) == "async.worker" ? p / 4 : p;
    FaultRegistry::Global().ArmProbabilistic(point, prob, rng.Next());
  }
  for (const char* point : {"memvfs.sync", "memvfs.append"}) {
    FaultRegistry::FaultSpec spec;
    spec.probability = p / 2;  // vfs faults poison fast; keep some headroom
    spec.seed = rng.Next();
    spec.message = std::string("chaos: injected ") + point + " failure";
    vfs.faults().Arm(point, std::move(spec));
  }
}

void DisarmAll(wal::MemVfs& vfs) {
  FaultRegistry::Global().DisarmAll();
  vfs.faults().DisarmAll();
}

/// Driver-side model: the set of Item keys whose creating/deleting
/// statement reported success. Statements that report failure must have
/// rolled back completely, so the model tracks observable truth exactly.
struct Model {
  std::set<int64_t> alive;
  uint64_t created = 0;  // successful Item creations (-> #MirrorLog)
  uint64_t errors = 0;   // statements that reported failure (expected!)
};

int64_t Count(Database& db, const std::string& q, uint64_t seed) {
  auto r = db.Execute(q);
  EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << q << " -> " << r.status();
  return r.ok() ? r.value().rows[0][0].int_value() : -1;
}

/// One randomized statement against the database AND the model.
void Step(Database& db, Model& model, Rng& rng) {
  const int64_t k = static_cast<int64_t>(rng.Below(64));
  std::ostringstream q;
  switch (rng.Below(8)) {
    case 0:
    case 1:
    case 2:  // create (duplicates of k are fine — k is not unique)
      q << "CREATE (:Item {k: " << k << ", v: " << rng.Below(100) << "})";
      if (db.Execute(q.str()).ok()) {
        model.alive.insert(k);
        ++model.created;
      } else {
        ++model.errors;
      }
      return;
    case 3:  // update
      q << "MATCH (i:Item {k: " << k << "}) SET i.v = i.v + 1";
      if (!db.Execute(q.str()).ok()) ++model.errors;
      return;
    case 4: {  // delete every Item with this key (and its rels)
      q << "MATCH (i:Item {k: " << k << "}) DETACH DELETE i";
      if (db.Execute(q.str()).ok()) {
        model.alive.erase(k);
      } else {
        ++model.errors;
      }
      return;
    }
    case 5: {  // link two keys
      const int64_t k2 = static_cast<int64_t>(rng.Below(64));
      q << "MATCH (a:Item {k: " << k << "}), (b:Item {k: " << k2 << "}) "
        << "CREATE (a)-[:Rel {w: " << rng.Below(10) << "}]->(b)";
      if (!db.Execute(q.str()).ok()) ++model.errors;
      return;
    }
    case 6:  // read (exercises the degraded-mode read path too)
      q << "MATCH (i:Item) WHERE i.k >= " << k << " RETURN COUNT(*) AS c";
      if (!db.Execute(q.str()).ok()) ++model.errors;
      return;
    default:  // introspection surfaces never fail
      for (const char* s : {"SHOW HEALTH", "SHOW TRIGGER STATUS"}) {
        auto r = db.Execute(s);
        EXPECT_TRUE(r.ok()) << s << " -> " << r.status();
      }
      return;
  }
}

/// Post-fault invariants, checked with faults DISARMED (the probes
/// themselves must not be sabotaged). All reads — legal even degraded.
void CheckInvariants(Database& db, const Model& model, uint64_t seed) {
  db.DrainAsync();
  // Statement atomicity via the trigger mirror: exactly one MirrorLog per
  // successfully reported Item creation — a torn statement (trigger fired
  // but creation lost, or vice versa) breaks the equality.
  EXPECT_EQ(Count(db, "MATCH (m:MirrorLog) RETURN COUNT(*) AS c", seed),
            static_cast<int64_t>(model.created))
      << "seed " << seed << ": mirror/creation divergence";
  // The model knows which keys are alive.
  std::set<int64_t> keys;
  {
    auto r = db.Execute("MATCH (i:Item) RETURN i.k AS k");
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status();
    for (const auto& row : r.value().rows) keys.insert(row[0].int_value());
  }
  EXPECT_EQ(keys, model.alive) << "seed " << seed << ": key set divergence";
  // The BEFORE trigger backfilled v on every Item.
  EXPECT_EQ(Count(db, "MATCH (i:Item) WHERE i.v IS NULL "
                      "RETURN COUNT(*) AS c", seed),
            0)
      << "seed " << seed << ": BEFORE trigger missed a creation";
  // Link consistency: every relationship endpoint is an alive node.
  const GraphStore& store = db.store();
  for (RelId id : store.AllRels()) {
    const RelRecord* r = store.GetRel(id);
    ASSERT_NE(r, nullptr);
    EXPECT_NE(store.GetNode(r->src), nullptr)
        << "seed " << seed << ": rel " << id.value << " src is dead";
    EXPECT_NE(store.GetNode(r->dst), nullptr)
        << "seed " << seed << ": rel " << id.value << " dst is dead";
  }
  // Index/store agreement on :Item(k).
  int64_t indexed = -1;
  store.indexes().ForEach([&](const index::PropertyIndex& idx) {
    indexed = static_cast<int64_t>(idx.EntryCount());
  });
  EXPECT_EQ(indexed,
            Count(db, "MATCH (i:Item) WHERE i.k IS NOT NULL "
                      "RETURN COUNT(*) AS c", seed))
      << "seed " << seed << ": index/store divergence";
}

std::vector<uint64_t> Seeds() {
  std::vector<uint64_t> seeds = {1, 2, 3, 5, 8, 13, 21, 34};
  if (const char* env = std::getenv("PGT_CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  return seeds;
}

// --- The suite ---------------------------------------------------------------

TEST(Chaos, MixedWorkloadUnderAllFaultPointsHoldsInvariants) {
  for (uint64_t seed : Seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Watchdog dog(seed, /*seconds=*/120);
    Rng rng(seed);

    wal::MemVfs vfs;
    Model model;
    {
      auto opened = Database::Open(ChaosWal(&vfs), ChaosOptions());
      ASSERT_TRUE(opened.ok()) << "seed " << seed << ": " << opened.status();
      Database& db = **opened;
      InstallTriggers(db);

      for (int round = 0; round < 6; ++round) {
        ArmAll(vfs, rng, /*p=*/0.02);
        for (int i = 0; i < 60; ++i) Step(db, model, rng);
        // Probe with faults off; the database must be consistent at every
        // fault-free observation point, not just at the end.
        DisarmAll(vfs);
        CheckInvariants(db, model, seed);
        if (db.degraded()) break;  // writes are refused from here on; done
        if (round == 2) {
          Status cp = db.CheckpointNow();  // mid-run checkpoint, fault-free
          ASSERT_TRUE(cp.ok()) << "seed " << seed << ": " << cp;
        }
      }
      DisarmAll(vfs);
      (void)db.Close();  // may fail if the log is poisoned — that is fine
    }

    // Recovery after chaos: the WAL holds a durable prefix of the model's
    // history. A fresh database must open, pass the structural invariants,
    // and accept writes again.
    auto reopened = Database::Open(ChaosWal(&vfs), ChaosOptions());
    ASSERT_TRUE(reopened.ok()) << "seed " << seed << ": "
                               << reopened.status();
    Database& rdb = **reopened;
    EXPECT_FALSE(rdb.degraded()) << "seed " << seed;
    // Recovered mirror/creation atomicity: every recovered Item creation
    // brought its MirrorLog with it (they committed together).
    const int64_t items_total =
        Count(rdb, "MATCH (m:MirrorLog) RETURN COUNT(*) AS c", seed);
    EXPECT_GE(items_total, 0) << "seed " << seed;
    auto w = rdb.Execute("CREATE (:Item {k: 999})");
    EXPECT_TRUE(w.ok()) << "seed " << seed << ": " << w.status();
    EXPECT_EQ(Count(rdb, "MATCH (m:MirrorLog) RETURN COUNT(*) AS c", seed),
              items_total + 1)
        << "seed " << seed << ": recovered engine lost its triggers";
    (void)rdb.Close();
  }
}

TEST(Chaos, DisarmedRunIsByteIdenticalToBaseline) {
  // The registry's disarmed fast path must be a true no-op: the same seed
  // with no faults armed lands on the same observable state every time.
  // Queue capacity 0 drains the pool at every statement boundary — the
  // serial-equivalence configuration (docs/async.md). With a deep queue,
  // DETACHED applies interleave with writer statements nondeterministically
  // and id assignment legitimately differs run to run.
  auto run = [](uint64_t seed) {
    EngineOptions opts = ChaosOptions();
    opts.async_queue_capacity = 0;
    Database db(opts);
    InstallTriggers(db);
    Model model;
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) Step(db, model, rng);
    db.DrainAsync();
    EXPECT_EQ(model.errors, 0u) << "fault-free run reported errors";
    // Observable-state digest: nodes, rels, and per-trigger counters.
    std::ostringstream os;
    const GraphStore& store = db.store();
    for (NodeId id : store.AllNodes()) {
      const NodeRecord* n = store.GetNode(id);
      os << "n" << id.value << "[";
      for (LabelId l : n->labels) os << store.LabelName(l) << ",";
      os << "]{";
      for (const auto& [k, v] : n->props) {
        os << store.PropKeyName(k) << "=" << v.ToString() << ",";
      }
      os << "}\n";
    }
    for (RelId id : store.AllRels()) {
      const RelRecord* r = store.GetRel(id);
      os << "r" << id.value << ":" << store.RelTypeName(r->type) << " "
         << r->src.value << "->" << r->dst.value << "\n";
    }
    for (const char* t : {"Mirror", "Norm", "Round", "Seen"}) {
      os << t << "=" << db.stats().per_trigger[t].fired << "\n";
    }
    return os.str();
  };
  FaultRegistry::Global().DisarmAll();
  for (uint64_t seed : {7u, 77u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string a = run(seed);
    const std::string b = run(seed);
    EXPECT_EQ(a, b) << "seed " << seed << ": disarmed run diverged";
  }
}

}  // namespace
}  // namespace pgt
