// PG-Trigger DDL parser tests: the full Figure 1 grammar, including a
// parameterized sweep over <time> x <event> x <granularity> x <item>.

#include "src/trigger/trigger_parser.h"

#include <gtest/gtest.h>

#include "src/common/str_util.h"

namespace pgt {
namespace {

TriggerDef ParseOk(const std::string& ddl) {
  auto r = TriggerDdlParser::ParseCreate(ddl);
  EXPECT_TRUE(r.ok()) << ddl << "\n-> " << r.status();
  return r.ok() ? std::move(r).value() : TriggerDef{};
}

TEST(TriggerParserTest, MinimalTrigger) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
      "BEGIN CREATE (:Alert) END");
  EXPECT_EQ(def.name, "T");
  EXPECT_EQ(def.time, ActionTime::kAfter);
  EXPECT_EQ(def.event, TriggerEvent::kCreate);
  EXPECT_EQ(def.label, "L");
  EXPECT_TRUE(def.property.empty());
  EXPECT_EQ(def.granularity, Granularity::kEach);
  EXPECT_EQ(def.item, ItemKind::kNode);
  EXPECT_FALSE(def.HasWhen());
  EXPECT_EQ(def.statement.clauses.size(), 1u);
}

TEST(TriggerParserTest, IsTriggerDdlDetection) {
  EXPECT_TRUE(TriggerDdlParser::IsTriggerDdl("CREATE TRIGGER x ..."));
  EXPECT_TRUE(TriggerDdlParser::IsTriggerDdl("  create trigger x"));
  EXPECT_TRUE(TriggerDdlParser::IsTriggerDdl("DROP TRIGGER x"));
  EXPECT_TRUE(TriggerDdlParser::IsTriggerDdl("ALTER TRIGGER x DISABLE"));
  EXPECT_FALSE(TriggerDdlParser::IsTriggerDdl("CREATE (n:Trigger)"));
  EXPECT_FALSE(TriggerDdlParser::IsTriggerDdl("MATCH (n) RETURN n"));
}

TEST(TriggerParserTest, PropertyMonitor) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER SET ON 'Lineage'.'whoDesignation' "
      "FOR EACH NODE WHEN OLD.whoDesignation <> NEW.whoDesignation "
      "BEGIN CREATE (:Alert) END");
  EXPECT_EQ(def.label, "Lineage");
  EXPECT_EQ(def.property, "whoDesignation");
  EXPECT_NE(def.when_expr, nullptr);
}

TEST(TriggerParserTest, BareIdentifierLabels) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER DELETE ON Person FOR EACH NODE "
      "BEGIN CREATE (:Gone) END");
  EXPECT_EQ(def.label, "Person");
}

TEST(TriggerParserTest, ReferencingAliases) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER CREATE ON 'IcuPatient' "
      "REFERENCING NEWNODES AS admitted "
      "FOR ALL NODES BEGIN CREATE (:Alert) END");
  ASSERT_EQ(def.referencing.size(), 1u);
  EXPECT_EQ(def.referencing[0].var, TransitionVar::kNewNodes);
  EXPECT_EQ(def.referencing[0].alias, "admitted");
  EXPECT_EQ(def.NewVarName(), "admitted");
  EXPECT_EQ(def.OldVarName(), "OLDNODES");  // default keeps canonical name
}

TEST(TriggerParserTest, MultipleReferencingEntries) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER SET ON 'L'.'p' "
      "REFERENCING OLD AS before, NEW AS after "
      "FOR EACH NODE BEGIN CREATE (:A {was: before.p, is: after.p}) END");
  EXPECT_EQ(def.AliasFor(TransitionVar::kOld), "before");
  EXPECT_EQ(def.AliasFor(TransitionVar::kNew), "after");
}

TEST(TriggerParserTest, WhenPipelineCondition) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER CREATE ON 'IcuPatient' FOR ALL NODES "
      "WHEN MATCH (p:IcuPatient) WITH COUNT(p) AS c WHERE c > 50 "
      "BEGIN CREATE (:Alert) END");
  EXPECT_EQ(def.when_expr, nullptr);
  ASSERT_EQ(def.when_query.clauses.size(), 2u);
  EXPECT_EQ(def.when_query.clauses[0]->kind, cypher::Clause::Kind::kMatch);
}

TEST(TriggerParserTest, WhenExpressionWithExistsPattern) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER CREATE ON 'Mutation' FOR EACH NODE "
      "WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect) "
      "BEGIN CREATE (:Alert) END");
  ASSERT_NE(def.when_expr, nullptr);
  EXPECT_EQ(def.when_expr->kind, cypher::Expr::Kind::kExists);
}

TEST(TriggerParserTest, MultiClauseStatement) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE BEGIN "
      "MATCH (h:H) CREATE (NEW)-[:At]->(h) SET h.n = 1 END");
  EXPECT_EQ(def.statement.clauses.size(), 3u);
}

TEST(TriggerParserTest, DropAlterCommands) {
  auto drop = TriggerDdlParser::Parse("DROP TRIGGER Foo");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop->kind, TriggerDdl::Kind::kDrop);
  EXPECT_EQ(drop->name, "Foo");
  auto enable = TriggerDdlParser::Parse("ALTER TRIGGER Foo ENABLE");
  EXPECT_EQ(enable->kind, TriggerDdl::Kind::kEnable);
  auto disable = TriggerDdlParser::Parse("ALTER TRIGGER Foo DISABLE;");
  EXPECT_EQ(disable->kind, TriggerDdl::Kind::kDisable);
}

TEST(TriggerParserTest, ErrorMissingBegin) {
  auto r = TriggerDdlParser::Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE CREATE (:A) END");
  EXPECT_EQ(r.status().code(), StatusCode::kSyntaxError);
}

TEST(TriggerParserTest, ErrorEmptyStatement) {
  auto r = TriggerDdlParser::Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE BEGIN END");
  EXPECT_EQ(r.status().code(), StatusCode::kSyntaxError);
}

TEST(TriggerParserTest, ErrorBadActionTime) {
  auto r = TriggerDdlParser::Parse(
      "CREATE TRIGGER T SOMETIME CREATE ON 'L' FOR EACH NODE "
      "BEGIN CREATE (:A) END");
  EXPECT_EQ(r.status().code(), StatusCode::kSyntaxError);
}

TEST(TriggerParserTest, ErrorBadGranularity) {
  auto r = TriggerDdlParser::Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'L' FOR SOME NODE "
      "BEGIN CREATE (:A) END");
  EXPECT_EQ(r.status().code(), StatusCode::kSyntaxError);
}

TEST(TriggerParserTest, ErrorTrailingGarbage) {
  auto r = TriggerDdlParser::Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'L' FOR EACH NODE "
      "BEGIN CREATE (:A) END AND MORE");
  EXPECT_EQ(r.status().code(), StatusCode::kSyntaxError);
}

// Figure 1 grammar sweep: every combination of action time, event,
// granularity, and item kind must parse and round-trip through ToDdl().
struct GrammarCase {
  const char* time;
  const char* event;
  const char* granularity;
  const char* item;
};

class Figure1Sweep : public ::testing::TestWithParam<
                         std::tuple<int, int, int, int>> {};

TEST_P(Figure1Sweep, ParsesAndRoundTrips) {
  static const char* kTimes[] = {"BEFORE", "AFTER", "ONCOMMIT", "DETACHED"};
  static const char* kEvents[] = {"CREATE", "DELETE", "SET", "REMOVE"};
  static const char* kGrans[] = {"EACH", "ALL"};
  static const char* kItems[] = {"NODE", "RELATIONSHIP"};
  const auto [t, e, g, i] = GetParam();
  std::string ddl = std::string("CREATE TRIGGER Sweep ") + kTimes[t] + " " +
                    kEvents[e] + " ON 'L' FOR " + kGrans[g] + " " +
                    kItems[i] + " BEGIN CREATE (:A) END";
  auto r = TriggerDdlParser::ParseCreate(ddl);
  ASSERT_TRUE(r.ok()) << ddl << "\n-> " << r.status();
  const TriggerDef& def = r.value();
  EXPECT_EQ(ActionTimeName(def.time), std::string(kTimes[t]));
  EXPECT_EQ(TriggerEventName(def.event), std::string(kEvents[e]));
  EXPECT_EQ(GranularityName(def.granularity), std::string(kGrans[g]));
  EXPECT_EQ(ItemKindName(def.item), std::string(kItems[i]));
  // Round-trip through the canonical unparse.
  auto r2 = TriggerDdlParser::ParseCreate(def.ToDdl());
  ASSERT_TRUE(r2.ok()) << def.ToDdl() << "\n-> " << r2.status();
  EXPECT_EQ(r2->ToDdl(), def.ToDdl());
}

INSTANTIATE_TEST_SUITE_P(Figure1, Figure1Sweep,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4),
                                            ::testing::Range(0, 2),
                                            ::testing::Range(0, 2)));

TEST(TriggerParserTest, PluralItemKeywordsAccepted) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T AFTER CREATE ON 'L' FOR ALL RELATIONSHIPS "
      "BEGIN CREATE (:A) END");
  EXPECT_EQ(def.item, ItemKind::kRelationship);
  EXPECT_EQ(def.granularity, Granularity::kAll);
}

TEST(TriggerParserTest, ToDdlContainsAllClauses) {
  TriggerDef def = ParseOk(
      "CREATE TRIGGER T ONCOMMIT SET ON 'L'.'p' "
      "REFERENCING OLD AS before FOR EACH NODE "
      "WHEN before.p IS NOT NULL BEGIN CREATE (:A) END");
  std::string ddl = def.ToDdl();
  EXPECT_NE(ddl.find("ONCOMMIT SET"), std::string::npos);
  EXPECT_NE(ddl.find("ON 'L'.'p'"), std::string::npos);
  EXPECT_NE(ddl.find("REFERENCING OLD AS before"), std::string::npos);
  EXPECT_NE(ddl.find("WHEN"), std::string::npos);
}

}  // namespace
}  // namespace pgt
