// Tests for the extension features beyond the paper's core: list
// comprehensions, SET += map merge, and the PG-Schema commit guard
// (the paper's footnote-1 direction: PG-Types enforcing structure).

#include <gtest/gtest.h>

#include "src/schema/pg_schema.h"
#include "src/trigger/database.h"

namespace pgt {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void Exec(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
  }
  Status ExecError(const std::string& q) { return db_.Execute(q).status(); }
  Value One(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? r->rows[0][0] : Value::Null();
  }

  Database db_;
};

TEST_F(ExtensionsTest, ListComprehensionFilterAndProject) {
  Value v = One("RETURN [x IN RANGE(1, 6) WHERE x % 2 = 0 | x * 10] AS l");
  ASSERT_TRUE(v.is_list());
  ASSERT_EQ(v.list_value().size(), 3u);
  EXPECT_EQ(v.list_value()[0].int_value(), 20);
  EXPECT_EQ(v.list_value()[2].int_value(), 60);
}

TEST_F(ExtensionsTest, ListComprehensionFilterOnly) {
  Value v = One("RETURN [x IN [1, 2, 3] WHERE x > 1] AS l");
  EXPECT_EQ(v.list_value().size(), 2u);
}

TEST_F(ExtensionsTest, ListComprehensionProjectOnly) {
  Value v = One("RETURN [x IN [1, 2] | x + 1] AS l");
  EXPECT_EQ(v.list_value()[1].int_value(), 3);
}

TEST_F(ExtensionsTest, ListComprehensionOverNullIsNull) {
  EXPECT_TRUE(One("RETURN [x IN null | x] AS l").is_null());
}

TEST_F(ExtensionsTest, ListComprehensionNested) {
  Value v = One("RETURN [x IN [1, 2] | [y IN [1, 2] | x * 10 + y]] AS l");
  ASSERT_EQ(v.list_value().size(), 2u);
  EXPECT_EQ(v.list_value()[1].list_value()[0].int_value(), 21);
}

TEST_F(ExtensionsTest, ListComprehensionOverNodes) {
  Exec("CREATE (:P {v: 1}), (:P {v: 2}), (:P {v: 3})");
  Value v = One(
      "MATCH (p:P) WITH COLLECT(p) AS ps "
      "RETURN SIZE([q IN ps WHERE q.v >= 2]) AS n");
  EXPECT_EQ(v.int_value(), 2);
}

TEST_F(ExtensionsTest, PlainListLiteralStillWorks) {
  // `[x, y]` where the first element is a variable must stay a literal.
  Exec("CREATE (:P {v: 7})");
  Value v = One("MATCH (p:P) WITH p.v AS x RETURN [x, 2] AS l");
  EXPECT_EQ(v.list_value()[0].int_value(), 7);
}

TEST_F(ExtensionsTest, SetMergeMapOnNode) {
  Exec("CREATE (:P {a: 1})");
  Exec("MATCH (p:P) SET p += {b: 2, c: 'x'}");
  EXPECT_EQ(One("MATCH (p:P) RETURN p.a AS v").int_value(), 1);
  EXPECT_EQ(One("MATCH (p:P) RETURN p.b AS v").int_value(), 2);
  EXPECT_EQ(One("MATCH (p:P) RETURN p.c AS v").string_value(), "x");
}

TEST_F(ExtensionsTest, SetMergeMapOverwritesAndRaisesEvents) {
  Exec("CREATE (:P {a: 1})");
  Exec("CREATE TRIGGER W AFTER SET ON 'P'.'a' FOR EACH NODE "
       "WHEN OLD.a <> NEW.a BEGIN CREATE (:Changed) END");
  Exec("MATCH (p:P) SET p += {a: 2}");
  EXPECT_EQ(One("MATCH (c:Changed) RETURN COUNT(*) AS c").int_value(), 1);
}

TEST_F(ExtensionsTest, SetMergeMapOnRelationship) {
  Exec("CREATE (:A)-[:R {w: 1}]->(:B)");
  Exec("MATCH ()-[r:R]->() SET r += {w: 2, z: 3}");
  EXPECT_EQ(One("MATCH ()-[r:R]->() RETURN r.w AS v").int_value(), 2);
  EXPECT_EQ(One("MATCH ()-[r:R]->() RETURN r.z AS v").int_value(), 3);
}

TEST_F(ExtensionsTest, SetMergeMapTypeErrors) {
  Exec("CREATE (:P)");
  EXPECT_FALSE(ExecError("MATCH (p:P) SET p += 5").ok());
}

// --- PG-Schema commit guard ----------------------------------------------------

schema::SchemaDef TinySchema() {
  auto r = schema::ParseSchemaDdl(R"(
      CREATE GRAPH TYPE Tiny STRICT {
        (PersonType : Person {name STRING, ssn STRING KEY}),
        (:PersonType)-[KnowsType : Knows]->(:PersonType)
      })");
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST_F(ExtensionsTest, SchemaGuardAcceptsConformingCommit) {
  db_.AttachSchema(TinySchema());
  Exec("CREATE (:Person {name: 'ann', ssn: '1'})");
  EXPECT_EQ(One("MATCH (p:Person) RETURN COUNT(*) AS c").int_value(), 1);
}

TEST_F(ExtensionsTest, SchemaGuardRollsBackViolatingCommit) {
  db_.AttachSchema(TinySchema());
  Status st = ExecError("CREATE (:Person {name: 'bob'})");  // ssn missing
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(st.message().find("Tiny"), std::string::npos);
  EXPECT_EQ(One("MATCH (n) RETURN COUNT(*) AS c").int_value(), 0);
}

TEST_F(ExtensionsTest, SchemaGuardCatchesKeyViolations) {
  db_.AttachSchema(TinySchema());
  Exec("CREATE (:Person {name: 'ann', ssn: '1'})");
  Status st = ExecError("CREATE (:Person {name: 'imp', ssn: '1'})");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(One("MATCH (p:Person) RETURN COUNT(*) AS c").int_value(), 1);
}

TEST_F(ExtensionsTest, SchemaGuardSeesTriggerSideEffects) {
  // A trigger creating a node the schema does not know must abort the
  // whole transaction — guard runs after ONCOMMIT processing.
  db_.AttachSchema(TinySchema());
  Exec("CREATE TRIGGER Bad AFTER CREATE ON 'Person' FOR EACH NODE "
       "BEGIN CREATE (:Unknown) END");
  Status st = ExecError("CREATE (:Person {name: 'ann', ssn: '1'})");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(One("MATCH (n) RETURN COUNT(*) AS c").int_value(), 0);
}

TEST_F(ExtensionsTest, SchemaGuardDetachable) {
  db_.AttachSchema(TinySchema());
  ASSERT_FALSE(ExecError("CREATE (:Unknown)").ok());
  db_.AttachSchema(std::nullopt);
  Exec("CREATE (:Unknown)");
  EXPECT_EQ(One("MATCH (n) RETURN COUNT(*) AS c").int_value(), 1);
}

TEST_F(ExtensionsTest, SchemaGuardIgnoresReadOnlyTransactions) {
  db_.AttachSchema(TinySchema());
  // Pre-existing nonconforming data (attached after the fact): reads must
  // still work — the guard only fires on transactions that changed data.
  db_.AttachSchema(std::nullopt);
  Exec("CREATE (:Unknown)");
  db_.AttachSchema(TinySchema());
  EXPECT_EQ(One("MATCH (n) RETURN COUNT(*) AS c").int_value(), 1);
}

}  // namespace
}  // namespace pgt
