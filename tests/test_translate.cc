// Translator tests: Figure 2 (APOC) and Figure 3 (Memgraph) syntax-directed
// translation — structural checks on the generated code plus executable
// equivalence through the emulators.

#include <gtest/gtest.h>

#include "src/emul/apoc_emulator.h"
#include "src/emul/memgraph_emulator.h"
#include "src/translate/apoc_translator.h"
#include "src/translate/memgraph_translator.h"
#include "src/trigger/trigger_parser.h"

namespace pgt::translate {
namespace {

TriggerDef Parse(const std::string& ddl) {
  auto r = TriggerDdlParser::ParseCreate(ddl);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

// --- APOC (Figure 2, Tables 2-3) ---------------------------------------------

TEST(ApocTranslatorTest, NodeCreationFollowsFigure2) {
  TriggerDef def = Parse(
      "CREATE TRIGGER NewCriticalMutation AFTER CREATE ON 'Mutation' "
      "FOR EACH NODE WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect) "
      "BEGIN CREATE (:Alert {m: NEW.name}) END");
  auto r = TranslateToApoc(def);
  ASSERT_TRUE(r.ok()) << r.status();
  const ApocTrigger& t = r.value();
  EXPECT_EQ(t.phase, "afterAsync");
  EXPECT_NE(t.statement.find("UNWIND $createdNodes AS cNodes"),
            std::string::npos);
  EXPECT_NE(t.statement.find("CALL apoc.do.when("), std::string::npos);
  EXPECT_NE(t.statement.find("cNodes:Mutation"), std::string::npos);
  EXPECT_NE(t.statement.find("YIELD value RETURN *"), std::string::npos);
  // Transition variable renamed inside condition and action (Table 3).
  EXPECT_EQ(t.statement.find("NEW"), std::string::npos);
  EXPECT_NE(t.statement.find("cNodes.name"), std::string::npos);
  EXPECT_NE(t.install_call.find("CALL apoc.trigger.install("),
            std::string::npos);
  EXPECT_NE(t.install_call.find("{phase: 'afterAsync'}"), std::string::npos);
}

TEST(ApocTranslatorTest, ActionTimeMapping) {
  auto phase_of = [](const std::string& time) {
    TriggerDef def = Parse("CREATE TRIGGER T " + time +
                           " CREATE ON 'L' FOR EACH NODE "
                           "BEGIN CREATE (:A) END");
    auto r = TranslateToApoc(def);
    EXPECT_TRUE(r.ok());
    return r.ok() ? r->phase : std::string();
  };
  EXPECT_EQ(phase_of("AFTER"), "afterAsync");
  EXPECT_EQ(phase_of("ONCOMMIT"), "before");
  EXPECT_EQ(phase_of("DETACHED"), "afterAsync");
  // BEFORE has no faithful APOC counterpart (the Section 5.1 gap).
  TriggerDef before = Parse(
      "CREATE TRIGGER T BEFORE CREATE ON 'L' FOR EACH NODE "
      "BEGIN SET NEW.x = 1 END");
  EXPECT_EQ(TranslateToApoc(before).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ApocTranslatorTest, EventUtilitySelectionPerTable2) {
  struct Case {
    const char* event;
    const char* item;
    const char* expect;
  };
  const Case cases[] = {
      {"CREATE", "NODE", "$createdNodes"},
      {"DELETE", "NODE", "$deletedNodes"},
      {"CREATE", "RELATIONSHIP", "$createdRelationships"},
      {"DELETE", "RELATIONSHIP", "$deletedRelationships"},
      {"SET", "NODE", "$assignedLabels"},
      {"REMOVE", "NODE", "$removedLabels"},
  };
  for (const Case& c : cases) {
    TriggerDef def = Parse(std::string("CREATE TRIGGER T AFTER ") + c.event +
                           " ON 'L' FOR EACH " + c.item +
                           " BEGIN CREATE (:A) END");
    auto r = TranslateToApoc(def);
    ASSERT_TRUE(r.ok()) << c.event << " " << c.item;
    EXPECT_NE(r->statement.find(c.expect), std::string::npos)
        << c.event << " " << c.item << ":\n"
        << r->statement;
  }
}

TEST(ApocTranslatorTest, PropertyEventUsesQuadruples) {
  TriggerDef def = Parse(
      "CREATE TRIGGER WhoDesignationChange AFTER SET "
      "ON 'Lineage'.'whoDesignation' FOR EACH NODE "
      "WHEN OLD.whoDesignation <> NEW.whoDesignation "
      "BEGIN CREATE (:Alert) END");
  auto r = TranslateToApoc(def);
  ASSERT_TRUE(r.ok()) << r.status();
  const std::string& s = r->statement;
  EXPECT_NE(s.find("UNWIND keys($assignedNodeProperties) AS k"),
            std::string::npos);
  EXPECT_NE(s.find("aProp.old AS oldValue"), std::string::npos);
  // Table 3: OLD.p / NEW.p become oldValue / newValue.
  EXPECT_NE(s.find("(oldValue <> newValue)"), std::string::npos);
  EXPECT_NE(s.find("node:Lineage"), std::string::npos);
  EXPECT_NE(s.find("(propKey = 'whoDesignation')"), std::string::npos);
}

TEST(ApocTranslatorTest, RemovePropertyUsesTriples) {
  TriggerDef def = Parse(
      "CREATE TRIGGER T AFTER REMOVE ON 'L'.'p' FOR EACH NODE "
      "BEGIN CREATE (:A {was: OLD.p}) END");
  auto r = TranslateToApoc(def);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->statement.find("$removedNodeProperties"), std::string::npos);
  EXPECT_EQ(r->statement.find("newValue"), std::string::npos);
  EXPECT_NE(r->statement.find("oldValue"), std::string::npos);
}

TEST(ApocTranslatorTest, RelationshipEventsUseTypeCheck) {
  TriggerDef def = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'TreatedAt' FOR EACH RELATIONSHIP "
      "BEGIN CREATE (:A) END");
  auto r = TranslateToApoc(def);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->statement.find("TYPE(cRels) = 'TreatedAt'"),
            std::string::npos);
}

TEST(ApocTranslatorTest, ConditionPipelineCarriesTargetThroughWith) {
  TriggerDef def = Parse(
      "CREATE TRIGGER IcuPatientIncrease AFTER CREATE ON 'IcuPatient' "
      "FOR ALL NODES WHEN "
      "MATCH (p:IcuPatient) WITH COUNT(p) AS TotalIcuPat "
      "WHERE TotalIcuPat > 10 "
      "BEGIN CREATE (:Alert) END");
  auto r = TranslateToApoc(def);
  ASSERT_TRUE(r.ok()) << r.status();
  const std::string& s = r->statement;
  // The paper appends ", cNodes" to keep the UNWIND variable in scope.
  EXPECT_NE(s.find("cNodes AS cNodes"), std::string::npos);
  // The trailing WHERE moved into the do.when condition.
  EXPECT_NE(s.find("(TotalIcuPat > 10)"), std::string::npos);
}

TEST(ApocTranslatorTest, PseudoLabelPatternRewritten) {
  TriggerDef def = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR ALL NODES "
      "WHEN MATCH (pn:NEWNODES)-[:At]-(h:H) WITH COUNT(pn) AS c WHERE c > 0 "
      "BEGIN CREATE (:A) END");
  auto r = TranslateToApoc(def);
  ASSERT_TRUE(r.ok());
  // (pn:NEWNODES) becomes the UNWIND variable.
  EXPECT_NE(r->statement.find("(cNodes)-[:At]-(h:H)"), std::string::npos);
  EXPECT_EQ(r->statement.find("NEWNODES"), std::string::npos);
}

// --- Memgraph (Figure 3, Table 4) ---------------------------------------------

TEST(MemgraphTranslatorTest, NodeCreationFollowsFigure3) {
  TriggerDef def = Parse(
      "CREATE TRIGGER NewCriticalMutation AFTER CREATE ON 'Mutation' "
      "FOR EACH NODE WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect) "
      "BEGIN CREATE (:Alert {m: NEW.name}) END");
  auto r = TranslateToMemgraph(def);
  ASSERT_TRUE(r.ok()) << r.status();
  const MemgraphTrigger& t = r.value();
  EXPECT_EQ(t.event_class, MgEventClass::kVertexCreate);
  EXPECT_FALSE(t.before_commit);
  EXPECT_NE(t.statement.find("UNWIND createdVertices AS newNode"),
            std::string::npos);
  EXPECT_NE(t.statement.find("WITH CASE WHEN"), std::string::npos);
  EXPECT_NE(t.statement.find("'Mutation' IN labels(newNode)"),
            std::string::npos);
  EXPECT_NE(t.statement.find("WHERE flag IS NOT NULL"), std::string::npos);
  EXPECT_NE(t.create_call.find("CREATE TRIGGER NewCriticalMutation"),
            std::string::npos);
  EXPECT_NE(t.create_call.find("ON () CREATE AFTER COMMIT EXECUTE"),
            std::string::npos);
}

TEST(MemgraphTranslatorTest, EventClassMapping) {
  auto clause_of = [](const std::string& event, const std::string& item) {
    TriggerDef def = Parse("CREATE TRIGGER T AFTER " + event + " ON 'L'" +
                           (event == "SET" && item == "RELATIONSHIP"
                                ? std::string(".'p'")
                                : std::string()) +
                           " FOR EACH " + item + " BEGIN CREATE (:A) END");
    auto r = TranslateToMemgraph(def);
    EXPECT_TRUE(r.ok()) << event << " " << item << ": " << r.status();
    return r.ok() ? std::string(MgEventClassClause(r->event_class))
                  : std::string();
  };
  EXPECT_EQ(clause_of("CREATE", "NODE"), "ON () CREATE");
  EXPECT_EQ(clause_of("DELETE", "NODE"), "ON () DELETE");
  EXPECT_EQ(clause_of("CREATE", "RELATIONSHIP"), "ON --> CREATE");
  EXPECT_EQ(clause_of("DELETE", "RELATIONSHIP"), "ON --> DELETE");
  EXPECT_EQ(clause_of("SET", "NODE"), "ON () UPDATE");
  EXPECT_EQ(clause_of("SET", "RELATIONSHIP"), "ON --> UPDATE");
}

TEST(MemgraphTranslatorTest, CommitPhaseMapping) {
  TriggerDef oncommit = Parse(
      "CREATE TRIGGER T ONCOMMIT CREATE ON 'L' FOR EACH NODE "
      "BEGIN CREATE (:A) END");
  EXPECT_TRUE(TranslateToMemgraph(oncommit)->before_commit);
  TriggerDef before = Parse(
      "CREATE TRIGGER T BEFORE CREATE ON 'L' FOR EACH NODE "
      "BEGIN SET NEW.x = 1 END");
  EXPECT_EQ(TranslateToMemgraph(before).status().code(),
            StatusCode::kUnimplemented);
}

TEST(MemgraphTranslatorTest, PropertyEventDispatch) {
  TriggerDef def = Parse(
      "CREATE TRIGGER T AFTER SET ON 'Lineage'.'whoDesignation' "
      "FOR EACH NODE WHEN OLD.whoDesignation <> NEW.whoDesignation "
      "BEGIN CREATE (:Alert) END");
  auto r = TranslateToMemgraph(def);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->statement.find("UNWIND setVertexProperties AS sp"),
            std::string::npos);
  EXPECT_NE(r->statement.find("(propKey = 'whoDesignation')"),
            std::string::npos);
  EXPECT_NE(r->statement.find("(oldValue <> newValue)"), std::string::npos);
}

TEST(MemgraphTranslatorTest, LabelEventDispatch) {
  TriggerDef def = Parse(
      "CREATE TRIGGER T AFTER SET ON 'Flagged' FOR EACH NODE "
      "BEGIN CREATE (:A) END");
  auto r = TranslateToMemgraph(def);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->statement.find("UNWIND setVertexLabels AS lc"),
            std::string::npos);
  EXPECT_NE(r->statement.find("(changedLabel = 'Flagged')"),
            std::string::npos);
}

// --- Executable equivalence ----------------------------------------------------

// Translate a PG-Trigger, install it into the APOC emulator, run the same
// workload natively and emulated, and compare the resulting alerts. This is
// the end-to-end claim behind Figure 2: the translation preserves behavior
// (for AFTER triggers, modulo the post-commit timing).
TEST(TranslationEquivalenceTest, ApocNodeCreationMatchesNative) {
  const std::string ddl =
      "CREATE TRIGGER M AFTER CREATE ON 'Mutation' FOR EACH NODE "
      "WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect) "
      "BEGIN CREATE (:Alert {m: NEW.name}) END";
  const std::vector<std::string> workload = {
      "CREATE (:CriticalEffect {description: 'x'})",
      "MATCH (c:CriticalEffect) CREATE (m:Mutation {name: 'A'})-[:Risk]->"
      "(c)",
      "CREATE (:Mutation {name: 'B'})",  // not critical: no alert
  };
  auto count_alerts = [](Database& db) {
    auto r = db.Execute("MATCH (a:Alert) RETURN COUNT(*) AS c");
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  };

  // Native run.
  Database native;
  ASSERT_TRUE(native.Execute(ddl).ok());
  for (const std::string& q : workload) {
    ASSERT_TRUE(native.Execute(q).ok());
  }
  const int64_t native_alerts = count_alerts(native);
  ASSERT_EQ(native_alerts, 1);

  // Emulated run through the translation.
  Database emulated;
  auto emul = std::make_unique<emul::ApocEmulator>(&emulated);
  emul::ApocEmulator* apoc = emul.get();
  emulated.SetRuntime(std::move(emul));
  auto translated = TranslateToApoc(TriggerDdlParser::ParseCreate(ddl)
                                        .value());
  ASSERT_TRUE(translated.ok()) << translated.status();
  ASSERT_TRUE(apoc->Install(*translated).ok());
  for (const std::string& q : workload) {
    ASSERT_TRUE(emulated.Execute(q).ok());
  }
  EXPECT_EQ(count_alerts(emulated), native_alerts);
}

TEST(TranslationEquivalenceTest, MemgraphNodeCreationMatchesNative) {
  const std::string ddl =
      "CREATE TRIGGER M AFTER CREATE ON 'Mutation' FOR EACH NODE "
      "WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect) "
      "BEGIN CREATE (:Alert {m: NEW.name}) END";
  Database emulated;
  auto owner = std::make_unique<emul::MemgraphEmulator>(&emulated);
  emul::MemgraphEmulator* mg = owner.get();
  emulated.SetRuntime(std::move(owner));
  auto translated =
      TranslateToMemgraph(TriggerDdlParser::ParseCreate(ddl).value());
  ASSERT_TRUE(translated.ok()) << translated.status();
  ASSERT_TRUE(mg->Install(*translated).ok());
  ASSERT_TRUE(
      emulated.Execute("CREATE (:CriticalEffect {description: 'x'})").ok());
  ASSERT_TRUE(emulated
                  .Execute("MATCH (c:CriticalEffect) CREATE "
                           "(m:Mutation {name: 'A'})-[:Risk]->(c)")
                  .ok());
  auto r = emulated.Execute("MATCH (a:Alert) RETURN COUNT(*) AS c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int_value(), 1);
  // Memgraph's event classes are coarse: the trigger ran for both
  // vertex-creating transactions, but the Figure 3 label/flag dispatch
  // suppressed the action for the CriticalEffect one.
  EXPECT_EQ(mg->fired("M"), 2u);
}

TEST(TranslationEquivalenceTest, ApocPropertyChangeMatchesNative) {
  const std::string ddl =
      "CREATE TRIGGER W AFTER SET ON 'Lineage'.'whoDesignation' "
      "FOR EACH NODE WHEN OLD.whoDesignation <> NEW.whoDesignation "
      "BEGIN CREATE (:Alert {desc: 'changed'}) END";
  auto run = [&](Database& db) {
    EXPECT_TRUE(db.Execute("CREATE (:Lineage {name: 'B.1', "
                           "whoDesignation: 'Indian'})")
                    .ok());
    EXPECT_TRUE(
        db.Execute("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'").ok());
    // Same value again: no change, no alert.
    EXPECT_TRUE(
        db.Execute("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'").ok());
    auto r = db.Execute("MATCH (a:Alert) RETURN COUNT(*) AS c");
    EXPECT_TRUE(r.ok());
    return r.ok() ? r->rows[0][0].int_value() : -1;
  };
  Database native;
  ASSERT_TRUE(native.Execute(ddl).ok());
  const int64_t native_alerts = run(native);

  Database emulated;
  auto owner = std::make_unique<emul::ApocEmulator>(&emulated);
  emul::ApocEmulator* apoc = owner.get();
  emulated.SetRuntime(std::move(owner));
  auto translated =
      TranslateToApoc(TriggerDdlParser::ParseCreate(ddl).value());
  ASSERT_TRUE(translated.ok()) << translated.status();
  ASSERT_TRUE(apoc->Install(*translated).ok());
  EXPECT_EQ(run(emulated), native_alerts);
  EXPECT_EQ(native_alerts, 1);
}

}  // namespace
}  // namespace pgt::translate
