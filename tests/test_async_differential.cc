// Acceptance differential for off-writer ASYNC execution (docs/async.md):
// with the queue drained at every statement boundary (capacity 0, kBlock or
// kSpill), a pool-enabled database must produce byte-identical final graph
// state, per-trigger firing order, and per-trigger stats to the legacy
// on-writer serial drain — for any pool size. The only documented
// divergences are engine-global counters the prefilter path skips
// (committed_transactions / statements for no-fire detached runs), which
// this suite deliberately does not compare.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/trigger/database.h"

namespace pgt {
namespace {

// ---------------------------------------------------------------------------
// Workload

/// Detached triggers spanning both granularities, expression and pipeline
/// WHEN conditions, delete sources (ghost images), a two-level detached
/// cascade, a contained runtime error, and a plain AFTER trigger running
/// alongside. `global_when` adds a trigger whose WHEN reads global graph
/// state — exact only when the queue drains at every boundary.
void InstallTriggers(Database& db, bool global_when) {
  std::vector<std::string> ddls = {
      "CREATE TRIGGER T1guard DETACHED CREATE ON 'M' FOR EACH NODE "
      "WHEN NEW.p > 2 "
      "BEGIN CREATE (:Log {t: 'T1'}) END",
      "CREATE TRIGGER T2all DETACHED CREATE ON 'M' FOR ALL NODES "
      "BEGIN CREATE (:Log {t: 'T2'}) END",
      "CREATE TRIGGER T3set DETACHED SET ON 'M'.'p' FOR EACH NODE "
      "WHEN OLD.p <> NEW.p "
      "BEGIN CREATE (:Log {t: 'T3'}) END",
      "CREATE TRIGGER T4del DETACHED DELETE ON 'M' FOR EACH NODE "
      "WHEN OLD.p = 1 "
      "BEGIN CREATE (:Log {t: 'T4'}) END",
      "CREATE TRIGGER T5chain DETACHED CREATE ON 'Log' FOR ALL NODES "
      "BEGIN CREATE (:Chain) END",
      "CREATE TRIGGER T6chain DETACHED CREATE ON 'Chain' FOR EACH NODE "
      "BEGIN CREATE (:ChainDone) END",
      "CREATE TRIGGER T7after AFTER CREATE ON 'M' FOR EACH NODE "
      "BEGIN CREATE (:Aft) END",
      "CREATE TRIGGER T9err DETACHED CREATE ON 'E' FOR EACH NODE "
      "BEGIN MATCH (x:NoSuchLabel) CALL no.such.proc() YIELD v RETURN v END",
  };
  if (global_when) {
    ddls.push_back(
        "CREATE TRIGGER T8seed DETACHED CREATE ON 'Q' FOR EACH NODE "
        "WHEN MATCH (s:Seed) "
        "BEGIN CREATE (:Log {t: 'T8'}) END");
  }
  for (const std::string& ddl : ddls) {
    auto r = db.Execute(ddl);
    ASSERT_TRUE(r.ok()) << ddl << " -> " << r.status();
  }
}

void RunWorkload(Database& db, bool global_when) {
  std::vector<std::string> statements = {
      "CREATE (:M {p: 1})",
      "CREATE (:M {p: 3}), (:M {p: 5})",
      "MATCH (m:M) WHERE m.p = 3 SET m.p = 4",
      "MATCH (m:M) WHERE m.p = 1 DELETE m",
      "CREATE (:E {oops: 1})",
      "CREATE (:M {p: 10})",
  };
  if (global_when) {
    // Before the :Seed exists T8seed must not fire; afterwards it must.
    statements.insert(statements.begin() + 2, "CREATE (:Q {z: 1})");
    statements.insert(statements.begin() + 3, "CREATE (:Seed)");
    statements.insert(statements.begin() + 4, "CREATE (:Q {z: 2})");
  }
  for (const std::string& stmt : statements) {
    auto r = db.Execute(stmt);
    ASSERT_TRUE(r.ok()) << stmt << " -> " << r.status();
  }
}

// ---------------------------------------------------------------------------
// Signatures

int64_t Count(Database& db, const std::string& query) {
  auto r = db.Execute(query);
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok() || r->rows.empty()) return -1;
  return r->rows[0][0].int_value();
}

/// Everything the differential compares, canonically stringified: the
/// firing order (Log nodes in id order), final per-label node counts, and
/// the per-trigger counters plus detached_runs.
struct Signature {
  std::string firing_order;
  std::string counts;
  std::string stats;

  bool operator==(const Signature& o) const {
    return firing_order == o.firing_order && counts == o.counts &&
           stats == o.stats;
  }
};

Signature Capture(Database& db) {
  Signature sig;
  {
    std::ostringstream os;
    auto r = db.Execute("MATCH (l:Log) RETURN l.t");
    EXPECT_TRUE(r.ok()) << r.status();
    for (const auto& row : r->rows) os << row[0].string_value() << ",";
    sig.firing_order = os.str();
  }
  {
    std::ostringstream os;
    for (const char* label :
         {"M", "Log", "Chain", "ChainDone", "Aft", "E", "Q", "Seed"}) {
      os << label << "="
         << Count(db, std::string("MATCH (n:") + label + ") RETURN count(n)")
         << ";";
    }
    sig.counts = os.str();
  }
  {
    std::ostringstream os;
    for (const auto& [name, ts] : db.stats().per_trigger) {
      os << name << "{c=" << ts.considered << ",f=" << ts.fired
         << ",r=" << ts.action_rows << ",e=" << ts.errors << "};";
    }
    os << "detached_runs=" << db.stats().detached_runs;
    sig.stats = os.str();
  }
  return sig;
}

Signature RunMode(const EngineOptions& opts, bool global_when) {
  Database db(opts);
  InstallTriggers(db, global_when);
  RunWorkload(db, global_when);
  db.DrainAsync();
  return Capture(db);
}

EngineOptions PoolOptions(int workers, size_t capacity,
                          AsyncBackpressure backpressure) {
  EngineOptions opts;
  opts.async_pool_size = workers;
  opts.async_queue_capacity = capacity;
  opts.async_backpressure = backpressure;
  return opts;
}

// ---------------------------------------------------------------------------
// The differential

class AsyncDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    serial_ = RunMode(EngineOptions{}, /*global_when=*/true);
    // The workload actually exercised every path it claims to.
    EXPECT_NE(serial_.firing_order.find("T4"), std::string::npos);
    EXPECT_NE(serial_.firing_order.find("T8"), std::string::npos);
    EXPECT_NE(serial_.stats.find("T9err{c=1,f=1,r=1,e=1}"),
              std::string::npos)
        << serial_.stats;
  }

  Signature serial_;
};

TEST_F(AsyncDifferential, PoolOfOneBlockMatchesSerial) {
  EXPECT_EQ(RunMode(PoolOptions(1, 0, AsyncBackpressure::kBlock), true),
            serial_);
}

TEST_F(AsyncDifferential, PoolOfFourBlockMatchesSerial) {
  EXPECT_EQ(RunMode(PoolOptions(4, 0, AsyncBackpressure::kBlock), true),
            serial_);
}

TEST_F(AsyncDifferential, PoolOfOneSpillMatchesSerial) {
  EXPECT_EQ(RunMode(PoolOptions(1, 0, AsyncBackpressure::kSpill), true),
            serial_);
}

TEST_F(AsyncDifferential, PoolOfFourSpillMatchesSerial) {
  EXPECT_EQ(RunMode(PoolOptions(4, 0, AsyncBackpressure::kSpill), true),
            serial_);
}

TEST(AsyncDifferentialOverlapped, DeepQueueMatchesSerialModuloInterleaving) {
  // With a deep queue the pool runs behind the writer, so detached Log
  // nodes interleave differently with the writer's own nodes — but the
  // firing order among detached activations, the final state, and the
  // per-trigger stats are still identical as long as every WHEN depends
  // only on its transition environment (global_when=false drops T8seed,
  // whose evaluation-time-dependent verdict is inherent ASYNC semantics,
  // not a pool artifact — docs/async.md).
  Signature serial = RunMode(EngineOptions{}, /*global_when=*/false);
  Signature pooled =
      RunMode(PoolOptions(2, 1024, AsyncBackpressure::kBlock), false);
  EXPECT_EQ(pooled, serial);
}

}  // namespace
}  // namespace pgt
