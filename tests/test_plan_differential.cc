// Differential suite for the compile-once query-plan subsystem
// (src/cypher/plan): with EngineOptions::use_compiled_plans on, trigger
// WHEN/action statements and ad-hoc Cypher execute through slot-addressed
// compiled plans; off, the legacy AST interpreter runs. The two paths must
// produce byte-identical QueryResults, firing order, per-trigger stats, and
// final graph state over a corpus spanning every compiled clause and
// expression shape — plus identical behavior across plan-cache hits and
// DDL-epoch invalidation. Mirrors tests/test_dispatch_differential.cc.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/trigger/database.h"
#include "src/trigger/trigger_plan.h"

namespace pgt {
namespace {

EngineOptions Options(bool use_compiled_plans) {
  EngineOptions opts;
  opts.use_compiled_plans = use_compiled_plans;
  return opts;
}

int64_t Count(Database& db, const std::string& query) {
  auto r = db.Execute(query);
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok() || r->rows.empty()) return -1;
  return r->rows[0][0].int_value();
}

std::vector<std::string> FiringLog(Database& db) {
  std::vector<std::string> out;
  auto r = db.Execute("MATCH (l:Log) RETURN l.t");
  EXPECT_TRUE(r.ok()) << r.status();
  for (const auto& row : r->rows) out.emplace_back(row[0].string_value());
  return out;
}

/// Canonical dump of the whole graph: every alive node (sorted labels,
/// properties) and relationship, in id order. Byte-compared across modes.
std::string DumpGraph(Database& db) {
  std::ostringstream os;
  const GraphStore& store = db.store();
  for (NodeId id : store.AllNodes()) {
    const NodeRecord* n = store.GetNode(id);
    os << "n" << id.value << "[";
    for (LabelId l : n->labels) os << store.LabelName(l) << ",";
    os << "]{";
    for (const auto& [k, v] : n->props) {
      os << store.PropKeyName(k) << "=" << v.ToString() << ",";
    }
    os << "}\n";
  }
  for (RelId id : store.AllRels()) {
    const RelRecord* r = store.GetRel(id);
    os << "r" << id.value << ":" << store.RelTypeName(r->type) << " "
       << r->src.value << "->" << r->dst.value << "{";
    for (const auto& [k, v] : r->props) {
      os << store.PropKeyName(k) << "=" << v.ToString() << ",";
    }
    os << "}\n";
  }
  return os.str();
}

void ExpectSameStats(Database& compiled, Database& interpreted) {
  const EngineStats& sc = compiled.stats();
  const EngineStats& si = interpreted.stats();
  ASSERT_EQ(sc.per_trigger.size(), si.per_trigger.size());
  for (const auto& [name, ts] : sc.per_trigger) {
    auto it = si.per_trigger.find(name);
    ASSERT_NE(it, si.per_trigger.end()) << name;
    EXPECT_EQ(ts.considered, it->second.considered) << name;
    EXPECT_EQ(ts.fired, it->second.fired) << name;
    EXPECT_EQ(ts.action_rows, it->second.action_rows) << name;
    EXPECT_EQ(ts.errors, it->second.errors) << name;
  }
  EXPECT_EQ(sc.statements, si.statements);
  EXPECT_EQ(sc.cascade_depth_max, si.cascade_depth_max);
  EXPECT_EQ(sc.oncommit_rounds_max, si.oncommit_rounds_max);
  EXPECT_EQ(sc.detached_runs, si.detached_runs);
}

// ---------------------------------------------------------------------------
// The trigger corpus: every action time, both granularities, WHEN
// expressions and WHEN pipelines (sargable MATCH, aggregates, UNWIND,
// EXISTS, CASE, list comprehensions), OLD property views, REFERENCING
// aliases, transition pseudo-labels, and actions exercising CREATE /
// relationship CREATE / SET / REMOVE / DELETE / MERGE / FOREACH — plus a
// CALL action, which intentionally falls back to the interpreter.

const char* kTriggerCorpus[] = {
    // WHEN expression over OLD/NEW with an OLD property view.
    "CREATE TRIGGER Wexpr AFTER SET ON 'Acct'.'bal' FOR EACH NODE "
    "WHEN OLD.bal <> NEW.bal "
    "BEGIN CREATE (:Log {t: 'Wexpr', d: NEW.bal - OLD.bal}) END",
    // WHEN pipeline: sargable MATCH probe + chain + WITH re-scope.
    "CREATE TRIGGER Wpipe AFTER SET ON 'Acct'.'bal' FOR EACH NODE "
    "WHEN MATCH (o:Owner {oid: NEW.owner})-[:OWNS]->(x:Acct) "
    "WHERE x.bal >= 0 WITH o, x "
    "BEGIN CREATE (:Log {t: 'Wpipe', who: o.name, b: x.bal + NEW.bal}) END",
    // Aggregate + ORDER BY + LIMIT in the condition pipeline.
    "CREATE TRIGGER Wagg ONCOMMIT CREATE ON 'Acct' FOR ALL NODES "
    "WHEN MATCH (a:Acct) WITH COUNT(*) AS n WHERE n >= 2 "
    "BEGIN CREATE (:Log {t: 'Wagg', n: n}) END",
    // UNWIND over the transition set + FOREACH in the action.
    "CREATE TRIGGER Wset AFTER CREATE ON 'Batch' "
    "REFERENCING NEWNODES AS fresh FOR ALL NODES "
    "WHEN UNWIND fresh AS b WITH b WHERE b.k > 0 "
    "BEGIN FOREACH (i IN RANGE(1, b.k) | CREATE (:Log {t: 'Wset', i: i})) "
    "END",
    // Transition pseudo-label in the pattern + EXISTS in WHEN.
    "CREATE TRIGGER Wexists AFTER CREATE ON 'Link' FOR EACH RELATIONSHIP "
    "WHEN EXISTS ((:Hub)-[:T]->(:Hub)) "
    "BEGIN CREATE (:Log {t: 'Wexists'}) END",
    // BEFORE trigger conditioning NEW states.
    "CREATE TRIGGER Bfix BEFORE SET ON 'Acct'.'bal' FOR EACH NODE "
    "WHEN NEW.bal < 0 BEGIN SET NEW.bal = 0 END",
    // OLD view on DELETE + DETACHED autonomous transaction.
    "CREATE TRIGGER Dgone DETACHED DELETE ON 'Acct' FOR EACH NODE "
    "BEGIN CREATE (:Log {t: 'Dgone', last: OLD.bal}) END",
    // Label event + MERGE action with ON CREATE / ON MATCH.
    "CREATE TRIGGER Lmark AFTER SET ON 'Flagged' FOR EACH NODE "
    "BEGIN MERGE (c:Counter {kind: 'flag'}) "
    "ON CREATE SET c.n = 1 ON MATCH SET c.n = c.n + 1 END",
    // REMOVE event + list comprehension + CASE in the action.
    "CREATE TRIGGER Rprop AFTER REMOVE ON 'Acct'.'tag' FOR EACH NODE "
    "BEGIN CREATE (:Log {t: 'Rprop', c: CASE WHEN OLD.bal > 5 THEN 'hi' "
    "ELSE 'lo' END, l: [z IN [1,2,3] WHERE z > 1 | z * 10]}) END",
    // Relationship SET event + OLD rel view.
    "CREATE TRIGGER RelSet ONCOMMIT SET ON 'OWNS'.'w' FOR EACH RELATIONSHIP "
    "WHEN OLD.w < NEW.w BEGIN CREATE (:Log {t: 'RelSet', was: OLD.w}) END",
    // CALL in the action: intentional interpreter fallback.
    "CREATE TRIGGER Cback AFTER CREATE ON 'Procy' FOR EACH NODE "
    "BEGIN CALL test.mark() END",
    // Cascade source: DELETE action raising further events.
    "CREATE TRIGGER Casc AFTER CREATE ON 'Sweep' FOR EACH NODE "
    "BEGIN MATCH (v:Victim) DETACH DELETE v END",
    "CREATE TRIGGER Cascd AFTER DELETE ON 'Victim' FOR EACH NODE "
    "BEGIN CREATE (:Log {t: 'Cascd'}) END",
};

const char* kWorkload[] = {
    "CREATE (:Owner {oid: 1, name: 'ada'}), (:Owner {oid: 2, name: 'bob'})",
    "CREATE (:Acct {bal: 10, owner: 1, tag: 'x'})",
    "CREATE (:Acct {bal: 20, owner: 2, tag: 'y'})",
    "MATCH (o:Owner), (a:Acct) WHERE o.oid = a.owner "
    "CREATE (o)-[:OWNS {w: 1}]->(a)",
    "MATCH (a:Acct {owner: 1}) SET a.bal = 15",
    "MATCH (a:Acct) WHERE a.bal > 18 SET a.bal = a.bal + 1",
    "MATCH (a:Acct {owner: 2}) SET a.bal = -5",  // Bfix clamps to 0
    "CREATE (:Batch {k: 2}), (:Batch {k: 0})",
    "CREATE (:Hub), (:Hub)",
    "MATCH (h1:Hub), (h2:Hub) WHERE h1.x IS NULL AND h2.x IS NULL "
    "CREATE (h1)-[:T]->(h2)",
    "MATCH (a:Hub), (b:Hub) CREATE (a)-[:Link]->(b)",
    "MATCH (a:Acct {owner: 1}) SET a:Flagged",
    "MATCH (a:Acct {owner: 2}) SET a:Flagged",
    "MATCH (a:Acct {owner: 1}) REMOVE a.tag",
    "MATCH ()-[r:OWNS]->() SET r.w = 3",
    "CREATE (:Procy)",
    "CREATE (:Victim), (:Victim), (:Sweep)",
    "MATCH (a:Acct {owner: 2}) DELETE a",
    // Var-length + OPTIONAL MATCH + DISTINCT / ORDER BY / SKIP read.
    "MATCH (o:Owner)-[:OWNS*1..2]->(a) RETURN o.name AS nm, a.bal AS b "
    "ORDER BY nm, b",
    "OPTIONAL MATCH (z:NoSuchLabel) RETURN z",
    "MATCH (o:Owner) WITH DISTINCT o.name AS nm ORDER BY nm DESC "
    "RETURN nm SKIP 1",
    "UNWIND [3, 1, 2] AS v WITH v ORDER BY v RETURN COLLECT(v) AS sorted",
};

void InstallCorpus(Database& db) {
  db.procedures().Register(
      "test.mark", {},
      [&db](cypher::EvalContext& ctx, const std::vector<Value>&,
            const cypher::Row&) -> Result<std::vector<cypher::Row>> {
        (void)ctx;
        (void)db;
        return std::vector<cypher::Row>{};
      });
  for (const char* ddl : kTriggerCorpus) {
    auto r = db.Execute(ddl);
    ASSERT_TRUE(r.ok()) << ddl << " -> " << r.status();
  }
}

TEST(PlanDifferential, CorpusByteIdenticalAcrossPaths) {
  Database compiled(Options(true));
  Database interpreted(Options(false));
  InstallCorpus(compiled);
  InstallCorpus(interpreted);

  for (const char* stmt : kWorkload) {
    auto rc = compiled.Execute(stmt);
    auto ri = interpreted.Execute(stmt);
    ASSERT_EQ(rc.ok(), ri.ok()) << stmt << " -> " << rc.status() << " vs "
                                << ri.status();
    if (rc.ok()) {
      EXPECT_EQ(rc->ToTable(), ri->ToTable()) << stmt;
    } else {
      EXPECT_EQ(rc.status().message(), ri.status().message()) << stmt;
    }
  }

  const std::vector<std::string> log_c = FiringLog(compiled);
  const std::vector<std::string> log_i = FiringLog(interpreted);
  EXPECT_FALSE(log_c.empty());
  EXPECT_EQ(log_c, log_i);
  ExpectSameStats(compiled, interpreted);
  EXPECT_EQ(DumpGraph(compiled), DumpGraph(interpreted));
}

TEST(PlanDifferential, MultiStatementTransactionsIdentical) {
  Database compiled(Options(true));
  Database interpreted(Options(false));
  InstallCorpus(compiled);
  InstallCorpus(interpreted);
  const std::vector<std::string> tx = {
      "CREATE (:Acct {bal: 1, owner: 1})",
      "CREATE (:Acct {bal: 2, owner: 1})",
      "MATCH (a:Acct) SET a.bal = a.bal * 10",
      "MATCH (a:Acct) WHERE a.bal >= 20 DELETE a",
  };
  auto rc = compiled.ExecuteTx(tx);
  auto ri = interpreted.ExecuteTx(tx);
  ASSERT_TRUE(rc.ok()) << rc.status();
  ASSERT_TRUE(ri.ok()) << ri.status();
  ASSERT_EQ(rc->size(), ri->size());
  for (size_t i = 0; i < rc->size(); ++i) {
    EXPECT_EQ((*rc)[i].ToTable(), (*ri)[i].ToTable());
  }
  EXPECT_EQ(FiringLog(compiled), FiringLog(interpreted));
  ExpectSameStats(compiled, interpreted);
  EXPECT_EQ(DumpGraph(compiled), DumpGraph(interpreted));
}

// Index DDL mid-stream: the epoch bump must recompile cached plans (both
// per-trigger and the ad-hoc LRU); results stay identical whichever access
// path the new plans select.
TEST(PlanDifferential, IndexDdlInvalidatesAndStaysIdentical) {
  Database compiled(Options(true));
  Database interpreted(Options(false));
  InstallCorpus(compiled);
  InstallCorpus(interpreted);

  const std::string seed1 = "CREATE (:Owner {oid: 9, name: 'zoe'})";
  const std::string probe =
      "MATCH (o:Owner) WHERE o.oid >= 2 RETURN o.name AS nm ORDER BY nm";
  for (Database* db : {&compiled, &interpreted}) {
    ASSERT_TRUE(db->Execute(seed1).ok());
    ASSERT_TRUE(db->Execute("CREATE (:Acct {bal: 3, owner: 9})").ok());
  }
  auto before_c = compiled.Execute(probe);
  auto before_i = interpreted.Execute(probe);
  ASSERT_TRUE(before_c.ok() && before_i.ok());
  EXPECT_EQ(before_c->ToTable(), before_i->ToTable());

  const uint64_t epoch_before = compiled.PlanEpoch();
  for (Database* db : {&compiled, &interpreted}) {
    ASSERT_TRUE(db->Execute("CREATE RANGE INDEX ON :Owner(oid)").ok());
  }
  EXPECT_GT(compiled.PlanEpoch(), epoch_before);

  // Same probe text: cache hit + recompile against the new catalog.
  auto after_c = compiled.Execute(probe);
  auto after_i = interpreted.Execute(probe);
  ASSERT_TRUE(after_c.ok() && after_i.ok());
  EXPECT_EQ(after_c->ToTable(), after_i->ToTable());
  EXPECT_EQ(before_c->ToTable(), after_c->ToTable());

  // Trigger plans recompile too; firing keeps matching.
  for (Database* db : {&compiled, &interpreted}) {
    ASSERT_TRUE(db->Execute("MATCH (a:Acct {owner: 9}) SET a.bal = 4").ok());
  }
  EXPECT_EQ(FiringLog(compiled), FiringLog(interpreted));
  ExpectSameStats(compiled, interpreted);
}

// Trigger DDL bumps the plan epoch as well (conservative invalidation).
TEST(PlanDifferential, TriggerDdlBumpsPlanEpoch) {
  Database db(Options(true));
  const uint64_t e0 = db.PlanEpoch();
  ASSERT_TRUE(db.Execute("CREATE TRIGGER T AFTER CREATE ON 'X' "
                         "FOR EACH NODE BEGIN CREATE (:Hit) END")
                  .ok());
  const uint64_t e1 = db.PlanEpoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE(db.Execute("DROP TRIGGER T").ok());
  EXPECT_GT(db.PlanEpoch(), e1);
}

// The ad-hoc LRU: repeated statement text parses and compiles once.
TEST(PlanDifferential, PlanCacheHitsOnRepeatedText) {
  Database db(Options(true));
  ASSERT_TRUE(db.Execute("CREATE (:P {v: 1})").ok());
  const std::string q = "MATCH (p:P) RETURN p.v";
  const uint64_t misses_before = db.plan_cache().misses();
  for (int i = 0; i < 5; ++i) {
    auto r = db.Execute(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_value(), 1);
  }
  EXPECT_EQ(db.plan_cache().misses(), misses_before + 1);
  EXPECT_GE(db.plan_cache().hits(), 4u);
}

TEST(PlanDifferential, PlanCacheEvictsAtCapacity) {
  EngineOptions opts;
  opts.plan_cache_capacity = 2;
  Database db(opts);
  ASSERT_TRUE(db.Execute("RETURN 1 AS a").ok());
  ASSERT_TRUE(db.Execute("RETURN 2 AS a").ok());
  ASSERT_TRUE(db.Execute("RETURN 3 AS a").ok());
  EXPECT_EQ(db.plan_cache().size(), 2u);
}

// Pending symbol resolution: a trigger compiled while its WHEN labels are
// not interned yet must start matching once they appear — without any DDL.
TEST(PlanDifferential, LateInternedSymbolsResolveInCompiledPlans) {
  for (bool use_plans : {true, false}) {
    Database db(Options(use_plans));
    ASSERT_TRUE(db.Execute("CREATE TRIGGER Late AFTER CREATE ON 'Seen' "
                           "FOR EACH NODE "
                           "WHEN MATCH (g:Ghost {gid: NEW.gid}) "
                           "BEGIN CREATE (:Hit {g: g.gid}) END")
                    .ok());
    // 'Ghost' and 'gid' are unknown: the condition matches nothing.
    ASSERT_TRUE(db.Execute("CREATE (:Seen {gid: 7})").ok());
    EXPECT_EQ(Count(db, "MATCH (h:Hit) RETURN COUNT(*) AS c"), 0)
        << "use_compiled_plans=" << use_plans;
    // Interning 'Ghost'/'gid' through plain statements (no DDL, no epoch
    // bump) must flow into the cached plan via pending symbol resolution.
    ASSERT_TRUE(db.Execute("CREATE (:Ghost {gid: 7})").ok());
    ASSERT_TRUE(db.Execute("CREATE (:Seen {gid: 7})").ok());
    EXPECT_EQ(Count(db, "MATCH (h:Hit) RETURN COUNT(*) AS c"), 1)
        << "use_compiled_plans=" << use_plans;
  }
}

// Intentional fallbacks stay identical: RETURN * and CALL are interpreted
// even with compiled plans on.
TEST(PlanDifferential, FallbackShapesIdentical) {
  Database compiled(Options(true));
  Database interpreted(Options(false));
  for (Database* db : {&compiled, &interpreted}) {
    ASSERT_TRUE(db->Execute("CREATE (:A {v: 1})-[:R]->(:B {v: 2})").ok());
  }
  for (const char* q : {"MATCH (a:A) RETURN *",
                        "MATCH (a:A)-[r:R]->(b) RETURN *"}) {
    auto rc = compiled.Execute(q);
    auto ri = interpreted.Execute(q);
    ASSERT_EQ(rc.ok(), ri.ok()) << q;
    if (rc.ok()) EXPECT_EQ(rc->ToTable(), ri->ToTable()) << q;
  }
}

// Error surfacing parity for statements that fail mid-way.
TEST(PlanDifferential, RuntimeErrorsIdentical) {
  Database compiled(Options(true));
  Database interpreted(Options(false));
  for (Database* db : {&compiled, &interpreted}) {
    ASSERT_TRUE(db->Execute("CREATE (:N {v: 'str'})").ok());
  }
  for (const char* q :
       {"MATCH (n:N) RETURN n.v - 1",          // type error
        "RETURN unboundvar",                   // unbound variable
        "MATCH (n:N) RETURN n.v LIMIT -1",     // bad LIMIT
        "RETURN $missing"}) {                  // unbound parameter
    auto rc = compiled.Execute(q);
    auto ri = interpreted.Execute(q);
    ASSERT_FALSE(rc.ok()) << q;
    ASSERT_FALSE(ri.ok()) << q;
    EXPECT_EQ(rc.status().code(), ri.status().code()) << q;
    EXPECT_EQ(rc.status().message(), ri.status().message()) << q;
  }
}

// Regression: the constant-IN probe must not diverge from the
// interpreter's Equals-based semantics for NaN, including NaN nested
// inside lists (TotalCompare treats NaN as equal to any number; Equals
// says false). Probe values that could hide NaN take the linear path.
TEST(PlanDifferential, ConstInProbeNanSemanticsIdentical) {
  Database compiled(Options(true));
  Database interpreted(Options(false));
  for (const char* q :
       {"RETURN [1.0 % 0.0] IN [[2.0], [3.0]] AS r",  // nested NaN
        "RETURN (1.0 % 0.0) IN [2.0, 3.0] AS r",      // top-level NaN
        "RETURN 2.0 IN [1, 2, 3] AS r",               // int/double coercion
        "RETURN 'b' IN ['a', 'b'] AS r",
        "RETURN 5 IN [1, NULL, 3] AS r"}) {           // null in list
    auto rc = compiled.Execute(q);
    auto ri = interpreted.Execute(q);
    ASSERT_EQ(rc.ok(), ri.ok()) << q;
    if (rc.ok()) EXPECT_EQ(rc->ToTable(), ri->ToTable()) << q;
  }
}

// An inline-prop equality probe lets the compiled matcher skip the
// per-candidate re-check — but only when index band equality provably
// coincides with Equals. Beyond 2^53 two distinct int64 keys collapse to
// the same double band, so the re-check must stay and both paths must
// agree (the interpreter always re-checks).
TEST(PlanDifferential, IndexProbeHugeIntBandsIdentical) {
  Database compiled(Options(true));
  Database interpreted(Options(false));
  const int64_t big = (int64_t{1} << 53);
  for (Database* db : {&compiled, &interpreted}) {
    ASSERT_TRUE(db->Execute("CREATE INDEX ON :K(v)").ok());
    for (int64_t v : {big, big + 1, big + 2}) {
      ASSERT_TRUE(db->Execute("CREATE (:K {v: " + std::to_string(v) + "})")
                      .ok());
    }
  }
  for (int64_t v : {big, big + 1, int64_t{7}}) {
    const std::string q = "MATCH (k:K {v: " + std::to_string(v) +
                          "}) RETURN COUNT(k) AS c";
    auto rc = compiled.Execute(q);
    auto ri = interpreted.Execute(q);
    ASSERT_TRUE(rc.ok() && ri.ok()) << q;
    EXPECT_EQ(rc->ToTable(), ri->ToTable()) << q;
    // Exactly the one matching node, never its band neighbors.
    if (v >= big) EXPECT_EQ(rc->rows[0][0].int_value(), 1) << q;
  }
}

// Parameterized statements share one cached plan across different values.
TEST(PlanDifferential, ParamsReuseOneCachedPlan) {
  Database db(Options(true));
  ASSERT_TRUE(db.Execute("CREATE (:K {id: 1}), (:K {id: 2})").ok());
  const std::string q = "MATCH (k:K) WHERE k.id = $id RETURN k.id";
  for (int64_t id : {1, 2, 1}) {
    Params params{{"id", Value::Int(id)}};
    auto r = db.Execute(q, params);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].int_value(), id);
  }
  EXPECT_GE(db.plan_cache().hits(), 2u);
}

}  // namespace
}  // namespace pgt
