// Expression evaluation tests: arithmetic, three-valued logic, string
// predicates, CASE, functions, property access with ghost/overlay reads.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/cypher/eval.h"
#include "src/cypher/parser.h"

namespace pgt::cypher {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : manager_(&store_) {
    tx_ = std::move(manager_.Begin()).value();
    ctx_.tx = tx_.get();
    ctx_.params = &params_;
    ctx_.clock = &clock_;
  }

  Value Eval(const std::string& text) {
    auto e = Parser::ParseExpressionText(text);
    EXPECT_TRUE(e.ok()) << text << ": " << e.status();
    auto v = EvalExpr(*e.value(), row_, ctx_);
    EXPECT_TRUE(v.ok()) << text << ": " << v.status();
    return v.ok() ? std::move(v).value() : Value::Null();
  }

  Status EvalError(const std::string& text) {
    auto e = Parser::ParseExpressionText(text);
    EXPECT_TRUE(e.ok()) << text;
    return EvalExpr(*e.value(), row_, ctx_).status();
  }

  GraphStore store_;
  TransactionManager manager_;
  std::unique_ptr<Transaction> tx_;
  LogicalClock clock_{1000};
  Params params_;
  Row row_;
  EvalContext ctx_;
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3").int_value(), 7);
  EXPECT_EQ(Eval("7 / 2").int_value(), 3);  // integer division
  EXPECT_DOUBLE_EQ(Eval("7.0 / 2").double_value(), 3.5);
  EXPECT_EQ(Eval("7 % 3").int_value(), 1);
  EXPECT_DOUBLE_EQ(Eval("2 ^ 10").double_value(), 1024.0);
  EXPECT_EQ(Eval("-(3)").int_value(), -3);
  EXPECT_EQ(Eval("1 - 2 - 3").int_value(), -4);  // left assoc
}

TEST_F(EvalTest, DivisionByZeroIsError) {
  EXPECT_EQ(EvalError("1 / 0").code(), StatusCode::kTypeError);
  EXPECT_EQ(EvalError("1 % 0").code(), StatusCode::kTypeError);
}

TEST_F(EvalTest, NullPropagationInArithmetic) {
  EXPECT_TRUE(Eval("1 + null").is_null());
  EXPECT_TRUE(Eval("null * 2").is_null());
  EXPECT_TRUE(Eval("-(null)").is_null());
}

TEST_F(EvalTest, StringConcatenation) {
  EXPECT_EQ(Eval("'a' + 'b'").string_value(), "ab");
  EXPECT_EQ(Eval("'a' + 1").string_value(), "a1");
  EXPECT_EQ(Eval("1 + 'a'").string_value(), "1a");
}

TEST_F(EvalTest, ListConcatenation) {
  EXPECT_EQ(Eval("[1] + [2, 3]").list_value().size(), 3u);
  EXPECT_EQ(Eval("[1] + 2").list_value().size(), 2u);
}

TEST_F(EvalTest, ComparisonsWithTernaryLogic) {
  EXPECT_TRUE(Eval("1 < 2").bool_value());
  EXPECT_TRUE(Eval("2 <= 2").bool_value());
  EXPECT_FALSE(Eval("'a' > 'b'").bool_value());
  EXPECT_TRUE(Eval("1 = 1.0").bool_value());
  EXPECT_TRUE(Eval("1 <> 2").bool_value());
  EXPECT_TRUE(Eval("null = null").is_null());
  EXPECT_TRUE(Eval("1 < null").is_null());
  EXPECT_TRUE(Eval("1 < 'a'").is_null());  // incomparable types
}

TEST_F(EvalTest, BooleanThreeValuedLogic) {
  EXPECT_FALSE(Eval("false AND null").bool_value());  // false dominates
  EXPECT_TRUE(Eval("true OR null").bool_value());     // true dominates
  EXPECT_TRUE(Eval("true AND null").is_null());
  EXPECT_TRUE(Eval("false OR null").is_null());
  EXPECT_TRUE(Eval("NOT null").is_null());
  EXPECT_TRUE(Eval("true XOR false").bool_value());
  EXPECT_TRUE(Eval("true XOR null").is_null());
}

TEST_F(EvalTest, InOperator) {
  EXPECT_TRUE(Eval("2 IN [1, 2, 3]").bool_value());
  EXPECT_FALSE(Eval("5 IN [1, 2, 3]").bool_value());
  EXPECT_TRUE(Eval("5 IN [1, null]").is_null());  // unknown membership
  EXPECT_TRUE(Eval("null IN [1]").is_null());
}

TEST_F(EvalTest, StringPredicates) {
  EXPECT_TRUE(Eval("'hello' STARTS WITH 'he'").bool_value());
  EXPECT_TRUE(Eval("'hello' ENDS WITH 'lo'").bool_value());
  EXPECT_TRUE(Eval("'hello' CONTAINS 'ell'").bool_value());
  EXPECT_FALSE(Eval("'hello' CONTAINS 'x'").bool_value());
  EXPECT_TRUE(Eval("null STARTS WITH 'a'").is_null());
}

TEST_F(EvalTest, IsNullOperators) {
  EXPECT_TRUE(Eval("null IS NULL").bool_value());
  EXPECT_FALSE(Eval("1 IS NULL").bool_value());
  EXPECT_TRUE(Eval("1 IS NOT NULL").bool_value());
}

TEST_F(EvalTest, CaseExpressions) {
  EXPECT_EQ(Eval("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END")
                .string_value(),
            "b");
  EXPECT_EQ(Eval("CASE WHEN false THEN 1 ELSE 2 END").int_value(), 2);
  EXPECT_TRUE(Eval("CASE WHEN false THEN 1 END").is_null());
}

TEST_F(EvalTest, IndexingListsAndMaps) {
  EXPECT_EQ(Eval("[10, 20, 30][1]").int_value(), 20);
  EXPECT_EQ(Eval("[10, 20, 30][-1]").int_value(), 30);
  EXPECT_TRUE(Eval("[10][5]").is_null());
  EXPECT_EQ(Eval("{a: 1}['a']").int_value(), 1);
  EXPECT_TRUE(Eval("{a: 1}['b']").is_null());
}

TEST_F(EvalTest, Parameters) {
  params_["p"] = Value::Int(99);
  EXPECT_EQ(Eval("$p + 1").int_value(), 100);
  EXPECT_EQ(EvalError("$missing").code(), StatusCode::kInvalidArgument);
}

TEST_F(EvalTest, UnboundVariableIsError) {
  EXPECT_EQ(EvalError("nope").code(), StatusCode::kInvalidArgument);
}

TEST_F(EvalTest, ScalarFunctions) {
  EXPECT_EQ(Eval("abs(-5)").int_value(), 5);
  EXPECT_EQ(Eval("sign(-2)").int_value(), -1);
  EXPECT_EQ(Eval("toInteger('42')").int_value(), 42);
  EXPECT_TRUE(Eval("toInteger('x')").is_null());
  EXPECT_DOUBLE_EQ(Eval("toFloat(3)").double_value(), 3.0);
  EXPECT_EQ(Eval("toString(42)").string_value(), "42");
  EXPECT_EQ(Eval("toUpper('ab')").string_value(), "AB");
  EXPECT_EQ(Eval("toLower('AB')").string_value(), "ab");
  EXPECT_EQ(Eval("trim('  x ')").string_value(), "x");
  EXPECT_EQ(Eval("size('abc')").int_value(), 3);
  EXPECT_EQ(Eval("size([1, 2])").int_value(), 2);
  EXPECT_EQ(Eval("coalesce(null, null, 7)").int_value(), 7);
  EXPECT_EQ(Eval("head([1, 2])").int_value(), 1);
  EXPECT_EQ(Eval("last([1, 2])").int_value(), 2);
  EXPECT_EQ(Eval("tail([1, 2, 3])").list_value().size(), 2u);
  EXPECT_EQ(Eval("range(1, 5)").list_value().size(), 5u);
  EXPECT_EQ(Eval("range(5, 1, -2)").list_value().size(), 3u);
  EXPECT_EQ(Eval("split('a,b', ',')").list_value().size(), 2u);
  EXPECT_EQ(Eval("substring('hello', 1, 3)").string_value(), "ell");
  EXPECT_EQ(Eval("replace('aaa', 'a', 'b')").string_value(), "bbb");
  EXPECT_EQ(Eval("left('hello', 2)").string_value(), "he");
  EXPECT_EQ(Eval("right('hello', 2)").string_value(), "lo");
  EXPECT_EQ(Eval("reverse('abc')").string_value(), "cba");
}

TEST_F(EvalTest, TemporalFunctionsUseLogicalClock) {
  Value t1 = Eval("datetime()");
  Value t2 = Eval("datetime()");
  EXPECT_LT(t1.datetime_value().micros, t2.datetime_value().micros);
  EXPECT_EQ(t1.datetime_value().micros, 1000);
  EXPECT_EQ(Eval("timestamp()").type(), ValueType::kInt);
}

TEST_F(EvalTest, UnknownFunctionIsError) {
  EXPECT_EQ(EvalError("frobnicate(1)").code(), StatusCode::kNotFound);
}

TEST_F(EvalTest, AggregateOutsideProjectionIsError) {
  EXPECT_EQ(EvalError("COUNT(x)").code(), StatusCode::kInvalidArgument);
}

TEST_F(EvalTest, NodePropertyAccess) {
  const PropKeyId k = store_.InternPropKey("age");
  NodeId id = tx_->CreateNode({store_.InternLabel("P")},
                              {{k, Value::Int(30)}})
                  .value();
  row_.Set("n", Value::Node(id));
  EXPECT_EQ(Eval("n.age").int_value(), 30);
  EXPECT_TRUE(Eval("n.unknown").is_null());
}

TEST_F(EvalTest, PropertyAccessOnNullIsNull) {
  row_.Set("n", Value::Null());
  EXPECT_TRUE(Eval("n.age").is_null());
}

TEST_F(EvalTest, PropertyAccessOnScalarIsTypeError) {
  row_.Set("n", Value::Int(1));
  EXPECT_EQ(EvalError("n.age").code(), StatusCode::kTypeError);
}

TEST_F(EvalTest, MapPropertyAccess) {
  row_.Set("m", Value::MakeMap({{"k", Value::Int(5)}}));
  EXPECT_EQ(Eval("m.k").int_value(), 5);
}

TEST_F(EvalTest, LabelTestExpression) {
  NodeId id = tx_->CreateNode({store_.InternLabel("A"),
                               store_.InternLabel("B")},
                              {})
                  .value();
  row_.Set("n", Value::Node(id));
  EXPECT_TRUE(Eval("n:A").bool_value());
  EXPECT_TRUE(Eval("n:A:B").bool_value());
  EXPECT_FALSE(Eval("n:A:Missing").bool_value());
}

TEST_F(EvalTest, LabelsAndIdAndTypeFunctions) {
  NodeId a = tx_->CreateNode({store_.InternLabel("X")}, {}).value();
  NodeId b = tx_->CreateNode({store_.InternLabel("Y")}, {}).value();
  RelId r =
      tx_->CreateRel(a, store_.InternRelType("KNOWS"), b, {}).value();
  row_.Set("a", Value::Node(a));
  row_.Set("r", Value::Rel(r));
  EXPECT_EQ(Eval("labels(a)").list_value()[0].string_value(), "X");
  EXPECT_EQ(Eval("type(r)").string_value(), "KNOWS");
  EXPECT_EQ(Eval("id(a)").int_value(), static_cast<int64_t>(a.value));
  EXPECT_EQ(Eval("startNode(r)").node_id(), a);
  EXPECT_EQ(Eval("endNode(r)").node_id(), b);
}

TEST_F(EvalTest, KeysAndPropertiesFunctions) {
  NodeId id = tx_->CreateNode({store_.InternLabel("P")},
                              {{store_.InternPropKey("a"), Value::Int(1)},
                               {store_.InternPropKey("b"), Value::Int(2)}})
                  .value();
  row_.Set("n", Value::Node(id));
  EXPECT_EQ(Eval("size(keys(n))").int_value(), 2);
  EXPECT_EQ(Eval("properties(n).a").int_value(), 1);
}

TEST_F(EvalTest, OldViewOverlayReadsOldPropertyValue) {
  const PropKeyId k = store_.InternPropKey("v");
  NodeId id = tx_->CreateNode({store_.InternLabel("P")},
                              {{k, Value::Int(2)}})
                  .value();
  TransitionEnv env;
  env.SetSingle("OLD", Value::Node(id));
  env.SetSingle("NEW", Value::Node(id));
  env.MarkOldView("OLD");
  env.AddOldNodeProp(id.value, k, Value::Int(1));
  env.Seal();
  ctx_.transition = &env;
  row_.Set("OLD", Value::Node(id));
  row_.Set("NEW", Value::Node(id));
  EXPECT_EQ(Eval("OLD.v").int_value(), 1);   // overlay
  EXPECT_EQ(Eval("NEW.v").int_value(), 2);   // live store
  EXPECT_TRUE(Eval("OLD.v <> NEW.v").bool_value());
}

TEST_F(EvalTest, EvalPredicateSemantics) {
  auto pred = [&](const std::string& text) {
    auto e = Parser::ParseExpressionText(text);
    EXPECT_TRUE(e.ok());
    auto r = EvalPredicate(*e.value(), row_, ctx_);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.value_or(false);
  };
  EXPECT_TRUE(pred("1 < 2"));
  EXPECT_FALSE(pred("1 > 2"));
  EXPECT_FALSE(pred("null = 1"));  // NULL does not pass
}

TEST_F(EvalTest, ContainsAggregateDetection) {
  auto has = [](const std::string& text) {
    auto e = Parser::ParseExpressionText(text);
    EXPECT_TRUE(e.ok());
    return ContainsAggregate(*e.value());
  };
  EXPECT_TRUE(has("COUNT(*)"));
  EXPECT_TRUE(has("1 + SUM(x)"));
  EXPECT_TRUE(has("COLLECT(n.x)"));
  EXPECT_FALSE(has("size([1])"));
  EXPECT_FALSE(has("EXISTS { MATCH (a) }"));  // own scope
}

}  // namespace
}  // namespace pgt::cypher
