// Termination analysis tests: write signatures, triggering-graph edges,
// cycle detection and the guardedness report (Section 6.2.3 / [9]).

#include "src/termination/triggering_graph.h"

#include <gtest/gtest.h>

#include "src/covid/triggers.h"
#include "src/trigger/trigger_parser.h"

namespace pgt::termination {
namespace {

TriggerDef Parse(const std::string& ddl) {
  auto r = TriggerDdlParser::ParseCreate(ddl);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(WriteSignatureTest, CreateNodesAndRels) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN CREATE (:Alert {v: 1})-[:Causes]->(:Incident) END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.created_node_labels.count("Alert"));
  EXPECT_TRUE(sig.created_node_labels.count("Incident"));
  EXPECT_TRUE(sig.created_rel_types.count("Causes"));
  EXPECT_TRUE(sig.deleted_node_labels.empty());
}

TEST(WriteSignatureTest, SetPropsWithInferredLabels) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN MATCH (h:Hospital) SET h.load = 1 END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.set_node_props.count({"Hospital", "load"}));
}

TEST(WriteSignatureTest, TransitionVarCarriesTargetLabel) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN SET NEW.seen = true END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.set_node_props.count({"P", "seen"}));
}

TEST(WriteSignatureTest, UnknownTargetWidensToWildcard) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "WHEN MATCH (x) BEGIN DELETE x END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.deleted_node_labels.count("*") ||
              sig.deleted_rel_types.count("*"));
}

TEST(WriteSignatureTest, DeleteWithLabel) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN MATCH (old:Stale) DETACH DELETE old END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.deleted_node_labels.count("Stale"));
  EXPECT_TRUE(sig.deleted_rel_types.count("*"));  // detach widens
}

TEST(MayTriggerTest, CreateEventMatching) {
  TriggerDef producer = Parse(
      "CREATE TRIGGER P1 AFTER CREATE ON 'A' FOR EACH NODE "
      "BEGIN CREATE (:B) END");
  TriggerDef on_b = Parse(
      "CREATE TRIGGER C1 AFTER CREATE ON 'B' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  TriggerDef on_c = Parse(
      "CREATE TRIGGER C2 AFTER CREATE ON 'C' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  WriteSignature sig = ExtractWriteSignature(producer);
  EXPECT_TRUE(MayTrigger(sig, on_b));
  EXPECT_FALSE(MayTrigger(sig, on_c));
}

TEST(MayTriggerTest, PropertyEventMatching) {
  TriggerDef setter = Parse(
      "CREATE TRIGGER S AFTER CREATE ON 'A' FOR EACH NODE "
      "BEGIN MATCH (h:H) SET h.x = 1 END");
  WriteSignature sig = ExtractWriteSignature(setter);
  EXPECT_TRUE(MayTrigger(sig, Parse("CREATE TRIGGER W1 AFTER SET ON "
                                    "'H'.'x' FOR EACH NODE BEGIN CREATE "
                                    "(:Y) END")));
  EXPECT_FALSE(MayTrigger(sig, Parse("CREATE TRIGGER W2 AFTER SET ON "
                                     "'H'.'y' FOR EACH NODE BEGIN CREATE "
                                     "(:Y) END")));
  EXPECT_FALSE(MayTrigger(sig, Parse("CREATE TRIGGER W3 AFTER REMOVE ON "
                                     "'H'.'x' FOR EACH NODE BEGIN CREATE "
                                     "(:Y) END")));
}

TEST(TriggeringGraphTest, AcyclicChainIsGuaranteedTerminating) {
  TriggerDef a = Parse(
      "CREATE TRIGGER A AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN CREATE (:Q) END");
  TriggerDef b = Parse(
      "CREATE TRIGGER B AFTER CREATE ON 'Q' FOR EACH NODE "
      "BEGIN CREATE (:R) END");
  TriggeringGraph g = TriggeringGraph::Build({&a, &b});
  auto report = g.Analyze();
  EXPECT_TRUE(report.guaranteed_termination);
  EXPECT_EQ(report.edge_count, 1u);  // A -> B only
  EXPECT_NE(report.ToString().find("acyclic"), std::string::npos);
}

TEST(TriggeringGraphTest, SelfLoopDetected) {
  TriggerDef loop = Parse(
      "CREATE TRIGGER Loop AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN CREATE (:P) END");
  TriggeringGraph g = TriggeringGraph::Build({&loop});
  auto report = g.Analyze();
  EXPECT_FALSE(report.guaranteed_termination);
  ASSERT_EQ(report.cycles.size(), 1u);
  EXPECT_EQ(report.cycles[0].first[0], "Loop");
  EXPECT_FALSE(report.cycles[0].second);  // unguarded (no WHEN)
}

TEST(TriggeringGraphTest, TwoTriggerCycleDetected) {
  TriggerDef ping = Parse(
      "CREATE TRIGGER Ping AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN CREATE (:Q) END");
  TriggerDef pong = Parse(
      "CREATE TRIGGER Pong AFTER CREATE ON 'Q' FOR EACH NODE "
      "BEGIN CREATE (:P) END");
  TriggeringGraph g = TriggeringGraph::Build({&ping, &pong});
  auto report = g.Analyze();
  ASSERT_EQ(report.cycles.size(), 1u);
  EXPECT_EQ(report.cycles[0].first.size(), 2u);
}

TEST(TriggeringGraphTest, GuardedCycleFlagged) {
  TriggerDef guarded = Parse(
      "CREATE TRIGGER Guarded AFTER CREATE ON 'P' FOR EACH NODE "
      "WHEN NEW.v > 0 BEGIN CREATE (:P {v: NEW.v - 1}) END");
  TriggeringGraph g = TriggeringGraph::Build({&guarded});
  auto report = g.Analyze();
  ASSERT_EQ(report.cycles.size(), 1u);
  EXPECT_TRUE(report.cycles[0].second);  // guarded by WHEN
  EXPECT_NE(report.ToString().find("guarded"), std::string::npos);
}

TEST(TriggeringGraphTest, PaperRelocationTriggerIsCyclic) {
  // The Section 6.2.3 cascading relocation: its action creates TreatedAt
  // relationships, its event is TreatedAt creation -> self-loop.
  auto r = TriggerDdlParser::ParseCreate(covid::UnguardedMoveTriggerDdl());
  ASSERT_TRUE(r.ok()) << r.status();
  TriggerDef def = std::move(r).value();
  TriggeringGraph g = TriggeringGraph::Build({&def});
  auto report = g.Analyze();
  EXPECT_FALSE(report.guaranteed_termination);
}

TEST(TriggeringGraphTest, PaperSectionSixTriggersAnalyzed) {
  // All Section 6.2 triggers together: the relocation triggers create
  // TreatedAt edges but no trigger monitors TreatedAt, and alerts trigger
  // nothing -> the set is acyclic except MoveToNearHospital/IcuPatientMove
  // interplay via IcuPatient creation, which none of them performs.
  std::vector<TriggerDef> defs;
  for (const std::string& ddl : covid::PaperTriggerDdl()) {
    auto r = TriggerDdlParser::ParseCreate(ddl);
    ASSERT_TRUE(r.ok()) << ddl << "\n-> " << r.status();
    defs.push_back(std::move(r).value());
  }
  std::vector<const TriggerDef*> ptrs;
  for (const TriggerDef& d : defs) ptrs.push_back(&d);
  TriggeringGraph g = TriggeringGraph::Build(ptrs);
  auto report = g.Analyze();
  EXPECT_TRUE(report.guaranteed_termination) << report.ToString();
}

TEST(TriggeringGraphTest, LabelEventEdges) {
  TriggerDef setter = Parse(
      "CREATE TRIGGER S AFTER CREATE ON 'A' FOR EACH NODE "
      "BEGIN MATCH (n:B) SET n:Flagged END");
  TriggerDef watcher = Parse(
      "CREATE TRIGGER W AFTER SET ON 'Flagged' FOR EACH NODE "
      "BEGIN CREATE (:X) END");
  WriteSignature sig = ExtractWriteSignature(setter);
  EXPECT_TRUE(MayTrigger(sig, watcher));
}

// --- Conservativeness regressions -----------------------------------------
// MATCH/MERGE-bound and transition node variables must widen with "*" (the
// designated node may carry labels beyond the matched ones); CREATE-bound
// nodes keep their exact creation labels.

TEST(WriteSignatureTest, MatchBoundSetWidensToWildcard) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN MATCH (h:Hospital) SET h.load = 1 END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.set_node_props.count({"Hospital", "load"}));
  EXPECT_TRUE(sig.set_node_props.count({"*", "load"}));
}

TEST(WriteSignatureTest, CreateBoundSetStaysExact) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN CREATE (n:Fresh) SET n.v = 1 END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.set_node_props.count({"Fresh", "v"}));
  EXPECT_FALSE(sig.set_node_props.count({"*", "v"}));
}

TEST(WriteSignatureTest, MergeMayCreateAndOnMatchWidens) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN MERGE (m:Metric) ON MATCH SET m.n = 1 END");
  WriteSignature sig = ExtractWriteSignature(t);
  // MERGE may create the node -> a CREATE event on Metric is possible.
  EXPECT_TRUE(sig.created_node_labels.count("Metric"));
  // ...but the variable may also bind an existing node with more labels.
  EXPECT_TRUE(sig.set_node_props.count({"Metric", "n"}));
  EXPECT_TRUE(sig.set_node_props.count({"*", "n"}));
}

TEST(WriteSignatureTest, DetachDeleteMatchedNodeWidens) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN MATCH (old:Stale) DETACH DELETE old END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.deleted_node_labels.count("Stale"));
  EXPECT_TRUE(sig.deleted_node_labels.count("*"));  // extra labels possible
  EXPECT_TRUE(sig.deleted_rel_types.count("*"));    // detach widens
}

TEST(WriteSignatureTest, ForeachVarShadowsOuterBinding) {
  // The foreach element variable shadows the CREATE-bound x: writes through
  // it must widen instead of inheriting the exact creation label.
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN CREATE (x:Safe) FOREACH (x IN [1] | SET x.v = 2) END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.set_node_props.count({"*", "v"}));
  EXPECT_FALSE(sig.set_node_props.count({"Safe", "v"}));
}

TEST(WriteSignatureTest, UntypedRelDeleteIsWildcard) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN MATCH (a:A)-[r]->(b:B) DELETE r END");
  WriteSignature sig = ExtractWriteSignature(t);
  EXPECT_TRUE(sig.deleted_rel_types.count("*"));
}

TEST(WriteSignatureTest, ToStringListsCategories) {
  TriggerDef t = Parse(
      "CREATE TRIGGER T AFTER CREATE ON 'P' FOR EACH NODE "
      "BEGIN CREATE (:A) SET NEW.x = 1 END");
  std::string s = ExtractWriteSignature(t).ToString();
  EXPECT_NE(s.find("+node{A}"), std::string::npos);
  EXPECT_NE(s.find("P.x"), std::string::npos);
}

}  // namespace
}  // namespace pgt::termination
