// Supply-chain example: warehouses, products, stock levels, and orders.
// Demonstrates BEFORE triggers (conditioning NEW states), guarded
// recursive restocking (termination analysis included), and the
// engine's runaway backstop.
//
//   $ ./build/examples/supply_chain

#include <cstdio>

#include "src/termination/triggering_graph.h"
#include "src/trigger/database.h"

using namespace pgt;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;

  Check(db.Execute("CREATE (:Warehouse {name: 'Milan', stock: 10}), "
                   "(:Warehouse {name: 'Rome', stock: 50}), "
                   "(:Warehouse {name: 'Naples', stock: 80})")
            .status(),
        "create warehouses");
  Check(db.Execute("MATCH (m:Warehouse {name: 'Milan'}), "
                   "(r:Warehouse {name: 'Rome'}) "
                   "CREATE (m)-[:SuppliedBy]->(r)")
            .status(),
        "Milan <- Rome");
  Check(db.Execute("MATCH (r:Warehouse {name: 'Rome'}), "
                   "(n:Warehouse {name: 'Naples'}) "
                   "CREATE (r)-[:SuppliedBy]->(n)")
            .status(),
        "Rome <- Naples");

  // BEFORE trigger: orders arrive with inconsistent casing/priority;
  // condition the NEW state before anything else reacts to it.
  Check(db.Execute(R"(
      CREATE TRIGGER NormalizeOrder
      BEFORE CREATE
      ON 'Order'
      FOR EACH NODE
      WHEN NEW.priority IS NULL
      BEGIN
        SET NEW.priority = 3
      END)")
            .status(),
        "install NormalizeOrder");

  // AFTER trigger: an order decrements its warehouse stock.
  Check(db.Execute(R"(
      CREATE TRIGGER FulfillOrder
      AFTER CREATE
      ON 'Order'
      FOR EACH NODE
      WHEN MATCH (w:Warehouse {name: NEW.warehouse})
      BEGIN
        SET w.stock = w.stock - NEW.quantity
      END)")
            .status(),
        "install FulfillOrder");

  // Guarded recursive restocking: when a warehouse's stock drops below 5,
  // pull 20 units from its supplier — which may push the supplier below
  // the threshold and cascade up the chain. The WHEN guard (supplier has
  // stock) makes the recursion converge.
  Check(db.Execute(R"(
      CREATE TRIGGER Restock
      AFTER SET
      ON 'Warehouse'.'stock'
      FOR EACH NODE
      WHEN
        MATCH (NEW)-[:SuppliedBy]->(s:Warehouse)
        WHERE NEW.stock < 5 AND s.stock >= 20
      BEGIN
        SET s.stock = s.stock - 20
        SET NEW.stock = NEW.stock + 20
      END)")
            .status(),
        "install Restock");

  // Static termination analysis: Restock writes Warehouse.stock and
  // monitors Warehouse.stock — a (guarded) cycle the analyzer must flag.
  termination::TriggeringGraph graph =
      termination::TriggeringGraph::Build(db.catalog().All());
  std::printf("static termination analysis:\n%s\n",
              graph.Analyze().ToString().c_str());

  // Place orders. The first one leaves Milan at 4 -> restock from Rome
  // (50 -> 30); Rome stays above threshold, the cascade stops.
  std::printf("order 1: 6 units from Milan\n");
  Check(db.Execute("CREATE (:Order {warehouse: 'Milan', quantity: 6})")
            .status(),
        "order 1");
  // This order drains Milan again AND pushes Rome below 5 when it
  // restocks: the cascade climbs to Naples.
  std::printf("order 2: 23 units from Milan (cascades up the chain)\n");
  Check(db.Execute("CREATE (:Order {warehouse: 'Milan', quantity: 23})")
            .status(),
        "order 2");

  auto stock = db.Execute(
      "MATCH (w:Warehouse) RETURN w.name AS warehouse, w.stock AS stock "
      "ORDER BY warehouse");
  Check(stock.status(), "stock");
  std::printf("\nstock after the cascade:\n%s\n", stock->ToTable().c_str());

  auto orders = db.Execute(
      "MATCH (o:Order) RETURN o.warehouse AS wh, o.quantity AS qty, "
      "o.priority AS priority ORDER BY qty");
  Check(orders.status(), "orders");
  std::printf("orders (priority defaulted by the BEFORE trigger):\n%s\n",
              orders->ToTable().c_str());

  std::printf("max cascade depth observed: %llu\n",
              static_cast<unsigned long long>(
                  db.stats().cascade_depth_max));
  return 0;
}
