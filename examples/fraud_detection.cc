// Financial knowledge-graph example (the Banca d'Italia flavor of the
// paper's author list): accounts and transfers, with PG-Triggers for
// real-time anti-fraud surveillance —
//  * large-transfer alerts (item granularity, WHEN threshold),
//  * structuring detection: many small transfers in one settlement batch
//    (set granularity, ONCOMMIT over the whole transaction),
//  * risk propagation along transfers from flagged accounts (cascading,
//    the "paths of arbitrary length" use case of Section 5.1),
//  * a DETACHED audit log that survives even if written out-of-band.
//
//   $ ./build/examples/fraud_detection

#include <cstdio>

#include "src/trigger/database.h"

using namespace pgt;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void Transfer(Database& db, const std::string& from, const std::string& to,
              int64_t amount) {
  Params params;
  params["from"] = Value::String(from);
  params["to"] = Value::String(to);
  params["amount"] = Value::Int(amount);
  Check(db.Execute("MATCH (a:Account {iban: $from}), "
                   "(b:Account {iban: $to}) "
                   "CREATE (a)-[:Transfer {amount: $amount, "
                   "at: DATETIME()}]->(b)",
                   params)
            .status(),
        "transfer");
}

}  // namespace

int main() {
  Database db;

  // Accounts.
  for (const char* iban : {"IT01", "IT02", "IT03", "IT04", "IT05"}) {
    Params params;
    params["iban"] = Value::String(iban);
    Check(db.Execute("CREATE (:Account {iban: $iban, risk: 0})", params)
              .status(),
          "create account");
  }

  // Rule 1: any transfer above 50k raises an alert (FOR EACH).
  Check(db.Execute(R"(
      CREATE TRIGGER LargeTransfer
      AFTER CREATE
      ON 'Transfer'
      FOR EACH RELATIONSHIP
      WHEN NEW.amount > 50000
      BEGIN
        CREATE (:FraudAlert {kind: 'large-transfer',
                             amount: NEW.amount,
                             at: DATETIME()})
      END)")
            .status(),
        "install LargeTransfer");

  // Rule 2: structuring — ten or more sub-threshold transfers settled in
  // one transaction (FOR ALL + ONCOMMIT sees the whole batch).
  Check(db.Execute(R"(
      CREATE TRIGGER Structuring
      ONCOMMIT CREATE
      ON 'Transfer'
      FOR ALL RELATIONSHIPS
      WHEN
        MATCH (:Account)-[t:NEWRELS]-(:Account)
        WHERE t.amount < 10000
        WITH COUNT(t) AS small
        WHERE small >= 10
      BEGIN
        CREATE (:FraudAlert {kind: 'structuring', count: small,
                             at: DATETIME()})
      END)")
            .status(),
        "install Structuring");

  // Rule 3: risk propagation — raising an account's risk propagates to
  // accounts it transferred money to (cascading inference).
  Check(db.Execute(R"(
      CREATE TRIGGER PropagateRisk
      AFTER SET
      ON 'Account'.'risk'
      FOR EACH NODE
      WHEN NEW.risk >= 2 AND (OLD.risk IS NULL OR OLD.risk < 2)
      BEGIN
        MATCH (NEW)-[:Transfer]->(next:Account)
        WHERE next.risk IS NULL OR next.risk < NEW.risk - 1
        SET next.risk = NEW.risk - 1
      END)")
            .status(),
        "install PropagateRisk");

  // Rule 4: detached audit trail for every fraud alert.
  Check(db.Execute(R"(
      CREATE TRIGGER AuditAlert
      DETACHED CREATE
      ON 'FraudAlert'
      FOR EACH NODE
      BEGIN
        CREATE (:AuditEntry {kind: NEW.kind, logged: DATETIME()})
      END)")
            .status(),
        "install AuditAlert");

  // --- Scenario ---------------------------------------------------------------
  std::printf("1) normal activity (no alerts expected)\n");
  Transfer(db, "IT01", "IT02", 1200);
  Transfer(db, "IT02", "IT03", 900);

  std::printf("2) a 75k transfer (LargeTransfer should fire)\n");
  Transfer(db, "IT01", "IT04", 75000);

  std::printf("3) a settlement batch of 12 transfers under 10k "
              "(Structuring should fire once at commit)\n");
  {
    std::vector<std::string> batch;
    for (int i = 0; i < 12; ++i) {
      batch.push_back(
          "MATCH (a:Account {iban: 'IT03'}), (b:Account {iban: 'IT05'}) "
          "CREATE (a)-[:Transfer {amount: " +
          std::to_string(4000 + i) + ", at: DATETIME()}]->(b)");
    }
    Check(db.ExecuteTx(batch).status(), "settlement batch");
  }

  std::printf("4) IT01 is flagged high-risk (risk should propagate along "
              "its transfer chain)\n");
  Check(db.Execute("MATCH (a:Account {iban: 'IT01'}) SET a.risk = 3")
            .status(),
        "flag IT01");

  // --- Results ---------------------------------------------------------------
  auto alerts = db.Execute(
      "MATCH (f:FraudAlert) RETURN f.kind AS kind, COUNT(*) AS n "
      "ORDER BY kind");
  Check(alerts.status(), "alerts");
  std::printf("\nfraud alerts:\n%s\n", alerts->ToTable().c_str());

  auto risk = db.Execute(
      "MATCH (a:Account) WHERE a.risk > 0 "
      "RETURN a.iban AS iban, a.risk AS risk ORDER BY iban");
  Check(risk.status(), "risk");
  std::printf("risk propagation (IT01 -> IT02/IT04 -> IT03/IT05):\n%s\n",
              risk->ToTable().c_str());

  auto audit =
      db.Execute("MATCH (e:AuditEntry) RETURN COUNT(*) AS audit_entries");
  Check(audit.status(), "audit");
  std::printf("detached audit log:\n%s", audit->ToTable().c_str());
  return 0;
}
