// The paper's Section 6 running example, narrated: a CoV2K-style COVID-19
// knowledge graph with the six PG-Triggers, driven through mutation
// discoveries, sequencing, WHO designations, and ICU admission waves.
//
//   $ ./build/examples/covid_surveillance

#include <cstdio>

#include "src/covid/generator.h"
#include "src/covid/schema.h"
#include "src/covid/triggers.h"
#include "src/covid/workload.h"
#include "src/schema/validator.h"

using namespace pgt;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void ShowAlerts(Database& db, const char* moment) {
  auto r = db.Execute(
      "MATCH (a:Alert) RETURN a.desc AS alert, COUNT(*) AS times "
      "ORDER BY alert");
  Check(r.status(), "query alerts");
  std::printf("--- alerts %s ---\n%s\n", moment, r->ToTable().c_str());
}

}  // namespace

int main() {
  Database db;

  // 1. The Figure 4 / Figure 5 schema.
  schema::SchemaDef covid_schema = covid::BuildCovidSchema();
  std::printf("PG-Schema (Figure 5 excerpt):\n%s\n\n",
              covid_schema.ToDdl().substr(0, 600).c_str());

  // 2. Synthetic CoV2K data (regions, hospitals, labs, patients,
  //    lineages, mutations, sequences).
  covid::GeneratorOptions gen;
  gen.patients = 120;
  gen.icu_beds_min = 12;
  gen.icu_beds_max = 16;
  covid::CovidDataset data = covid::GenerateCovidData(db.store(), gen);
  std::printf("generated %zu nodes / %zu relationships\n",
              db.store().NodeCount(), db.store().RelCount());
  covid_schema.strict = false;
  auto report = schema::ValidateGraph(db.store(), covid_schema);
  std::printf("schema validation: %s\n\n", report.Summary().c_str());

  // 3. The Section 6.2 triggers (surveillance + capacity management).
  Check(covid::InstallPaperTriggers(
            db, {"NewCriticalMutation", "NewCriticalLineage",
                 "WhoDesignationChange", "IcuPatientsOverThreshold",
                 "IcuPatientIncrease", "IcuPatientMove"}),
        "install triggers");
  std::printf("installed the Section 6.2 PG-Triggers\n\n");

  // 4. Molecular surveillance: a critical mutation is discovered.
  Check(covid::RegisterMutation(db, "Spike:N501Y", "Spike",
                                /*critical=*/true),
        "register N501Y");
  Check(covid::RegisterMutation(db, "ORF1a:T265I", "ORF1a",
                                /*critical=*/false),
        "register T265I");
  ShowAlerts(db, "after mutation discoveries");

  // 5. Sequencing: the critical mutation shows up in lineage B.1.1.
  Check(covid::RegisterSequence(db, "EPI_ISL_900001", "B.1.1",
                                "Spike:N501Y"),
        "sequence EPI_ISL_900001");
  ShowAlerts(db, "after sequencing");

  // 6. WHO designation change (Indian -> Delta).
  Check(covid::ChangeWhoDesignation(db, "B.1.1", "Indian"), "designate");
  Check(covid::ChangeWhoDesignation(db, "B.1.1", "Delta"), "re-designate");
  ShowAlerts(db, "after WHO designation change");

  // 7. Admission waves at Sacco; the overflow wave relocates to Meyer.
  for (int wave = 0; wave < 4; ++wave) {
    Check(covid::AdmitIcuPatients(db, "Sacco", 6, 1000 + wave * 10),
          "admission wave");
    std::printf("wave %d: ICU at Sacco=%lld, Meyer=%lld\n", wave + 1,
                static_cast<long long>(
                    covid::CountIcuAt(db, "Sacco").value_or(-1)),
                static_cast<long long>(
                    covid::CountIcuAt(db, "Meyer").value_or(-1)));
  }
  ShowAlerts(db, "after the admission surge");

  std::printf("per-trigger statistics:\n");
  for (const auto& [name, stats] : db.stats().per_trigger) {
    std::printf("  %-26s considered=%-4llu fired=%llu\n", name.c_str(),
                static_cast<unsigned long long>(stats.considered),
                static_cast<unsigned long long>(stats.fired));
  }
  return 0;
}
