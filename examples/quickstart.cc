// Quickstart: a five-minute tour of the PG-Triggers library.
//
//   $ ./build/examples/quickstart
//
// Creates a Database, installs a PG-Trigger (paper Figure 1 syntax),
// runs some Cypher, and shows the trigger firing, the transition
// variables, and the result table API.

#include <cstdio>

#include "src/trigger/database.h"

using pgt::Database;

namespace {

void Check(const pgt::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;

  // 1. A reactive rule: every newly hired employee gets an onboarding
  //    task, created by the engine inside the same transaction.
  Check(db.Execute(R"(
      CREATE TRIGGER OnboardNewHire
      AFTER CREATE
      ON 'Employee'
      FOR EACH NODE
      WHEN NEW.team IS NOT NULL
      BEGIN
        CREATE (:Task {title: 'Onboard ' + NEW.name,
                       team: NEW.team,
                       created: DATETIME()})
      END)")
            .status(),
        "install trigger");

  // 2. Regular Cypher; the trigger reacts to the CREATE events.
  Check(db.Execute("CREATE (:Employee {name: 'Ada', team: 'Storage'})")
            .status(),
        "hire Ada");
  Check(db.Execute("CREATE (:Employee {name: 'Grace', team: 'Query'})")
            .status(),
        "hire Grace");
  // No team -> the WHEN condition filters this one out.
  Check(db.Execute("CREATE (:Employee {name: 'Intern'})").status(),
        "hire Intern");

  // 3. Inspect the results.
  auto tasks = db.Execute(
      "MATCH (t:Task) RETURN t.title AS title, t.team AS team "
      "ORDER BY title");
  Check(tasks.status(), "query tasks");
  std::printf("Tasks created by the trigger:\n%s\n",
              tasks->ToTable().c_str());

  // 4. Set-granularity + ONCOMMIT: one summary per transaction.
  Check(db.Execute(R"(
      CREATE TRIGGER HiringDigest
      ONCOMMIT CREATE
      ON 'Employee'
      FOR ALL NODES
      BEGIN
        CREATE (:Digest {hires: SIZE(NEWNODES), at: DATETIME()})
      END)")
            .status(),
        "install digest trigger");
  Check(db.ExecuteTx({"CREATE (:Employee {name: 'Edsger', team: 'Core'})",
                      "CREATE (:Employee {name: 'Barbara', team: 'Core'})"})
            .status(),
        "hiring wave");
  auto digest =
      db.Execute("MATCH (d:Digest) RETURN d.hires AS hires_in_one_tx");
  Check(digest.status(), "query digest");
  std::printf("ONCOMMIT digest (both statements, one transaction):\n%s\n",
              digest->ToTable().c_str());

  // 5. Engine statistics.
  std::printf("Trigger statistics:\n");
  for (const auto& [name, stats] : db.stats().per_trigger) {
    std::printf("  %-16s considered=%llu fired=%llu\n", name.c_str(),
                static_cast<unsigned long long>(stats.considered),
                static_cast<unsigned long long>(stats.fired));
  }
  return 0;
}
