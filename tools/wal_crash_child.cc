// Crash/recovery harness child (driven by tools/wal_kill_recover.sh):
//
//   wal_crash_child <dir> run [max_commits]   # workload loop, meant to be
//                                             # SIGKILLed mid-flight
//   wal_crash_child <dir> verify              # reopen, check invariants,
//                                             # print the durable commit
//                                             # count, exit 0/1
//
// The workload advances a persistent counter with every commit and keeps a
// set of cross-referencing invariants that any committed prefix satisfies:
//
//   * one (:Meta {n, del}) node; n = workload commits applied, del = items
//     deleted again;
//   * exactly n - del alive (:Item) nodes, each HAS-linked from Meta;
//   * an AFTER CREATE trigger mirrors every Item into an (:Echo) with the
//     same seq, inside the same transaction;
//   * every 7th commit deletes the oldest Item (and its Echo + link).
//
// A SIGKILL at any instant must recover to a state where ALL of these hold
// simultaneously — a torn commit that left, say, an Item without its Echo
// or Meta.n out of step would be atomicity lost across the crash.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/trigger/database.h"

namespace {

using pgt::Database;

constexpr char kTrigger[] =
    "CREATE TRIGGER Mirror AFTER CREATE ON 'Item' FOR EACH NODE "
    "BEGIN CREATE (:Echo {seq: NEW.seq}) END";

int64_t One(Database& db, const char* q) {
  auto r = db.Execute(q);
  if (!r.ok() || r->rows.empty()) {
    std::fprintf(stderr, "query failed: %s: %s\n", q,
                 r.ok() ? "no rows" : r.status().ToString().c_str());
    std::exit(2);
  }
  return r->rows[0][0].int_value();
}

int Run(Database& db, long max_commits) {
  // Bootstrap is itself one commit, so a kill during first-run setup is
  // covered by the same recovery paths.
  if (One(db, "MATCH (m:Meta) RETURN COUNT(*)") == 0) {
    auto t = db.Execute(kTrigger);
    if (!t.ok()) {
      std::fprintf(stderr, "trigger: %s\n", t.status().ToString().c_str());
      return 2;
    }
    auto r = db.Execute("CREATE (:Meta {n: 0, del: 0})");
    if (!r.ok()) {
      std::fprintf(stderr, "bootstrap: %s\n", r.status().ToString().c_str());
      return 2;
    }
  }
  for (long i = 0; max_commits < 0 || i < max_commits; ++i) {
    auto r = db.Execute(
        "MATCH (m:Meta) "
        "CREATE (i:Item {seq: m.n}) CREATE (m)-[:HAS]->(i) "
        "SET m.n = m.n + 1");
    if (!r.ok()) {
      std::fprintf(stderr, "commit: %s\n", r.status().ToString().c_str());
      return 2;
    }
    if (One(db, "MATCH (m:Meta) RETURN m.n") % 7 == 0) {
      auto d = db.Execute(
          "MATCH (m:Meta)-[h:HAS]->(i:Item) "
          "WITH m, h, i ORDER BY i.seq LIMIT 1 "
          "MATCH (e:Echo {seq: i.seq}) "
          "DELETE h, i, e SET m.del = m.del + 1");
      if (!d.ok()) {
        std::fprintf(stderr, "delete: %s\n", d.status().ToString().c_str());
        return 2;
      }
    }
  }
  return static_cast<int>(db.Close().ok() ? 0 : 2);
}

int Verify(Database& db) {
  const int64_t n = One(db, "MATCH (m:Meta) RETURN COUNT(*)");
  int64_t commits = 0;
  bool ok = true;
  if (n > 1) {
    std::fprintf(stderr, "INVARIANT: %lld Meta nodes\n",
                 static_cast<long long>(n));
    ok = false;
  }
  if (n == 1) {
    commits = One(db, "MATCH (m:Meta) RETURN m.n");
    const int64_t del = One(db, "MATCH (m:Meta) RETURN m.del");
    const int64_t items = One(db, "MATCH (i:Item) RETURN COUNT(*)");
    const int64_t echoes = One(db, "MATCH (e:Echo) RETURN COUNT(*)");
    const int64_t links = One(db, "MATCH (:Meta)-[:HAS]->(:Item) "
                                  "RETURN COUNT(*)");
    const int64_t paired = One(db,
                               "MATCH (i:Item) MATCH (e:Echo {seq: i.seq}) "
                               "RETURN COUNT(*)");
    if (items != commits - del) {
      std::fprintf(stderr, "INVARIANT: %lld items, expected n-del = %lld\n",
                   static_cast<long long>(items),
                   static_cast<long long>(commits - del));
      ok = false;
    }
    if (echoes != items || paired != items) {
      std::fprintf(stderr,
                   "INVARIANT: %lld echoes / %lld paired for %lld items\n",
                   static_cast<long long>(echoes),
                   static_cast<long long>(paired),
                   static_cast<long long>(items));
      ok = false;
    }
    if (links != items) {
      std::fprintf(stderr, "INVARIANT: %lld HAS links for %lld items\n",
                   static_cast<long long>(links),
                   static_cast<long long>(items));
      ok = false;
    }
  }
  if (!db.Close().ok()) {
    std::fprintf(stderr, "close failed\n");
    ok = false;
  }
  // The durable workload-commit count, parsed by the driver script to check
  // that recovery never regresses across kill iterations.
  std::printf("%lld\n", static_cast<long long>(commits));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <dir> run [max_commits] | <dir> verify\n",
                 argv[0]);
    return 2;
  }
  pgt::wal::WalOptions opts;
  opts.dir = argv[1];
  opts.group_size = 8;
  opts.snapshot_interval = 50;  // exercise checkpoints under kill
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  if (std::strcmp(argv[2], "run") == 0) {
    const long max = argc > 3 ? std::atol(argv[3]) : -1;
    return Run(**db, max);
  }
  if (std::strcmp(argv[2], "verify") == 0) return Verify(**db);
  std::fprintf(stderr, "unknown mode '%s'\n", argv[2]);
  return 2;
}
