#!/usr/bin/env sh
# SIGKILL crash/recovery loop (docs/durability.md):
#
#   tools/wal_kill_recover.sh <wal_crash_child binary> [iterations] [dir]
#
# Each iteration starts the workload child against the same database
# directory, kills it with SIGKILL at a varying instant mid-flight, then
# reopens the database in verify mode, which (a) runs crash recovery,
# (b) checks the workload's cross-commit atomicity invariants, and
# (c) prints the durable commit count. The loop additionally asserts that
# the count never regresses across iterations: recovery must never lose a
# commit that an earlier recovery already certified durable.
set -eu

BIN=${1:?usage: wal_kill_recover.sh <wal_crash_child> [iterations] [dir]}
ITERS=${2:-10}
DIR=${3:-$(mktemp -d)}

last=0
i=0
while [ "$i" -lt "$ITERS" ]; do
  "$BIN" "$DIR" run &
  pid=$!
  # Vary the kill point: 0.1s .. 0.5s into the workload.
  sleep "0.$(( i % 5 + 1 ))"
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  n=$("$BIN" "$DIR" verify) || {
    echo "FAIL: invariant violation after kill iteration $i (dir: $DIR)" >&2
    exit 1
  }
  if [ "$n" -lt "$last" ]; then
    echo "FAIL: durable commit count regressed $last -> $n at iteration $i" >&2
    exit 1
  fi
  echo "iteration $i: recovered, $n durable commits"
  last=$n
  i=$((i + 1))
done

# Final clean run + reopen: the database must also still shut down and
# come back cleanly after the abuse.
"$BIN" "$DIR" run 5 >/dev/null
n=$("$BIN" "$DIR" verify) || { echo "FAIL: final verify" >&2; exit 1; }
echo "OK: $ITERS kill/recover iterations, $n durable commits (dir: $DIR)"
